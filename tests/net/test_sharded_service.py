"""Sharded service tests: role placement, membership ops, the pump.

Everything here is socket-free: envelope dispatch is pure, and the
:class:`MembershipPump`'s synchronous face (tick / on_wire_heartbeat /
view_wire) is driven with a fake clock.  The live-socket story is
covered by ``tests/net/test_router.py`` and the CI kill-a-shard smoke.
"""

import pytest

from repro.cluster.messages import Heartbeat, LookupRequest
from repro.core.entry import make_entries
from repro.core.exceptions import InvalidParameterError
from repro.net.codec import decode_heartbeat, encode_message, heartbeat_envelope
from repro.net.membership import MembershipPump
from repro.net.service import LookupService, ServiceConfig, shard_names
from repro.net.sharding import ShardMap, partial_replica
from repro.obs.membership import MembershipObserver
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer
from repro.protocol.membership import ALIVE, DEAD, MembershipConfig, SUSPECT

ENTRIES = 30
REPLICAS = 2
FRACTION = 0.25


def shard_service(index, count=3):
    return LookupService(
        ServiceConfig(
            server_count=12,
            entry_count=ENTRIES,
            seed=5,
            shard_index=index,
            shard_count=count,
            replicas=REPLICAS,
            backup_fraction=FRACTION,
        )
    )


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


def pump_for(service, peers=("s0", "s1", "s2"), incarnation=1, clock=None):
    clock = clock if clock is not None else FakeClock()
    pump = MembershipPump(
        service.shard_name,
        {name: ("127.0.0.1", 1) for name in peers if name != service.shard_name},
        config=MembershipConfig(
            heartbeat_interval=0.5, suspect_after=2.0, dead_after=5.0, quarantine=3.0
        ),
        incarnation=incarnation,
        clock=clock,
    )
    service.membership = pump
    return pump, clock


class TestShardedPlacement:
    def test_config_validation(self):
        with pytest.raises(InvalidParameterError):
            ServiceConfig(shard_index=3, shard_count=3)
        with pytest.raises(InvalidParameterError):
            ServiceConfig(shard_count=0)
        with pytest.raises(InvalidParameterError):
            ServiceConfig(shard_count=3, replicas=4)

    def test_shard_names(self):
        assert shard_names(3) == ["s0", "s1", "s2"]

    def test_roles_partition_matches_shard_map(self):
        shard_map = ShardMap(shard_names(3))
        services = [shard_service(i) for i in range(3)]
        for key in services[0].strategies:
            home = shard_map.home(key, REPLICAS)
            for service in services:
                expected = (
                    home.index(service.shard_name)
                    if service.shard_name in home
                    else None
                )
                assert service.roles[key] == expected

    def test_primary_places_full_set_backup_partial_others_none(self):
        services = {s.shard_name: s for s in (shard_service(i) for i in range(3))}
        shard_map = ShardMap(shard_names(3))
        entries = make_entries(ENTRIES)
        for key in services["s0"].strategies:
            primary, backup = shard_map.home(key, REPLICAS)
            # Fixed-x covers only its x chosen entries by design;
            # every other scheme covers the full placed set.
            expected_primary = 10 if key == "fixed" else ENTRIES
            assert services[primary].strategies[key].coverage() == expected_primary
            expected_backup = len(partial_replica(key, entries, 1, FRACTION))
            assert expected_backup == 8  # round(0.25 * 30)
            assert services[backup].strategies[key].coverage() == expected_backup
            (other,) = set(services) - {primary, backup}
            assert services[other].strategies[key].coverage() == 0

    def test_every_shard_reports_identical_scheme_catalogue(self):
        infos = [shard_service(i).info() for i in range(3)]
        catalogues = [info["schemes"] for info in infos]
        assert catalogues[0] == catalogues[1] == catalogues[2]
        assert [info["shard"]["index"] for info in infos] == [0, 1, 2]

    def test_unsharded_config_is_unchanged(self):
        service = LookupService(
            ServiceConfig(server_count=12, entry_count=ENTRIES, seed=5)
        )
        assert all(role == 0 for role in service.roles.values())
        assert service.info()["shard"]["count"] == 1

    def test_lookup_on_non_home_shard_answers_empty_not_error(self):
        services = {s.shard_name: s for s in (shard_service(i) for i in range(3))}
        shard_map = ShardMap(shard_names(3))
        key = "full_replication"
        home = shard_map.home(key, REPLICAS)
        (other,) = set(services) - set(home)
        reply = services[other].handle_envelope(
            {
                "op": "send",
                "server": 0,
                "key": key,
                "message": encode_message(LookupRequest(5)),
            }
        )
        assert reply["ok"]
        assert reply["value"] == []


class TestMembershipOps:
    def test_membership_op_without_plane_reports_self(self):
        service = LookupService(ServiceConfig())
        reply = service.handle_envelope({"op": "membership"})
        assert reply["ok"]
        assert reply["value"]["view"] == [["s0", "alive", 0]]

    def test_heartbeat_without_plane_is_bad_request(self):
        service = LookupService(ServiceConfig())
        beat = Heartbeat(sender="s1", incarnation=1, view=())
        reply = service.handle_envelope(heartbeat_envelope(beat))
        assert not reply["ok"]
        assert reply["error"] == "bad-request"

    def test_heartbeat_op_absorbs_and_replies_with_own_beat(self):
        service = shard_service(0)
        pump, clock = pump_for(service)
        clock.now = 1.0
        beat = Heartbeat(sender="s1", incarnation=7, view=())
        reply = service.handle_envelope(heartbeat_envelope(beat))
        assert reply["ok"]
        ours = decode_heartbeat(reply["value"])
        assert ours.sender == "s0"
        assert ours.incarnation == 1
        assert ("s1", ALIVE, 7) in ours.view

    def test_membership_op_reflects_detector_state(self):
        service = shard_service(0)
        pump, clock = pump_for(service)
        clock.now = 10.0
        pump.tick()
        view = {
            name: state
            for name, state, _ in service.handle_envelope({"op": "membership"})[
                "value"
            ]["view"]
        }
        assert view["s1"] == DEAD
        assert view["s2"] == DEAD
        assert view["s0"] == ALIVE

    def test_malformed_heartbeat_is_bad_request(self):
        service = shard_service(0)
        pump_for(service)
        reply = service.handle_envelope(
            {"op": "heartbeat", "message": {"!": "msg", "type": "LookupRequest",
                                           "fields": {"target": 1}}}
        )
        assert not reply["ok"]
        assert reply["error"] == "bad-request"


class TestMembershipPump:
    def test_tick_returns_due_peers_and_respects_interval(self):
        service = shard_service(0)
        pump, clock = pump_for(service)
        assert pump.tick() == ["s1", "s2"]
        clock.now = 0.2
        assert pump.tick() == []
        clock.now = 0.5
        assert pump.tick() == ["s1", "s2"]

    def test_symmetric_exchange_refreshes_both_detectors(self):
        a_service, b_service = shard_service(0), shard_service(1)
        a_pump, a_clock = pump_for(a_service)
        b_pump, b_clock = pump_for(b_service, incarnation=4)
        a_clock.now = b_clock.now = 1.0
        # a beats b (as the wire would): b absorbs, replies; a absorbs.
        reply = b_pump.on_wire_heartbeat(a_pump.local_heartbeat())
        a_pump.on_wire_heartbeat(reply)
        a_clock.now = b_clock.now = 4.0  # past suspect_after since 1.0
        a_pump.tick()
        b_pump.tick()
        assert a_pump.protocol.state_of("s1") == SUSPECT  # never heard again
        # but each holds the other's incarnation from the one exchange
        assert ("s1", SUSPECT, 4) in a_pump.protocol.wire_view()
        assert ("s0", SUSPECT, 1) in b_pump.protocol.wire_view()

    def test_transitions_reach_observer_and_gauges(self):
        service = shard_service(0)
        metrics, tracer = MetricsRegistry(), Tracer(run_id="t")
        clock = FakeClock()
        pump = MembershipPump(
            "s0",
            {"s1": ("127.0.0.1", 1), "s2": ("127.0.0.1", 2)},
            config=MembershipConfig(
                heartbeat_interval=0.5,
                suspect_after=2.0,
                dead_after=5.0,
                quarantine=3.0,
            ),
            incarnation=1,
            observer=MembershipObserver(metrics, tracer, node="s0"),
            clock=clock,
        )
        service.membership = pump
        clock.now = 6.0
        pump.tick()
        snapshot = metrics.snapshot()
        assert snapshot["membership.transitions"] == 2.0
        assert snapshot["membership.transitions.alive_to_dead"] == 2.0
        assert snapshot["membership.peers.dead"] == 2.0
        assert snapshot["membership.peers.alive"] == 0.0
        events = tracer.events("membership.transition")
        assert len(events) == 2
        assert {e.fields["peer"] for e in events} == {"s1", "s2"}
        assert all(e.fields["node"] == "s0" for e in events)
