"""Servers with limited reachability (paper §7.2).

The paper's second variation drops the "every client can reach every
server" assumption: in an application-level overlay (Gnutella-style),
a client only reaches nodes within ``d`` hops.  The problem becomes
placing data so that every client has *some* server within its hop
bound, and studying the tradeoff in ``d``: a small ``d`` keeps lookups
cheap (flood radius) but forces data onto more servers, raising update
costs.

We model the overlay as a networkx graph whose nodes are clients and
servers; :class:`ReachabilityPlacement` picks a minimal hop-``d``
*dominating set* of server locations greedily, and
:class:`ReachabilityReport` quantifies the d-vs-overhead tradeoff the
paper proposes as "a more sophisticated study".
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

import networkx as nx

from repro.core.exceptions import InvalidParameterError


class OverlayNetwork:
    """An application-level overlay of nodes with hop-count distances.

    Wraps a networkx graph with the queries the placement needs:
    hop-bounded neighbourhoods and coverage checks.  Node identifiers
    are opaque hashables.
    """

    def __init__(self, graph: nx.Graph) -> None:
        if graph.number_of_nodes() == 0:
            raise InvalidParameterError("overlay needs at least one node")
        self.graph = graph

    @classmethod
    def random(
        cls,
        nodes: int,
        mean_degree: float = 4.0,
        rng: Optional[random.Random] = None,
    ) -> "OverlayNetwork":
        """A connected Erdős–Rényi-ish overlay for experiments.

        Draws G(n, p) with ``p = mean_degree/(n-1)`` and patches
        connectivity by linking components along a random spine, so
        hop distances are always finite.
        """
        if nodes < 1:
            raise InvalidParameterError("nodes must be >= 1")
        rng = rng or random.Random()
        p = min(1.0, mean_degree / max(1, nodes - 1))
        graph = nx.Graph()
        graph.add_nodes_from(range(nodes))
        for a in range(nodes):
            for b in range(a + 1, nodes):
                if rng.random() < p:
                    graph.add_edge(a, b)
        components = [sorted(c) for c in nx.connected_components(graph)]
        for previous, current in zip(components, components[1:]):
            graph.add_edge(rng.choice(previous), rng.choice(current))
        return cls(graph)

    def within_hops(self, node, hops: int) -> Set:
        """All nodes within ``hops`` of ``node`` (including itself)."""
        if hops < 0:
            raise InvalidParameterError("hops must be >= 0")
        return set(
            nx.single_source_shortest_path_length(self.graph, node, cutoff=hops)
        )

    def nodes(self) -> List:
        return list(self.graph.nodes)


@dataclass(frozen=True)
class ReachabilityReport:
    """The d-vs-overhead tradeoff for one placement."""

    hop_bound: int
    server_nodes: FrozenSet
    clients_covered: int
    clients_total: int
    #: Update cost proxy: an update must reach every server holding
    #: data, so more server locations = pricier updates (§7.2).
    update_fanout: int

    @property
    def fully_covered(self) -> bool:
        return self.clients_covered == self.clients_total

    @property
    def coverage_fraction(self) -> float:
        return self.clients_covered / self.clients_total if self.clients_total else 1.0


class ReachabilityPlacement:
    """Greedy hop-``d`` dominating-set placement of servers.

    Chooses server locations so every client node has a server within
    ``d`` hops, greedily picking the node covering the most
    still-uncovered clients (the classic ln(n)-approximate set-cover
    greedy — the same family of heuristic the paper uses for fault
    tolerance).
    """

    def __init__(self, overlay: OverlayNetwork) -> None:
        self.overlay = overlay

    def place_servers(
        self, hop_bound: int, candidates: Optional[Sequence] = None
    ) -> ReachabilityReport:
        """Pick server nodes covering every client within ``hop_bound``.

        ``candidates`` restricts where servers may run (default: any
        node).  Returns the report; coverage can be partial only if
        the candidate set cannot reach some client at all.
        """
        if hop_bound < 0:
            raise InvalidParameterError("hop_bound must be >= 0")
        clients = set(self.overlay.nodes())
        pool = list(candidates) if candidates is not None else list(clients)
        reach: Dict[object, Set] = {
            node: self.overlay.within_hops(node, hop_bound) for node in pool
        }
        uncovered = set(clients)
        chosen: Set = set()
        while uncovered:
            best = max(pool, key=lambda node: len(reach[node] & uncovered))
            gain = reach[best] & uncovered
            if not gain:
                break  # remaining clients unreachable from any candidate
            chosen.add(best)
            uncovered -= gain
        return ReachabilityReport(
            hop_bound=hop_bound,
            server_nodes=frozenset(chosen),
            clients_covered=len(clients) - len(uncovered),
            clients_total=len(clients),
            update_fanout=len(chosen),
        )

    def tradeoff_curve(
        self, hop_bounds: Sequence[int]
    ) -> List[ReachabilityReport]:
        """The §7.2 tradeoff: smaller ``d`` → more servers → costlier updates."""
        return [self.place_servers(d) for d in hop_bounds]
