"""Unit tests for the periodic anti-entropy sweep."""

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.faults import CrashPoint, FaultPlan
from repro.core.entry import Entry, make_entries
from repro.core.exceptions import InvalidParameterError
from repro.maintenance.anti_entropy import AntiEntropySweep
from repro.maintenance.verify import verify_placement
from repro.simulation.engine import SimulationEngine
from repro.simulation.events import AddEvent, CallbackEvent, DeleteEvent
from repro.simulation.replay import TraceReplayer
from repro.strategies.full_replication import FullReplication
from repro.strategies.hashing import HashY
from repro.strategies.registry import available_strategies, create_strategy

PARAMS = {
    "full_replication": {},
    "fixed": {"x": 10},
    "random_server": {"x": 10},
    "round_robin": {"y": 2},
    "hash": {"y": 2},
    "key_partitioning": {},
}


class TestCallbackEvent:
    def test_engine_self_dispatches_callbacks(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule(CallbackEvent(time=5.0, callback=fired.append))
        engine.run()
        assert fired == [5.0]
        assert engine.now == 5.0

    def test_describe(self):
        event = CallbackEvent(time=1.5, callback=lambda t: None, label="x")
        assert event.describe() == "call(x)@1.5"


class TestSweepScheduling:
    def test_period_must_be_positive(self):
        strategy = FullReplication(Cluster(3, seed=1))
        with pytest.raises(InvalidParameterError):
            AntiEntropySweep(strategy, period=0)

    def test_periodic_firing_respects_horizon(self):
        strategy = FullReplication(Cluster(3, seed=1))
        strategy.place(make_entries(5))
        engine = SimulationEngine()
        sweep = AntiEntropySweep(strategy, period=10.0, horizon=35.0)
        sweep.start(engine)
        engine.run()
        # Fires at 10, 20, 30; 40 exceeds the horizon.
        assert sweep.stats.sweeps == 3
        assert engine.pending == 0

    def test_stop_cancels_future_sweeps(self):
        strategy = FullReplication(Cluster(3, seed=2))
        strategy.place(make_entries(5))
        engine = SimulationEngine()
        sweep = AntiEntropySweep(strategy, period=10.0, horizon=100.0)
        sweep.start(engine)
        engine.run(until=15.0)
        assert sweep.stats.sweeps == 1
        sweep.stop()
        engine.run()
        assert sweep.stats.sweeps == 1

    def test_double_start_rejected(self):
        strategy = FullReplication(Cluster(3, seed=3))
        engine = SimulationEngine()
        sweep = AntiEntropySweep(strategy, period=5.0, horizon=50.0)
        sweep.start(engine)
        with pytest.raises(InvalidParameterError):
            sweep.start(engine)


class TestSweepBehaviour:
    def test_clean_placement_costs_nothing(self):
        strategy = FullReplication(Cluster(4, seed=4))
        strategy.place(make_entries(8))
        sweep = AntiEntropySweep(strategy, period=1.0)
        before = strategy.cluster.network.stats.total
        assert sweep.sweep_once() == []
        assert strategy.cluster.network.stats.total == before
        assert sweep.stats.repairs == 0

    def test_sweep_repairs_damage(self):
        strategy = FullReplication(Cluster(4, seed=5))
        strategy.place(make_entries(8))
        strategy.cluster.fail(2)
        strategy.add(Entry("late"))  # server 2 misses the add
        strategy.cluster.recover(2)
        sweep = AntiEntropySweep(strategy, period=1.0)
        violations = sweep.sweep_once()
        assert violations  # damage was seen...
        assert verify_placement(strategy) == []  # ...and mended
        assert sweep.stats.repairs == 1
        assert sweep.stats.repair_messages > 0

    def test_sweep_defers_while_servers_down(self):
        strategy = FullReplication(Cluster(4, seed=6))
        strategy.place(make_entries(8))
        strategy.cluster.fail(2)
        strategy.add(Entry("late"))
        sweep = AntiEntropySweep(strategy, period=1.0, restart_failed=False)
        sweep.sweep_once()
        assert sweep.stats.deferred == 1
        assert sweep.stats.repairs == 0
        assert verify_placement(strategy)  # still broken, by design

    def test_restart_failed_recovers_then_repairs(self):
        strategy = FullReplication(Cluster(4, seed=7))
        strategy.place(make_entries(8))
        strategy.cluster.fail(2)
        strategy.add(Entry("late"))
        sweep = AntiEntropySweep(strategy, period=1.0, restart_failed=True)
        sweep.sweep_once()
        assert sweep.stats.recoveries == 1
        assert sweep.stats.repairs == 1
        assert strategy.cluster.server(2).alive
        assert verify_placement(strategy) == []


class TestConvergenceUnderCrashPlans:
    @pytest.mark.parametrize(
        "name",
        [n for n in available_strategies() if n != "key_partitioning"],
    )
    def test_all_schemes_converge_after_crash_point_plan(self, name):
        """Anti-entropy drives every scheme to zero violations after a
        fault plan crashes servers mid-protocol during updates."""
        cluster = Cluster(8, seed=20)
        strategy = create_strategy(name, cluster, **PARAMS[name])
        strategy.place(make_entries(30))
        cluster.network.install_fault_plan(
            FaultPlan(
                seed=21,
                crash_points=(
                    CrashPoint(1, "StoreMessage", after=3),
                    CrashPoint(2, "RemoveMessage", after=2),
                    CrashPoint(4, "StorePositioned", after=2),
                ),
            )
        )
        replayer = TraceReplayer(strategy)
        sweep = AntiEntropySweep(
            strategy, period=15.0, restart_failed=True, horizon=200.0
        )
        sweep.start(replayer.engine)
        events = [
            AddEvent(float(2 * i + 1), Entry(f"n{i}")) for i in range(40)
        ] + [DeleteEvent(float(2 * i + 2), Entry(f"v{i + 1}")) for i in range(20)]
        replayer.replay(sorted(events, key=lambda e: e.time))

        sweep.stop()
        cluster.network.uninstall_fault_plan()
        cluster.recover_all()
        final = sweep.sweep_once()  # one manual mend after quiescence
        assert verify_placement(strategy) == [], (
            f"{name} did not converge: {final}"
        )

    def test_delete_resurrection_when_holder_crashes_mid_delete(self):
        """A holder that crashes before a delete reaches it keeps a
        stale copy; the no-tombstone repair then *resurrects* the
        deleted entry from that copy — the documented honest failure
        mode of the paper's design, pinned down under a crash-point
        fault plan."""
        cluster = Cluster(8, seed=22)
        strategy = HashY(cluster, y=2)
        strategy.place(make_entries(20))
        victim = Entry("v5")
        holder = strategy.family.assign_distinct(victim)[0]
        # Find another entry sharing that holder: deleting it first
        # trips the crash point, so the holder is already down when
        # the victim's delete goes out.
        trigger = next(
            entry
            for entry in make_entries(20)
            if entry != victim
            and holder in strategy.family.assign_distinct(entry)
        )
        cluster.network.install_fault_plan(
            FaultPlan(
                crash_points=(CrashPoint(holder, "RemoveMessage", after=1),),
            )
        )
        strategy.delete(trigger)  # holder processes it, then crashes
        assert not cluster.server(holder).alive
        strategy.delete(victim)  # suppressed at the crashed holder
        cluster.network.uninstall_fault_plan()
        cluster.recover_all()
        # The stale copy is a structural violation (its twin replica
        # target is missing the entry).
        assert verify_placement(strategy)
        sweep = AntiEntropySweep(strategy, period=1.0)
        sweep.sweep_once()
        assert verify_placement(strategy) == []
        # Repair trusted the stale copy: the deleted entry is back on
        # every one of its targets, fully looked-up-able.
        assert victim in strategy.lookup_all()
