"""Lookup workload generation.

The static experiments issue batches of random lookups against a fixed
placement (5000 per run in Figure 4, 10000 per instance in Figure 9);
dynamic experiments interleave lookups with updates.  This module
generates both shapes.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional, Sequence

from repro.core.exceptions import InvalidParameterError
from repro.simulation.events import LookupEvent


class LookupWorkload:
    """Generates lookup events / batches with configurable targets.

    Parameters
    ----------
    target:
        Fixed target answer size, or None to draw from ``target_range``.
    target_range:
        Inclusive ``(low, high)`` bounds for uniformly random targets,
        modelling "a diverse group of clients with different target
        answer size requirements" (§4.3).
    """

    def __init__(
        self,
        target: Optional[int] = None,
        target_range: Optional[Sequence[int]] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        if (target is None) == (target_range is None):
            raise InvalidParameterError(
                "provide exactly one of target / target_range"
            )
        if target is not None and target < 1:
            raise InvalidParameterError("target must be >= 1")
        if target_range is not None:
            low, high = target_range
            if not 1 <= low <= high:
                raise InvalidParameterError("target_range must satisfy 1 <= low <= high")
        self.target = target
        self.target_range = tuple(target_range) if target_range else None
        self.rng = rng if rng is not None else random.Random()

    def next_target(self) -> int:
        if self.target is not None:
            return self.target
        low, high = self.target_range  # type: ignore[misc]
        return self.rng.randint(low, high)

    def batch(self, count: int) -> List[int]:
        """``count`` lookup targets, for direct strategy driving."""
        return [self.next_target() for _ in range(count)]

    def events_at(self, times: Iterable[float]) -> List[LookupEvent]:
        """One lookup event per timestamp, for trace interleaving."""
        return [LookupEvent(time, target=self.next_target()) for time in times]

    def events_uniform(
        self, count: int, start: float, end: float
    ) -> List[LookupEvent]:
        """``count`` lookups at uniformly random times in [start, end]."""
        if end < start:
            raise InvalidParameterError("end must be >= start")
        times = sorted(self.rng.uniform(start, end) for _ in range(count))
        return self.events_at(times)
