"""Unit tests for failure injection."""

import pytest

from repro.cluster.failures import FailureInjector, FailurePattern
from repro.core.entry import Entry
from repro.core.exceptions import InvalidParameterError


def _populate(cluster):
    cluster.server(0).store("k").add(Entry("a"))
    cluster.server(1).store("k").add(Entry("b"))
    cluster.server(2).store("k").add(Entry("b"))


class TestPatterns:
    def test_random_pattern_distinct(self, cluster):
        injector = FailureInjector(cluster)
        pattern = injector.random_pattern(5)
        assert len(set(pattern.server_ids)) == 5
        assert pattern.origin == "random"

    def test_random_pattern_bounds(self, cluster):
        injector = FailureInjector(cluster)
        with pytest.raises(InvalidParameterError):
            injector.random_pattern(11)
        with pytest.raises(InvalidParameterError):
            injector.random_pattern(-1)

    def test_pattern_len_and_iter(self):
        pattern = FailurePattern((1, 2, 3))
        assert len(pattern) == 3
        assert list(pattern) == [1, 2, 3]


class TestInjection:
    def test_apply_and_revert(self, cluster):
        injector = FailureInjector(cluster)
        pattern = FailurePattern((0, 2))
        injector.apply(pattern)
        assert cluster.failed_count == 2
        injector.revert(pattern)
        assert cluster.failed_count == 0

    def test_context_manager_restores(self, cluster):
        injector = FailureInjector(cluster)
        with injector.injected(FailurePattern((1,))):
            assert not cluster.server(1).alive
        assert cluster.server(1).alive

    def test_context_manager_restores_on_error(self, cluster):
        injector = FailureInjector(cluster)
        with pytest.raises(RuntimeError):
            with injector.injected(FailurePattern((1,))):
                raise RuntimeError("boom")
        assert cluster.server(1).alive

    def test_nested_injections_compose(self, cluster):
        injector = FailureInjector(cluster)
        cluster.fail(5)  # pre-existing failure
        with injector.injected(FailurePattern((1,))):
            with injector.injected(FailurePattern((2,))):
                assert cluster.failed_count == 3
            assert cluster.failed_count == 2
        assert cluster.failed_count == 1
        assert not cluster.server(5).alive

    def test_overlapping_patterns_compose(self, cluster):
        # Regression: reverting the inner of two overlapping patterns
        # used to resurrect server 1 while the outer pattern still
        # held it failed.
        injector = FailureInjector(cluster)
        with injector.injected(FailurePattern((1, 2))):
            with injector.injected(FailurePattern((1, 3))):
                assert cluster.failed_count == 3
            # Server 1 is still covered by the outer pattern.
            assert not cluster.server(1).alive
            assert cluster.server(3).alive
        assert cluster.failed_count == 0

    def test_revert_never_resurrects_preexisting_failure(self, cluster):
        # Regression: a pattern overlapping a server that was already
        # down used to bring it back up on revert.
        injector = FailureInjector(cluster)
        cluster.fail(4)
        with injector.injected(FailurePattern((4, 5))):
            assert cluster.failed_count == 2
        assert not cluster.server(4).alive
        assert cluster.server(5).alive

    def test_revert_without_apply_is_noop(self, cluster):
        injector = FailureInjector(cluster)
        cluster.fail(7)
        injector.revert(FailurePattern((7, 8)))
        assert not cluster.server(7).alive
        assert cluster.server(8).alive

    def test_double_revert_is_idempotent(self, cluster):
        injector = FailureInjector(cluster)
        pattern = FailurePattern((1,))
        injector.apply(pattern)
        injector.revert(pattern)
        cluster.fail(1)  # an unrelated, later failure
        injector.revert(pattern)
        assert not cluster.server(1).alive


class TestSurvives:
    def test_survives_when_coverage_held_elsewhere(self, cluster):
        _populate(cluster)
        injector = FailureInjector(cluster)
        # b survives on server 2 even if server 1 dies; a on server 0.
        assert injector.survives("k", 2, FailurePattern((1,)))

    def test_fails_when_unique_holder_dies(self, cluster):
        _populate(cluster)
        injector = FailureInjector(cluster)
        assert not injector.survives("k", 2, FailurePattern((0,)))

    def test_cluster_restored_after_survives(self, cluster):
        _populate(cluster)
        injector = FailureInjector(cluster)
        injector.survives("k", 2, FailurePattern((0, 1)))
        assert cluster.failed_count == 0
