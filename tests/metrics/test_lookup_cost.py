"""Unit tests for the lookup-cost estimator (§4.2)."""

import pytest

from repro.cluster.cluster import Cluster
from repro.core.entry import make_entries
from repro.core.exceptions import InvalidParameterError
from repro.metrics.lookup_cost import estimate_lookup_cost
from repro.strategies.fixed import FixedX
from repro.strategies.full_replication import FullReplication
from repro.strategies.round_robin import RoundRobinY


class TestEstimates:
    def test_full_replication_cost_is_one(self, cluster):
        strategy = FullReplication(cluster)
        strategy.place(make_entries(50))
        estimate = estimate_lookup_cost(strategy, 30, lookups=200)
        assert estimate.mean_cost == 1.0
        assert estimate.max_cost == 1
        assert estimate.failures == 0

    def test_round_robin_step(self):
        strategy = RoundRobinY(Cluster(10, seed=1), y=2)
        strategy.place(make_entries(100))
        assert estimate_lookup_cost(strategy, 20, lookups=100).mean_cost == 1.0
        assert estimate_lookup_cost(strategy, 21, lookups=100).mean_cost == 2.0

    def test_fixed_beyond_x_all_failures(self, cluster):
        strategy = FixedX(cluster, x=10)
        strategy.place(make_entries(100))
        estimate = estimate_lookup_cost(strategy, 15, lookups=100)
        assert estimate.failure_rate == 1.0
        assert estimate.mean_cost == 1.0  # one futile contact each

    def test_fields(self, cluster):
        strategy = FullReplication(cluster)
        strategy.place(make_entries(10))
        estimate = estimate_lookup_cost(strategy, 5, lookups=42)
        assert estimate.target == 5
        assert estimate.lookups == 42

    def test_validation(self, cluster):
        strategy = FullReplication(cluster)
        strategy.place(make_entries(10))
        with pytest.raises(InvalidParameterError):
            estimate_lookup_cost(strategy, 5, lookups=0)
