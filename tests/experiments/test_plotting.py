"""Unit tests for the ASCII plotting module."""

import pytest

from repro.core.exceptions import InvalidParameterError
from repro.experiments.plotting import ascii_plot, plot_experiment
from repro.experiments.runner import ExperimentResult


class TestAsciiPlot:
    def test_single_series_renders(self):
        text = ascii_plot({"curve": {0: 0.0, 1: 1.0, 2: 4.0}})
        assert "A" in text
        assert "legend: A=curve" in text

    def test_markers_assigned_in_order(self):
        text = ascii_plot({"one": {0: 1}, "two": {0: 2}, "three": {0: 3}})
        assert "A=one" in text and "B=two" in text and "C=three" in text

    def test_monotone_series_rises_leftward_to_rightward(self):
        text = ascii_plot({"c": {0: 0.0, 10: 10.0}}, width=20, height=8)
        rows = [line for line in text.splitlines() if "|" in line]
        top_row = rows[0]
        bottom_row = rows[-1]
        # The max lands top-right, the min bottom-left.
        assert top_row.rstrip().endswith("A")
        assert bottom_row.split("|")[1].startswith("A")

    def test_axis_labels_present(self):
        text = ascii_plot(
            {"c": {1: 2.0, 5: 7.5}},
            title="My Figure",
            x_label="target",
            y_label="cost",
        )
        assert text.splitlines()[0] == "My Figure"
        assert "[x: target]" in text
        assert "[y: cost]" in text

    def test_log_scale_ticks_show_raw_values(self):
        text = ascii_plot(
            {"c": {0: 0.01, 1: 10.0}}, log_y=True, y_label="percent"
        )
        assert "log scale" in text
        assert "10" in text and "0.01" in text

    def test_log_scale_clamps_zeros(self):
        # Zero values must not crash the log transform.
        text = ascii_plot({"c": {0: 0.0, 1: 1.0}}, log_y=True)
        assert "A" in text

    def test_flat_series_renders(self):
        text = ascii_plot({"c": {0: 5.0, 1: 5.0}})
        assert "A" in text

    def test_empty_rejected(self):
        with pytest.raises(InvalidParameterError):
            ascii_plot({})
        with pytest.raises(InvalidParameterError):
            ascii_plot({"c": {}})

    def test_too_small_rejected(self):
        with pytest.raises(InvalidParameterError):
            ascii_plot({"c": {0: 1}}, width=2, height=2)


class TestPlotExperiment:
    def _result(self):
        return ExperimentResult(
            name="demo",
            headers=["t", "a", "b", "note"],
            rows=[
                {"t": 1, "a": 1.0, "b": 2.0, "note": "x"},
                {"t": 2, "a": 2.0, "b": 1.0, "note": "y"},
            ],
        )

    def test_plots_numeric_columns_only(self):
        text = plot_experiment(self._result())
        assert "A=a" in text and "B=b" in text
        assert "note" not in text.split("legend:")[1]

    def test_explicit_series_selection(self):
        text = plot_experiment(self._result(), series_headers=["b"])
        assert "A=b" in text
        assert "=a" not in text

    def test_empty_result_rejected(self):
        empty = ExperimentResult(name="none", headers=["x"])
        with pytest.raises(InvalidParameterError):
            plot_experiment(empty)
