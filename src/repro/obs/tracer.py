"""Structured tracing: typed span/event records on the virtual clock.

The experiments' aggregate counters say *how much* happened; a trace
says *what* happened, in order, with causality.  A :class:`Tracer`
collects a flat sequence of :class:`TraceRecord` objects of two kinds:

- **spans** — operations with extent (a lookup from first contact to
  merged answer, an anti-entropy sweep from verify to repair), opened
  with :meth:`Tracer.begin_span` and closed with
  :meth:`Tracer.end_span`, carrying summary fields at close;
- **events** — instantaneous observations (one server contact, one
  retry pass, one update-propagation delivery, a server crash),
  optionally parented to an enclosing span.

Every record is stamped with the tracer's clock — bound to a
:class:`~repro.simulation.engine.SimulationEngine`'s virtual clock via
:meth:`bind_clock` (see ``SimulationEngine.attach_tracer``) — and the
seeded ``run_id``, so a record in a trace file is always traceable to
the exact configuration that produced it.

Tracing is strictly opt-in and must be zero-cost when disabled: every
instrumentation site in the codebase guards on ``tracer is not None``
and draws no randomness, so runs without a tracer are byte-identical
to runs before tracing existed, and runs *with* a tracer produce the
same experiment outputs plus a trace.
"""

from __future__ import annotations

import itertools
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional, Union

from repro.core.exceptions import InvalidParameterError

#: Bumped whenever the record schema changes incompatibly.
TRACE_FORMAT_VERSION = 1

#: Keys every serialized record must carry (see exporters.validate_trace).
RECORD_KEYS = (
    "kind",
    "name",
    "seq",
    "span_id",
    "parent_id",
    "start",
    "end",
    "run_id",
    "fields",
)

Clock = Callable[[], float]


class TraceRecord:
    """One immutable span or event observation.

    Attributes
    ----------
    kind:
        ``"span"`` or ``"event"``.
    name:
        The record type: ``"lookup"``, ``"contact"``, ``"retry"``,
        ``"update"``, ``"repair_sweep"``, ``"server.fail"``, ...
    seq:
        Monotonic per-tracer sequence number (file order).
    span_id:
        For spans, the span's own id; for events, the id of the
        enclosing span (or None for free-standing events).
    parent_id:
        For spans, the enclosing span's id (or None).  Events carry
        their enclosing span in ``span_id`` and leave this None.
    start, end:
        Virtual-clock timestamps; equal for events.
    run_id:
        The seeded run identifier of the owning tracer.
    fields:
        Record-specific payload (server ids, outcomes, totals, ...).
    """

    __slots__ = ("kind", "name", "seq", "span_id", "parent_id", "start",
                 "end", "run_id", "fields")

    def __init__(
        self,
        kind: str,
        name: str,
        seq: int,
        span_id: Optional[int],
        parent_id: Optional[int],
        start: float,
        end: float,
        run_id: str,
        fields: Dict[str, Any],
    ) -> None:
        self.kind = kind
        self.name = name
        self.seq = seq
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self.end = end
        self.run_id = run_id
        self.fields = fields

    def as_dict(self) -> Dict[str, Any]:
        """A JSON-serializable flat dict (the JSONL line payload)."""
        return {
            "kind": self.kind,
            "name": self.name,
            "seq": self.seq,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "end": self.end,
            "run_id": self.run_id,
            "fields": dict(self.fields),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TraceRecord({self.kind} {self.name!r} seq={self.seq} "
            f"[{self.start:g}, {self.end:g}] {self.fields!r})"
        )


class SpanHandle:
    """An open span: pass it as ``parent`` to nest events inside it."""

    __slots__ = ("span_id", "name", "start", "parent_id", "fields", "closed")

    def __init__(
        self,
        span_id: int,
        name: str,
        start: float,
        parent_id: Optional[int],
        fields: Dict[str, Any],
    ) -> None:
        self.span_id = span_id
        self.name = name
        self.start = start
        self.parent_id = parent_id
        self.fields = fields
        self.closed = False

    def note(self, **fields: Any) -> None:
        """Attach extra fields to the span before it closes."""
        self.fields.update(fields)


Parent = Union[SpanHandle, int, None]


def _parent_id(parent: Parent) -> Optional[int]:
    if parent is None:
        return None
    if isinstance(parent, SpanHandle):
        return parent.span_id
    return int(parent)


class Tracer:
    """Collects typed span/event records for one run.

    Parameters
    ----------
    run_id:
        Identifier stamped on every record; derive it from the run's
        seed (e.g. ``"chaos-soak-seed0"``) so traces are reproducible
        artifacts, not anecdotes.
    clock:
        Zero-argument callable returning the current virtual time.
        Defaults to a constant 0.0; bind the engine's clock with
        :meth:`bind_clock` (or ``SimulationEngine.attach_tracer``).
    """

    def __init__(self, run_id: str = "run", clock: Optional[Clock] = None) -> None:
        if not run_id:
            raise InvalidParameterError("run_id must be non-empty")
        self.run_id = run_id
        self._clock: Clock = clock if clock is not None else (lambda: 0.0)
        self._seq = itertools.count(1)
        self._span_ids = itertools.count(1)
        self.records: List[TraceRecord] = []

    # -- clock ---------------------------------------------------------------

    def bind_clock(self, clock: Clock) -> None:
        """Stamp subsequent records from ``clock`` (the engine's now)."""
        self._clock = clock

    def now(self) -> float:
        return self._clock()

    # -- spans ---------------------------------------------------------------

    def begin_span(self, name: str, parent: Parent = None, **fields: Any) -> SpanHandle:
        """Open a span at the current clock; close with :meth:`end_span`."""
        return SpanHandle(
            span_id=next(self._span_ids),
            name=name,
            start=self.now(),
            parent_id=_parent_id(parent),
            fields=dict(fields),
        )

    def end_span(self, handle: SpanHandle, **fields: Any) -> TraceRecord:
        """Close ``handle``, appending its record with summary ``fields``."""
        if handle.closed:
            raise InvalidParameterError(
                f"span {handle.name!r} (id {handle.span_id}) already closed"
            )
        handle.closed = True
        handle.fields.update(fields)
        record = TraceRecord(
            kind="span",
            name=handle.name,
            seq=next(self._seq),
            span_id=handle.span_id,
            parent_id=handle.parent_id,
            start=handle.start,
            end=self.now(),
            run_id=self.run_id,
            fields=handle.fields,
        )
        self.records.append(record)
        return record

    @contextmanager
    def span(self, name: str, parent: Parent = None, **fields: Any) -> Iterator[SpanHandle]:
        """Context-manager sugar over begin_span/end_span."""
        handle = self.begin_span(name, parent=parent, **fields)
        try:
            yield handle
        finally:
            self.end_span(handle)

    # -- events --------------------------------------------------------------

    def event(self, name: str, parent: Parent = None, **fields: Any) -> TraceRecord:
        """Record an instantaneous observation at the current clock."""
        now = self.now()
        record = TraceRecord(
            kind="event",
            name=name,
            seq=next(self._seq),
            span_id=_parent_id(parent),
            parent_id=None,
            start=now,
            end=now,
            run_id=self.run_id,
            fields=dict(fields),
        )
        self.records.append(record)
        return record

    # -- introspection -------------------------------------------------------

    def spans(self, name: Optional[str] = None) -> List[TraceRecord]:
        """All closed span records, optionally filtered by name."""
        return [
            r for r in self.records
            if r.kind == "span" and (name is None or r.name == name)
        ]

    def events(self, name: Optional[str] = None) -> List[TraceRecord]:
        """All event records, optionally filtered by name."""
        return [
            r for r in self.records
            if r.kind == "event" and (name is None or r.name == name)
        ]

    def children_of(self, span: Union[SpanHandle, TraceRecord, int]) -> List[TraceRecord]:
        """Events inside and spans directly under the given span."""
        span_id = span if isinstance(span, int) else span.span_id
        return [
            r for r in self.records
            if (r.kind == "event" and r.span_id == span_id)
            or (r.kind == "span" and r.parent_id == span_id)
        ]

    def __len__(self) -> int:
        return len(self.records)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Tracer(run_id={self.run_id!r}, records={len(self.records)})"
