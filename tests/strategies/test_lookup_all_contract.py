"""The ``lookup_all`` == ``partial_lookup(0)`` contract, per strategy.

Target 0 is the explicit "fetch everything" request: no target can be
met, so the client walks the strategy's full contact order and every
per-server answer is the entire store (``EntryStore.sample`` treats
``count <= 0`` as "all").  See
:meth:`repro.strategies.base.PlacementStrategy.lookup_all`.
"""

from __future__ import annotations

import pytest

from repro.cluster.cluster import Cluster
from repro.core.entry import make_entries
from repro.strategies.fixed import FixedX
from repro.strategies.full_replication import FullReplication
from repro.strategies.hashing import HashY
from repro.strategies.random_server import RandomServerX
from repro.strategies.round_robin import RoundRobinY

SCHEMES = {
    "full_replication": lambda cluster: FullReplication(cluster),
    "fixed": lambda cluster: FixedX(cluster, x=20),
    "random_server": lambda cluster: RandomServerX(cluster, x=20),
    "round_robin": lambda cluster: RoundRobinY(cluster, y=2),
    "hash": lambda cluster: HashY(cluster, y=2),
}


def _placed(name, seed=11):
    cluster = Cluster(10, seed=seed)
    strategy = SCHEMES[name](cluster)
    entries = make_entries(100)
    strategy.place(entries)
    return cluster, strategy, entries


@pytest.mark.parametrize("name", sorted(SCHEMES))
def test_lookup_all_is_partial_lookup_zero(name):
    _, strategy, _ = _placed(name)
    all_entries = strategy.lookup_all()
    # Same draw-free contract from the result side: target 0 never
    # trims the merged answer, so the sets must coincide.
    assert all_entries == set(strategy.partial_lookup(0).entries)


@pytest.mark.parametrize("name", ["random_server", "round_robin", "hash"])
def test_lookup_all_returns_coverage_set_for_full_walk_schemes(name):
    cluster, strategy, _ = _placed(name)
    assert strategy.lookup_all() == cluster.coverage_set(strategy.key)


@pytest.mark.parametrize("name", ["full_replication", "fixed"])
def test_lookup_all_single_contact_schemes_see_one_equal_store(name):
    # max_servers=1 schemes fetch one server's store — which equals
    # their coverage set, because every server stores the same subset.
    cluster, strategy, _ = _placed(name)
    assert strategy.lookup_all() == cluster.coverage_set(strategy.key)


def test_lookup_all_skips_failed_servers():
    cluster, strategy, _ = _placed("round_robin")
    cluster.fail(3)
    assert strategy.lookup_all() == cluster.coverage_set(strategy.key)
