"""Lookup latency in round trips, exploiting lookup *predictability*.

§3.5 makes an observation the lookup-cost metric alone doesn't
capture: "while a Round-y client can tell, in advance, how many
servers it needs to contact for a lookup, a Hash-y client cannot".
A client that knows its contact set up front can fan the requests out
*in parallel* and pay one round trip; a client that only learns it
needs another server after merging a reply pays one round trip per
server.

This module scores each scheme's expected lookup latency in round
trips under that model:

- full replication / Fixed-x: 1 contact → 1 round.
- Round-Robin-y: the client computes ``k = ⌈t·n/(y·h)⌉`` from public
  parameters and contacts ``s, s+y, ..., s+(k−1)y`` concurrently →
  1 round (when nothing is failed).
- RandomServer-x / Hash-y: contacts are adaptive → rounds = servers
  actually contacted.

The measurement drives real lookups, so adaptive schemes' rounds come
from the simulator, not a formula.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean
from typing import List

from repro.core.exceptions import InvalidParameterError
from repro.strategies.base import PlacementStrategy
from repro.strategies.fixed import FixedX
from repro.strategies.full_replication import FullReplication
from repro.strategies.round_robin import RoundRobinY


@dataclass(frozen=True)
class LatencyEstimate:
    """Expected lookup latency in round trips, plus its inputs."""

    target: int
    lookups: int
    mean_rounds: float
    mean_contacts: float
    predictable: bool


def _is_predictable(strategy: PlacementStrategy) -> bool:
    """Whether the client knows its full contact set before sending.

    Single-contact schemes are trivially predictable; Round-Robin-y is
    predictable by the §3.5 observation.  The randomized multi-contact
    schemes are not: the next contact depends on what the previous
    replies contained.
    """
    return isinstance(strategy, (FullReplication, FixedX, RoundRobinY))


def estimate_lookup_latency(
    strategy: PlacementStrategy, target: int, lookups: int = 500
) -> LatencyEstimate:
    """Measure expected round trips per lookup under the fan-out model.

    For predictable schemes every lookup costs one round (all contacts
    issued concurrently); for adaptive schemes each contacted server
    is a dependent round.  Contact counts come from real simulated
    lookups either way, so failures and placement randomness are
    reflected.
    """
    if lookups < 1:
        raise InvalidParameterError(f"lookups must be >= 1, got {lookups}")
    predictable = _is_predictable(strategy)
    rounds: List[int] = []
    contacts: List[int] = []
    for _ in range(lookups):
        result = strategy.partial_lookup(target)
        contacts.append(result.lookup_cost)
        if predictable:
            # One parallel fan-out round (failed contacts would force
            # a second, adaptive round: fall back to counting those).
            rounds.append(1 if not result.failed_contacts else 2)
        else:
            rounds.append(max(1, result.lookup_cost))
    return LatencyEstimate(
        target=target,
        lookups=lookups,
        mean_rounds=mean(rounds),
        mean_contacts=mean(contacts),
        predictable=predictable,
    )
