"""The sans-IO server core: dispatch, dedupe, and the event surface."""

import random

import pytest

from repro.cluster.messages import AddRequest, LookupRequest
from repro.cluster.server import Server, ServerLogic
from repro.core.entry import Entry, make_entries
from repro.protocol import MessageReceived, Reply, ServerProtocol, answer_lookup


class _CountingLogic(ServerLogic):
    """Stores adds, answers lookups, counts handled messages."""

    def __init__(self):
        self.handled = 0

    def handle(self, server, message, network):
        self.handled += 1
        if isinstance(message, AddRequest):
            server.store("k").add(message.entry)
            return "added"
        if isinstance(message, LookupRequest):
            return server.store("k").as_list()
        return None


def make_server():
    server = Server(0)
    logic = _CountingLogic()
    server.install_logic("k", logic)
    return server, logic


class TestDispatch:
    def test_routes_to_installed_logic(self):
        server, logic = make_server()
        reply = server.protocol.dispatch("k", AddRequest(Entry("v1")), peers=None)
        assert reply == "added"
        assert logic.handled == 1
        assert Entry("v1") in server.store("k")

    def test_missing_logic_raises_with_server_and_key(self):
        server, _ = make_server()
        with pytest.raises(RuntimeError, match=r"server 0 .* 'other'"):
            server.protocol.dispatch("other", AddRequest(Entry("v1")), peers=None)

    def test_server_receive_is_a_thin_driver(self):
        # Server.receive and protocol.dispatch are the same code path.
        server, logic = make_server()
        server.receive("k", AddRequest(Entry("v2")), network=None)
        assert logic.handled == 1


class TestDedupe:
    def test_duplicate_delivery_returns_cached_reply(self):
        server, logic = make_server()
        first = server.protocol.dispatch_dedup(
            "k", AddRequest(Entry("v1")), None, delivery_id=7
        )
        second = server.protocol.dispatch_dedup(
            "k", AddRequest(Entry("v1")), None, delivery_id=7
        )
        assert first == second == "added"
        assert logic.handled == 1  # handler ran once

    def test_distinct_delivery_ids_both_run(self):
        server, logic = make_server()
        server.protocol.dispatch_dedup("k", AddRequest(Entry("v1")), None, 1)
        server.protocol.dispatch_dedup("k", AddRequest(Entry("v2")), None, 2)
        assert logic.handled == 2

    def test_window_evicts_oldest(self):
        server, logic = make_server()
        for i in range(ServerProtocol.DEDUP_WINDOW + 1):
            server.protocol.dispatch_dedup("k", AddRequest(Entry(f"v{i}")), None, i)
        handled = logic.handled
        # Delivery 0 was evicted: re-delivery runs the handler again.
        server.protocol.dispatch_dedup("k", AddRequest(Entry("v0")), None, 0)
        assert logic.handled == handled + 1

    def test_wipe_forgets_deliveries(self):
        server, logic = make_server()
        server.protocol.dispatch_dedup("k", AddRequest(Entry("v1")), None, 5)
        server.wipe()
        server.protocol.dispatch_dedup("k", AddRequest(Entry("v1")), None, 5)
        assert logic.handled == 2


class TestEventSurface:
    def test_on_message_emits_one_reply_effect(self):
        server, _ = make_server()
        server.store("k").add(Entry("v1"))
        effects = server.protocol.on_message(
            MessageReceived("k", LookupRequest(0)), peers=None
        )
        assert [type(e) for e in effects] == [Reply]
        assert effects[0].value == [Entry("v1")]

    def test_on_message_with_delivery_id_dedupes(self):
        server, logic = make_server()
        event = MessageReceived("k", AddRequest(Entry("v9")), delivery_id=3)
        first = server.protocol.on_message(event, peers=None)
        second = server.protocol.on_message(event, peers=None)
        assert first[0].value == second[0].value == "added"
        assert logic.handled == 1


class TestAnswerLookup:
    def test_zero_target_returns_everything(self):
        server, _ = make_server()
        entries = make_entries(5)
        for entry in entries:
            server.store("k").add(entry)
        assert answer_lookup(server.store("k"), 0, random.Random(1)) == entries

    def test_sampling_matches_store_sample(self):
        server, _ = make_server()
        for entry in make_entries(10):
            server.store("k").add(entry)
        expect = server.store("k").sample(4, random.Random(9))
        assert answer_lookup(server.store("k"), 4, random.Random(9)) == expect
