"""Benchmark: regenerate Figure 6 (coverage vs total storage).

Paper shape: Round/Hash cover min(budget, h); Fixed covers budget/n;
RandomServer follows h·(1 − (1 − x/h)^n), the inverted exponential.
"""

from _bench_utils import render_and_print

from repro.experiments.fig6_coverage import Fig6Config, run


def test_bench_fig6_coverage(benchmark):
    config = Fig6Config(runs=100)
    result = benchmark.pedantic(lambda: run(config), rounds=1, iterations=1)
    render_and_print(result)

    for row in result.rows:
        budget = row["budget"]
        assert row["round_robin"] == min(budget, 100)
        assert row["hash"] == min(budget, 100)
        assert row["fixed"] == budget // 10
        # The stochastic RandomServer mean tracks its closed form.
        assert abs(row["random_server"] - row["random_server_expected"]) < 1.5
        assert row["fixed"] <= row["random_server"] <= 100
