"""Worst-case fault tolerance (paper §4.4 and Appendix A).

The metric: the maximum number of server failures, chosen
adversarially, that the placement survives while still covering at
least ``t`` distinct entries — one less than the *minimum* failures
that break a size-``t`` lookup.  Finding the true minimum is
SET-COVER-hard, so the paper uses a greedy heuristic: score each
server by ``X_S = Σ_{e ∈ V_S} 1/f_e`` (``f_e`` = how many operational
servers hold entry ``e``; rare entries make a server important), fail
the highest-scoring server, recompute, repeat while coverage allows.

For small instances :func:`exact_fault_tolerance` brute-forces the
true optimum, used in tests and the ablation bench to quantify the
heuristic's gap.  Note the direction of the approximation: the greedy
adversary may miss the true minimum breaking set, so
``greedy_fault_tolerance >= exact_fault_tolerance`` always — the
heuristic is an *optimistic* estimate of worst-case tolerance.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, List, Optional, Set

from repro.core.exceptions import InvalidParameterError
from repro.strategies.base import PlacementStrategy


def server_importance(placement: Dict[int, Set]) -> Dict[int, float]:
    """Appendix A step 1: ``X_S = Σ 1/f_e`` over each server's entries.

    ``placement`` maps server id → set of entries, covering only the
    servers still operational.  A server holding an entry nobody else
    has contributes 1.0 for it; an entry on every server contributes
    only ``1/n``.
    """
    replica_counts: Dict[object, int] = {}
    for entries in placement.values():
        for entry in entries:
            replica_counts[entry] = replica_counts.get(entry, 0) + 1
    return {
        server_id: sum(1.0 / replica_counts[entry] for entry in entries)
        for server_id, entries in placement.items()
    }


def greedy_fault_tolerance(
    strategy: PlacementStrategy,
    target: int,
    return_order: bool = False,
):
    """Appendix A's greedy heuristic for tolerable failures.

    Repeatedly fails the most-important operational server while the
    *remaining* servers still cover at least ``target`` entries.
    Returns the number of servers failed (and, optionally, the failure
    order).  The cluster itself is never mutated — the heuristic works
    on a copy of the placement.

    Ties on importance break toward the lowest server id, for
    determinism.
    """
    if target < 0:
        raise InvalidParameterError(f"target must be >= 0, got {target}")
    placement = {
        server_id: set(entries)
        for server_id, entries in strategy.placement().items()
        if strategy.cluster.server(server_id).alive
    }
    failed_order: List[int] = []
    while placement:
        importance = server_importance(placement)
        victim = max(importance, key=lambda sid: (importance[sid], -sid))
        survivors_cover: Set = set()
        for server_id, entries in placement.items():
            if server_id != victim:
                survivors_cover |= entries
        if len(survivors_cover) < target:
            break
        del placement[victim]
        failed_order.append(victim)
    tolerated = len(failed_order)
    # Never report "all n can fail": with zero operational servers no
    # lookup can be answered at all, whatever the target.
    if tolerated == strategy.cluster.size:
        tolerated -= 1
        failed_order = failed_order[:-1]
    if return_order:
        return tolerated, failed_order
    return tolerated


def exact_fault_tolerance(strategy: PlacementStrategy, target: int) -> int:
    """Brute-force the true worst-case tolerable failures.

    Checks all failure subsets in increasing size; the answer is
    ``k - 1`` where ``k`` is the smallest subset whose removal drops
    coverage below ``target``.  Exponential in ``n`` — for tests and
    ablations on small clusters only.
    """
    if target < 0:
        raise InvalidParameterError(f"target must be >= 0, got {target}")
    placement = {
        server_id: set(entries)
        for server_id, entries in strategy.placement().items()
        if strategy.cluster.server(server_id).alive
    }
    server_ids = sorted(placement)
    n = len(server_ids)
    for failures in range(1, n + 1):
        for failed in combinations(server_ids, failures):
            failed_set = set(failed)
            cover: Set = set()
            for server_id in server_ids:
                if server_id not in failed_set:
                    cover |= placement[server_id]
            if len(cover) < target:
                return failures - 1
    return n - 1
