"""Placement verification and repair.

The paper's protocols assume updates reach every relevant server;
servers that miss updates while failed are never reconciled ("quickly
repaired as new add events arrive" is the paper's only nod at repair,
§6.2).  This package provides the missing operational tooling:

- :func:`verify_placement` checks a live placement against its
  scheme's structural invariants and reports violations;
- :func:`repair` restores the invariants, either naively (re-place the
  surviving coverage) or with targeted per-scheme fix-ups where the
  scheme's structure pinpoints what is wrong (Hash-y);
- :class:`AntiEntropySweep` runs verify+repair periodically on a
  simulation engine, closing the reconciliation gap for entries the
  paper's "repaired as new adds arrive" hand-wave never reaches.
"""

from repro.maintenance.verify import (
    PlacementViolation,
    verify_directory,
    verify_placement,
)
from repro.maintenance.repair import RepairReport, repair
from repro.maintenance.anti_entropy import AntiEntropySweep, SweepStats

__all__ = [
    "PlacementViolation",
    "verify_placement",
    "verify_directory",
    "RepairReport",
    "repair",
    "AntiEntropySweep",
    "SweepStats",
]
