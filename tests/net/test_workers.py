"""Worker-fleet machinery: delta fan-out ordering, resync, forwarding.

Most of the fleet is testable without forking: the delta computation /
application pair and the :class:`DeltaApplier` ordering contract are
sans-IO, and the writer bus + forwarder run in-process on a Unix
socket.  One end-to-end test boots a real 2-worker fleet through the
CLI supervisor (skipped where ``SO_REUSEPORT`` is unavailable).
"""

import asyncio
import os
import signal
import struct
import subprocess
import sys
import tempfile
import time

import pytest

from repro.cluster.messages import AddRequest, DeleteRequest, LookupRequest
from repro.core.entry import Entry
from repro.net.codec import (
    CODEC_BINARY,
    decode_envelope_binary,
    encode_message,
    read_frame,
    write_frame,
)
from repro.net.service import LookupService, ServiceConfig, envelope_mutates
from repro.net.workers import (
    MAX_DELTA_BUFFER,
    DeltaApplier,
    WriteForwarder,
    WriterBus,
    apply_delta,
    compute_apply_delta,
    load_snapshot,
    reuseport_available,
    snapshot_stores,
    wire_envelope,
)


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=30))


CONFIG = ServiceConfig(server_count=8, entry_count=12, seed=3)


def _send(key, message, server=0):
    return {
        "op": "send",
        "server": server,
        "key": key,
        "message": encode_message(message),
    }


def _masks(service, key):
    return [server.store(key).mask for server in service.cluster.servers]


class TestEnvelopeClassification:
    def test_lookups_do_not_mutate(self):
        assert not envelope_mutates(_send("hash", LookupRequest(3)))

    def test_adds_and_deletes_mutate(self):
        assert envelope_mutates(_send("hash", AddRequest(entry=Entry("zz"))))
        assert envelope_mutates(_send("hash", DeleteRequest(entry=Entry("v1"))))

    def test_live_message_instances_classify_too(self):
        # binary connections decode to Message instances before dispatch
        env = _send("hash", LookupRequest(3))
        env["message"] = LookupRequest(3)
        assert not envelope_mutates(env)
        env["message"] = AddRequest(entry=Entry("zz"))
        assert envelope_mutates(env)

    def test_control_ops_never_mutate(self):
        for op in ("ping", "info", "verify", "membership", "hello", "batch"):
            assert not envelope_mutates({"op": op})

    def test_wire_envelope_reencodes_live_messages(self):
        env = _send("hash", LookupRequest(3))
        env["message"] = AddRequest(entry=Entry("zz"))
        wired = wire_envelope(env)
        assert isinstance(wired["message"], dict)
        assert env["message"].__class__ is AddRequest  # original untouched


class TestDeltaRoundTrip:
    def test_add_delta_converges_a_reader(self):
        writer = LookupService(CONFIG)
        reader = LookupService(CONFIG)
        reply, delta = compute_apply_delta(
            writer, _send("full_replication", AddRequest(entry=Entry("zz-new")))
        )
        assert reply["ok"] and delta is not None
        assert delta["key"] == "full_replication"
        apply_delta(reader, delta)
        for key in writer.strategies:
            assert _masks(reader, key) == _masks(writer, key)

    def test_delete_delta_converges_a_reader(self):
        writer = LookupService(CONFIG)
        reader = LookupService(CONFIG)
        _, delta = compute_apply_delta(
            writer, _send("full_replication", DeleteRequest(entry=Entry("v1")))
        )
        assert delta is not None
        apply_delta(reader, delta)
        assert _masks(reader, "full_replication") == _masks(
            writer, "full_replication"
        )

    def test_noop_mutation_yields_no_delta(self):
        writer = LookupService(CONFIG)
        # deleting an entry that is not there changes no store
        _, delta = compute_apply_delta(
            writer, _send("full_replication", DeleteRequest(entry=Entry("zz-nope")))
        )
        assert delta is None

    def test_lookup_yields_no_delta(self):
        writer = LookupService(CONFIG)
        reply, delta = compute_apply_delta(
            writer, _send("round_robin", LookupRequest(0))
        )
        assert reply["ok"] and delta is None

    def test_snapshot_round_trip(self):
        writer = LookupService(CONFIG)
        writer.handle_envelope(
            _send("full_replication", AddRequest(entry=Entry("zz-snap")))
        )
        reader = LookupService(CONFIG)
        load_snapshot(reader, snapshot_stores(writer))
        for key in writer.strategies:
            assert _masks(reader, key) == _masks(writer, key)

    def test_delta_application_invalidates_the_reply_cache(self):
        writer = LookupService(CONFIG)
        reader = LookupService(CONFIG)
        lookup = _send("full_replication", LookupRequest(0))
        reader.handle_envelope(dict(lookup))
        reader.handle_envelope(dict(lookup))
        assert reader.reply_cache.hits == 1
        _, delta = compute_apply_delta(
            writer, _send("full_replication", AddRequest(entry=Entry("zz-inv")))
        )
        apply_delta(reader, delta)
        after = reader.handle_envelope(dict(lookup))
        assert "zz-inv" in {e["id"] for e in after["value"]}


class TestDeltaApplierOrdering:
    def _delta(self, writer, epoch, entry_id):
        _, delta = compute_apply_delta(
            writer, _send("full_replication", AddRequest(entry=Entry(entry_id)))
        )
        delta["epoch"] = epoch
        return delta

    def test_in_order_application(self):
        writer = LookupService(CONFIG)
        reader = LookupService(CONFIG)
        applier = DeltaApplier(reader)
        for epoch in (1, 2, 3):
            delta = self._delta(writer, epoch, f"zz-{epoch}")
            assert applier.offer(delta) == "applied"
        assert applier.applied == 3
        assert _masks(reader, "full_replication") == _masks(
            writer, "full_replication"
        )

    def test_out_of_order_deltas_buffer_then_apply_in_epoch_order(self):
        writer = LookupService(CONFIG)
        reader = LookupService(CONFIG)
        applier = DeltaApplier(reader)
        d1 = self._delta(writer, 1, "zz-1")
        d2 = self._delta(writer, 2, "zz-2")
        d3 = self._delta(writer, 3, "zz-3")
        assert applier.offer(d3) == "buffered"
        assert applier.offer(d2) == "buffered"
        assert applier.applied == 0
        # the gap closes: 1 applies, then the buffered 2 and 3 drain
        assert applier.offer(d1) == "applied"
        assert applier.applied == 3
        assert _masks(reader, "full_replication") == _masks(
            writer, "full_replication"
        )

    def test_duplicate_delivery_is_dropped(self):
        # the forwarding reader gets its op's delta twice: once on the
        # fwd_reply, once (potentially) via broadcast
        writer = LookupService(CONFIG)
        reader = LookupService(CONFIG)
        applier = DeltaApplier(reader)
        d1 = self._delta(writer, 1, "zz-dup")
        assert applier.offer(d1) == "applied"
        assert applier.offer(d1) == "duplicate"
        assert applier.applied == 1

    def test_unbridgeable_gap_requests_resync(self):
        reader = LookupService(CONFIG)
        applier = DeltaApplier(reader)
        status = "buffered"
        for i in range(MAX_DELTA_BUFFER + 1):
            status = applier.offer(
                {"epoch": 1000 + i, "key": "hash", "servers": {}}
            )
        assert status == "resync"
        assert applier._pending == {}

    def test_resync_adopts_snapshot_and_watermark(self):
        writer = LookupService(CONFIG)
        writer.handle_envelope(
            _send("full_replication", AddRequest(entry=Entry("zz-sync")))
        )
        reader = LookupService(CONFIG)
        applier = DeltaApplier(reader)
        applier.offer({"epoch": 50, "key": "hash", "servers": {}})  # buffered
        applier.resync(41, snapshot_stores(writer))
        assert applier.applied == 41
        assert applier._pending == {}
        assert _masks(reader, "full_replication") == _masks(
            writer, "full_replication"
        )
        # epochs at or below the snapshot are now duplicates
        assert applier.offer({"epoch": 41, "key": "hash", "servers": {}}) == (
            "duplicate"
        )

    def test_malformed_epoch_requests_resync(self):
        applier = DeltaApplier(LookupService(CONFIG))
        assert applier.offer({"key": "hash", "servers": {}}) == "resync"


class TestWriterBusAndForwarder:
    """The real bus + forwarder pair over a Unix socket, in-process."""

    def _bus_path(self, tmp):
        return os.path.join(tmp, "bus.sock")

    def test_forwarded_mutation_reaches_writer_and_reader(self):
        async def scenario():
            with tempfile.TemporaryDirectory() as tmp:
                writer_svc = LookupService(CONFIG)
                reader_svc = LookupService(CONFIG)
                bus = WriterBus(writer_svc, self._bus_path(tmp))
                await bus.start()
                fwd = WriteForwarder(reader_svc, self._bus_path(tmp))
                await fwd.start()
                try:
                    reply = await fwd.forward(
                        _send("full_replication", AddRequest(entry=Entry("zz-f")))
                    )
                    assert reply["ok"]
                    # read-your-writes: the reader converged before the
                    # forward() call returned
                    assert _masks(reader_svc, "full_replication") == _masks(
                        writer_svc, "full_replication"
                    )
                finally:
                    await fwd.stop()
                    await bus.stop()

        run(scenario())

    def test_broadcast_reaches_non_forwarding_readers(self):
        async def scenario():
            with tempfile.TemporaryDirectory() as tmp:
                writer_svc = LookupService(CONFIG)
                reader_a = LookupService(CONFIG)
                reader_b = LookupService(CONFIG)
                bus = WriterBus(writer_svc, self._bus_path(tmp))
                await bus.start()
                fwd_a = WriteForwarder(reader_a, self._bus_path(tmp))
                fwd_b = WriteForwarder(reader_b, self._bus_path(tmp))
                await fwd_a.start()
                await fwd_b.start()
                try:
                    await fwd_a.forward(
                        _send("full_replication", AddRequest(entry=Entry("zz-b")))
                    )
                    # b hears about it via broadcast, asynchronously
                    deadline = asyncio.get_running_loop().time() + 5
                    while asyncio.get_running_loop().time() < deadline:
                        if _masks(reader_b, "full_replication") == _masks(
                            writer_svc, "full_replication"
                        ):
                            break
                        await asyncio.sleep(0.01)
                    assert _masks(reader_b, "full_replication") == _masks(
                        writer_svc, "full_replication"
                    )
                finally:
                    await fwd_a.stop()
                    await fwd_b.stop()
                    await bus.stop()

        run(scenario())

    def test_writers_own_mutations_fan_out_via_forward(self):
        # worker 0's service sets forwarder = bus: a mutation landing
        # on the writer itself must still reach every reader
        async def scenario():
            with tempfile.TemporaryDirectory() as tmp:
                writer_svc = LookupService(CONFIG)
                reader_svc = LookupService(CONFIG)
                bus = WriterBus(writer_svc, self._bus_path(tmp))
                await bus.start()
                writer_svc.forwarder = bus
                fwd = WriteForwarder(reader_svc, self._bus_path(tmp))
                await fwd.start()
                try:
                    reply = await writer_svc.handle_envelope_async(
                        _send("full_replication", AddRequest(entry=Entry("zz-w")))
                    )
                    assert reply["ok"]
                    deadline = asyncio.get_running_loop().time() + 5
                    while asyncio.get_running_loop().time() < deadline:
                        if _masks(reader_svc, "full_replication") == _masks(
                            writer_svc, "full_replication"
                        ):
                            break
                        await asyncio.sleep(0.01)
                    assert _masks(reader_svc, "full_replication") == _masks(
                        writer_svc, "full_replication"
                    )
                finally:
                    await fwd.stop()
                    await bus.stop()

        run(scenario())

    def test_reconnect_resyncs_missed_state(self):
        async def scenario():
            with tempfile.TemporaryDirectory() as tmp:
                writer_svc = LookupService(CONFIG)
                bus = WriterBus(writer_svc, self._bus_path(tmp))
                await bus.start()
                # mutations happen while no reader is connected
                await bus.forward(
                    _send("full_replication", AddRequest(entry=Entry("zz-r1")))
                )
                await bus.forward(
                    _send("full_replication", AddRequest(entry=Entry("zz-r2")))
                )
                late = LookupService(CONFIG)
                fwd = WriteForwarder(late, self._bus_path(tmp))
                await fwd.start()  # sync-on-connect
                try:
                    assert fwd.applier.applied == bus.epoch
                    for key in writer_svc.strategies:
                        assert _masks(late, key) == _masks(writer_svc, key)
                finally:
                    await fwd.stop()
                    await bus.stop()

        run(scenario())

    def test_bus_loss_fires_on_fatal_and_fails_pending(self):
        async def scenario():
            with tempfile.TemporaryDirectory() as tmp:
                writer_svc = LookupService(CONFIG)
                reader_svc = LookupService(CONFIG)
                bus = WriterBus(writer_svc, self._bus_path(tmp))
                await bus.start()
                fwd = WriteForwarder(reader_svc, self._bus_path(tmp))
                fatal = asyncio.Event()
                fwd.on_fatal = fatal.set
                await fwd.start()
                try:
                    await bus.stop()  # the writer dies
                    await asyncio.wait_for(fatal.wait(), timeout=5)
                finally:
                    await fwd.stop()

        run(scenario())


@pytest.mark.skipif(
    not reuseport_available(), reason="SO_REUSEPORT unavailable on this platform"
)
class TestFleetEndToEnd:
    def test_cli_fleet_serves_and_tears_down_cleanly(self):
        with tempfile.TemporaryDirectory() as tmp:
            ready = os.path.join(tmp, "ready")
            env = dict(os.environ)
            env["PYTHONPATH"] = os.pathsep.join(
                [os.path.join(os.getcwd(), "src"), env.get("PYTHONPATH", "")]
            )
            proc = subprocess.Popen(
                [
                    sys.executable,
                    "-m",
                    "repro",
                    "serve",
                    "--workers",
                    "2",
                    "--port",
                    "0",
                    "--servers",
                    "6",
                    "--entries",
                    "10",
                    "--ready-file",
                    ready,
                ],
                stdout=subprocess.PIPE,
                stderr=subprocess.STDOUT,
                text=True,
                env=env,
            )
            try:
                deadline = time.time() + 30
                while time.time() < deadline and not (
                    os.path.exists(ready) and os.path.getsize(ready)
                ):
                    assert proc.poll() is None, proc.stdout.read()
                    time.sleep(0.1)
                host, port = open(ready).read().split()
                manifest = open(f"{ready}.workers").read().split()
                assert len(manifest) == 4  # two "index pid" lines
                call = subprocess.run(
                    [
                        sys.executable,
                        "-m",
                        "repro",
                        "call",
                        "round_robin",
                        "--host",
                        host,
                        "--port",
                        port,
                        "--target",
                        "5",
                        "--count",
                        "2",
                    ],
                    capture_output=True,
                    text=True,
                    env=env,
                    timeout=30,
                )
                assert call.returncode == 0, call.stdout + call.stderr
            finally:
                proc.send_signal(signal.SIGTERM)
                out, _ = proc.communicate(timeout=30)
            assert proc.returncode == 0, out
            assert "[serve] stopped" in out
            assert "Traceback" not in out

    def test_workers_reject_peers(self):
        from repro.core.exceptions import InvalidParameterError
        from repro.net.cli import cmd_serve

        import argparse

        args = argparse.Namespace(
            workers=2,
            peers="s1=127.0.0.1:1",
            host="127.0.0.1",
            port=0,
            servers=4,
            entries=8,
            seed=0,
            shard="0/1",
            replicas=2,
            backup_fraction=0.25,
            probes=21,
            cache_size=64,
            no_cache=False,
            ready_file=None,
            uvloop=False,
        )
        with pytest.raises(InvalidParameterError, match="--peers"):
            cmd_serve(args)


# --------------------------------------------------------------------------
# Warm respawn: the shared cache + hot-set handoff, end to end
# --------------------------------------------------------------------------


HOT_LOOKUP = {
    "op": "send",
    "server": 0,
    "key": "full_replication",
    "message": encode_message(LookupRequest(0)),
}


async def _hello_binary(host, port):
    """One fresh connection negotiated onto the binary codec."""
    reader, writer = await asyncio.open_connection(host, port)
    await write_frame(writer, {"op": "hello", "codecs": ["binary", "json"]})
    reply = await asyncio.wait_for(read_frame(reader), 10)
    assert reply["ok"] and reply["value"]["codec"] == "binary", reply
    return reader, writer


async def _binary_request_raw(reader, writer, envelope):
    """Send one binary envelope; return the raw reply frame bytes."""
    await write_frame(writer, dict(envelope), codec=CODEC_BINARY)
    header = await asyncio.wait_for(reader.readexactly(4), 10)
    (length,) = struct.unpack(">I", header)
    return header + await asyncio.wait_for(reader.readexactly(length), 10)


async def _probe(host, port):
    """Hot lookup then capabilities on one fresh binary connection.

    Returns ``(raw reply bytes, capabilities dict)`` — the lookup goes
    first so the capabilities counters include it and nothing else.
    """
    reader, writer = await _hello_binary(host, port)
    try:
        raw = await _binary_request_raw(reader, writer, HOT_LOOKUP)
        info_raw = await _binary_request_raw(reader, writer, {"op": "info"})
        info = decode_envelope_binary(info_raw[4:])["value"]
        return raw, info["capabilities"]
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


def _manifest(path):
    pids = {}
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            index, pid = line.split()
            pids[int(index)] = int(pid)
    return pids


class TestWarmRespawn:
    def test_respawned_reader_serves_hot_key_warm(self):
        """SIGKILL a reader mid-fleet: its replacement must answer the
        previously-hot key as a cache hit — no cold miss — and
        byte-identically to the pre-kill replies, because the writer
        shipped its hot set (stamped with bus epochs) over the sync
        handshake and the shared segment survived the kill."""
        with tempfile.TemporaryDirectory() as tmp:
            ready = os.path.join(tmp, "ready")
            env = dict(os.environ)
            env["PYTHONPATH"] = os.pathsep.join(
                [os.path.join(os.getcwd(), "src"), env.get("PYTHONPATH", "")]
            )
            proc = subprocess.Popen(
                [
                    sys.executable, "-m", "repro", "serve",
                    "--workers", "2", "--port", "0",
                    "--servers", "6", "--entries", "10",
                    "--ready-file", ready,
                ],
                stdout=subprocess.PIPE,
                stderr=subprocess.STDOUT,
                text=True,
                env=env,
            )
            try:
                deadline = time.time() + 30
                while time.time() < deadline and not (
                    os.path.exists(ready) and os.path.getsize(ready)
                ):
                    assert proc.poll() is None, proc.stdout.read()
                    time.sleep(0.1)
                host, port = open(ready).read().split()
                port = int(port)

                async def scenario():
                    # Warm every worker's cache: fresh connections land
                    # on either worker; keep probing until both have
                    # served the hot lookup at least once.  The writer
                    # (index 0) matters most — its hot set is what the
                    # respawned reader will be handed.
                    baselines = {}
                    for _ in range(60):
                        raw, caps = await _probe(host, port)
                        index = caps["workers"]["index"]
                        if index in baselines:
                            assert baselines[index] == raw
                        baselines[index] = raw
                        if {0, 1} <= set(baselines):
                            break
                    assert {0, 1} <= set(baselines), (
                        f"probes only reached workers {sorted(baselines)}"
                    )
                    # Both workers answer byte-identically already.
                    assert baselines[0] == baselines[1]
                    return baselines[0]

                baseline = asyncio.run(asyncio.wait_for(scenario(), 60))

                victims = _manifest(f"{ready}.workers")
                os.kill(victims[1], signal.SIGKILL)
                deadline = time.time() + 30
                while time.time() < deadline:
                    assert proc.poll() is None, "fleet died after reader kill"
                    fresh = _manifest(f"{ready}.workers")
                    if fresh.get(1) and fresh[1] != victims[1]:
                        break
                    time.sleep(0.1)
                else:
                    raise AssertionError("reader was never respawned")

                async def after():
                    for _ in range(60):
                        raw, caps = await _probe(host, port)
                        if caps["workers"]["index"] != 1:
                            continue  # landed on the writer; try again
                        cache = caps["cache"]
                        # Its *first* lookup (ours) was a hit: the hot
                        # set arrived before the first connection.
                        assert cache["hits"] >= 1, cache
                        assert cache["misses"] == 0, cache
                        assert raw == baseline
                        return
                    raise AssertionError(
                        "probes never reached the respawned reader"
                    )

                asyncio.run(asyncio.wait_for(after(), 60))
            finally:
                proc.send_signal(signal.SIGTERM)
                out, _ = proc.communicate(timeout=30)
            assert "Traceback" not in out, out
