"""Canonical column names shared by snapshots, reports, and tables.

Before this module, every producer of tabular rows spelled its own
column keys and every consumer hand-matched the strings — the metrics
snapshot said ``"fault_tol"``, prose-facing code said ``"fault
tolerance"``, the planner said ``"scheme"`` where experiments said
``"strategy"``.  A renamed key silently produced empty table columns.

This module is the single registry: one :class:`Column` per concept,
with the canonical row-dict **key**, the human **label** for prose and
report headings, and the historical **aliases** that map back to the
canonical key.  Row producers import the ``*_COLUMNS`` tuples (or the
key constants) instead of retyping strings; consumers resolve any
spelling through :func:`canonical` and render headings with
:func:`label`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from repro.core.exceptions import InvalidParameterError


@dataclass(frozen=True)
class Column:
    """One canonical column: row key, human label, legacy aliases."""

    key: str
    label: str
    aliases: Tuple[str, ...] = ()


_ALL_COLUMNS: Tuple[Column, ...] = (
    # -- identity -----------------------------------------------------------
    Column("strategy", "strategy", ("scheme", "strategy_name")),
    Column("params", "parameters"),
    Column("t", "target answer size", ("target", "target_answer_size")),
    # -- the Section 4 metrics ---------------------------------------------
    Column("storage", "storage cost", ("storage_cost",)),
    Column("imbalance", "storage imbalance", ("storage_imbalance",)),
    Column("lookup_cost", "lookup cost", ("mean_lookup_cost",)),
    Column("lookup_fail", "lookup failure rate", ("lookup_failure_rate",)),
    Column("coverage", "coverage"),
    Column("fault_tol", "fault tolerance", ("fault_tolerance",)),
    Column("unfairness", "unfairness"),
    Column("update_msgs", "update messages",
           ("update_messages", "update_overhead")),
    Column("notes", "notes"),
    # -- chaos soak ---------------------------------------------------------
    Column("lookups", "lookups"),
    Column("success_rate", "success rate"),
    Column("degraded", "degraded lookups"),
    Column("retries", "retry passes"),
    Column("refused", "refused updates", ("refused_updates",)),
    Column("dropped", "dropped deliveries"),
    Column("duplicated", "duplicated deliveries"),
    Column("crashes", "crash points fired"),
    Column("sweeps", "anti-entropy sweeps"),
    Column("repair_msgs", "repair messages", ("repair_messages",)),
    Column("violations_after", "violations after repair"),
    Column("verdict", "verdict"),
)

#: key (or alias) -> Column.
_BY_NAME: Dict[str, Column] = {}
for _column in _ALL_COLUMNS:
    for _name in (_column.key, *_column.aliases):
        if _name in _BY_NAME:  # pragma: no cover - registry sanity
            raise InvalidParameterError(f"duplicate column name {_name!r}")
        _BY_NAME[_name] = _column


def canonical(name: str) -> str:
    """The canonical row-dict key for ``name`` (key or alias)."""
    column = _BY_NAME.get(name)
    if column is None:
        raise InvalidParameterError(
            f"unknown column {name!r}; known: "
            f"{', '.join(sorted(c.key for c in _ALL_COLUMNS))}"
        )
    return column.key


def label(name: str) -> str:
    """The human-facing label for ``name`` (key or alias)."""
    column = _BY_NAME.get(name)
    if column is None:
        raise InvalidParameterError(f"unknown column {name!r}")
    return column.label


def headers(keys: Iterable[str]) -> List[str]:
    """Validate ``keys`` against the registry; returns canonical keys."""
    return [canonical(key) for key in keys]


# -- key constants (import these instead of retyping the strings) ----------

STRATEGY = "strategy"
PARAMS = "params"
TARGET = "t"
STORAGE = "storage"
IMBALANCE = "imbalance"
LOOKUP_COST = "lookup_cost"
LOOKUP_FAIL = "lookup_fail"
COVERAGE = "coverage"
FAULT_TOL = "fault_tol"
UNFAIRNESS = "unfairness"
UPDATE_MSGS = "update_msgs"
NOTES = "notes"
LOOKUPS = "lookups"
SUCCESS_RATE = "success_rate"
DEGRADED = "degraded"
RETRIES = "retries"
REFUSED = "refused"
DROPPED = "dropped"
DUPLICATED = "duplicated"
CRASHES = "crashes"
SWEEPS = "sweeps"
REPAIR_MSGS = "repair_msgs"
VIOLATIONS_AFTER = "violations_after"
VERDICT = "verdict"

#: :meth:`repro.metrics.collector.MetricsSnapshot.as_row` column order.
SNAPSHOT_COLUMNS: Tuple[str, ...] = (
    STRATEGY, TARGET, STORAGE, IMBALANCE, LOOKUP_COST, LOOKUP_FAIL,
    COVERAGE, FAULT_TOL, UNFAIRNESS,
)

#: :meth:`repro.chaos.harness.ChaosReport.as_row` / chaos-soak headers.
CHAOS_SOAK_COLUMNS: Tuple[str, ...] = (
    STRATEGY, LOOKUPS, SUCCESS_RATE, DEGRADED, RETRIES, REFUSED,
    DROPPED, DUPLICATED, CRASHES, SWEEPS, REPAIR_MSGS, VIOLATIONS_AFTER,
    VERDICT,
)

#: ``python -m repro plan`` table columns (``scheme`` is the historical
#: spelling of the strategy column in plan rows, kept for output
#: stability; ``canonical("scheme")`` maps it back to ``strategy``).
PLAN_COLUMNS: Tuple[str, ...] = (
    "scheme", PARAMS, STORAGE, LOOKUP_COST, COVERAGE, FAULT_TOL,
    UPDATE_MSGS, NOTES,
)
