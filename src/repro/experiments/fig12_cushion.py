"""Figure 12: Fixed-x lookup failure rate vs cushion size.

Paper setup: steady state of 100 entries (Poisson adds, one per 10
time units; lifetimes with mean 1000 from an exponential or Zipf-like
distribution), clients want ``t = 15`` entries per lookup, Fixed-x run
with ``x = t + b`` for cushions ``b = 0..7``; each run is 20000
updates, 5000 runs per point.  Measured: the percentage of execution
time during which a lookup for 15 entries would fail (the shared
store holds fewer than 15 entries).

Expected shape: >10% failure time at ``b = 0``, dropping roughly
exponentially with each extra cushion entry; the heavy-tailed Zipf
lifetime tapers off at large cushions.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from functools import partial
from typing import Dict, Optional, Tuple

from repro.cluster.cluster import Cluster
from repro.experiments.parallel import make_executor
from repro.experiments.runner import ExperimentResult, average_runs
from repro.simulation.replay import TraceReplayer
from repro.strategies.fixed import FixedX
from repro.workload.generator import SteadyStateWorkload
from repro.workload.lifetimes import (
    ExponentialLifetime,
    LifetimeDistribution,
    ZipfLifetime,
)


@dataclass(frozen=True)
class Fig12Config:
    entry_count: int = 100
    server_count: int = 10
    target: int = 15
    cushions: Tuple[int, ...] = (0, 1, 2, 3, 4, 5, 6, 7)
    arrival_gap: float = 10.0
    #: Updates per run (paper: 20000).
    updates_per_run: int = 4000
    #: Runs per data point (paper: 5000).
    runs: int = 10
    seed: int = 12


def _lifetime(kind: str, config: Fig12Config) -> LifetimeDistribution:
    mean = config.arrival_gap * config.entry_count
    if kind == "exp":
        return ExponentialLifetime(mean)
    if kind == "zipf":
        return ZipfLifetime(mean)
    raise ValueError(f"unknown lifetime kind {kind!r}")


def failure_time_fraction(
    config: Fig12Config, cushion: int, lifetime_kind: str, seed: int
) -> float:
    """One run: fraction of time Fixed-(t+b) cannot serve ``t`` entries."""
    rng = random.Random(seed)
    workload = SteadyStateWorkload(
        config.entry_count,
        arrival_gap=config.arrival_gap,
        lifetime=_lifetime(lifetime_kind, config),
        rng=rng,
    )
    trace = workload.generate(config.updates_per_run)
    cluster = Cluster(config.server_count, seed=seed)
    strategy = FixedX(cluster, x=config.target + cushion)
    strategy.place(trace.initial_entries)
    replayer = TraceReplayer(strategy, monitor_target=config.target)
    stats = replayer.replay(trace.events)
    return stats.failure_time_fraction


def run(
    config: Fig12Config = Fig12Config(), *, jobs: Optional[int] = None
) -> ExperimentResult:
    """Regenerate Figure 12: failure-time percentage per cushion size."""
    result = ExperimentResult(
        name="Figure 12: Fixed-x lookup failure rate vs cushion size",
        headers=["cushion", "exp_percent", "zipf_percent"],
        meta={
            "h": config.entry_count,
            "n": config.server_count,
            "t": config.target,
            "updates_per_run": config.updates_per_run,
            "runs": config.runs,
        },
    )
    with make_executor(jobs) as executor:
        for cushion in config.cushions:
            row: Dict[str, object] = {"cushion": cushion}
            for kind, column in (("exp", "exp_percent"), ("zipf", "zipf_percent")):
                averaged = average_runs(
                    partial(failure_time_fraction, config, cushion, kind),
                    master_seed=config.seed
                    + cushion * 1000
                    + (0 if kind == "exp" else 1),
                    runs=config.runs,
                    executor=executor,
                )
                row[column] = round(averaged.mean * 100.0, 4)
            result.rows.append(row)
    return result
