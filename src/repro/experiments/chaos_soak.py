"""Chaos soak: every scheme survives a seeded fault schedule.

Not a paper artifact — the paper's evaluation assumes no mid-protocol
failures at all — but the robustness gate for this reproduction: each
of the five partial-lookup schemes runs a dynamic add/delete/lookup
workload while the transport drops and duplicates messages, blacks
out a server, and crashes servers between protocol steps, with
periodic anti-entropy sweeps mending the damage.  After quiescence
and repair, every scheme must verify clean and answer lookups
correctly (see :mod:`repro.chaos` for the invariant list).

The run is a pure function of ``(seed, fault plan)``: rerunning with
the same config reproduces the identical report, so any failure here
is a deterministic regression, not flake.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from functools import partial
from typing import TYPE_CHECKING, Any, Dict, Optional, Tuple

from repro.chaos import ChaosHarness, default_fault_plan
from repro.cluster.client import RetryPolicy
from repro.cluster.cluster import Cluster
from repro.core import columns
from repro.experiments.parallel import make_executor, resolve_jobs
from repro.experiments.runner import ExperimentResult
from repro.strategies.registry import create_strategy
from repro.workload.generator import SteadyStateWorkload
from repro.workload.lookups import LookupWorkload

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.tracer import Tracer


@dataclass(frozen=True)
class ChaosSoakConfig:
    """Defaults sized so one soak of all five schemes runs in seconds.

    ``target = 5`` stays below Fixed-10's coverage cap so a healthy
    Fixed-x can always answer; the per-scheme parameters match the
    maintenance test matrix (x=10, y=2).
    """

    server_count: int = 10
    entry_count: int = 40
    #: Update events (adds + deletes) in the soak trace.
    events: int = 2000
    #: Lookups interleaved across the soak window.
    lookups: int = 200
    target: int = 5
    drop_probability: float = 0.05
    duplicate_probability: float = 0.02
    sweep_period: float = 250.0
    max_attempts: int = 3
    audit_lookups: int = 25
    seed: int = 0


SCHEME_PARAMS = {
    "full_replication": {},
    "fixed": {"x": 10},
    "random_server": {"x": 10},
    "round_robin": {"y": 2},
    "hash": {"y": 2},
}


def soak_one(
    label: str,
    config: ChaosSoakConfig,
    tracer: Optional["Tracer"] = None,
    metrics: Optional["MetricsRegistry"] = None,
):
    """Soak a single scheme; returns its :class:`ChaosReport`.

    ``tracer`` / ``metrics`` are handed to the
    :class:`~repro.chaos.harness.ChaosHarness` unchanged; with both
    None (the default) the soak is byte-identical to the
    pre-observability implementation.
    """
    cluster = Cluster(config.server_count, seed=config.seed)
    strategy = create_strategy(label, cluster, **SCHEME_PARAMS[label])
    workload = SteadyStateWorkload(
        config.entry_count, rng=random.Random(config.seed + 1)
    )
    trace = workload.generate(config.events)
    horizon = max((event.time for event in trace.events), default=0.0)
    lookup_events = LookupWorkload(
        target=config.target, rng=random.Random(config.seed + 2)
    ).events_uniform(config.lookups, 0.0, horizon)
    plan = default_fault_plan(
        seed=config.seed + 3,
        drop_probability=config.drop_probability,
        duplicate_probability=config.duplicate_probability,
        server_count=config.server_count,
    )
    harness = ChaosHarness(
        strategy,
        plan,
        retry_policy=RetryPolicy(max_attempts=config.max_attempts),
        sweep_period=config.sweep_period,
        tracer=tracer,
        metrics=metrics,
    )
    return harness.soak(
        trace.initial_entries,
        list(trace.events) + lookup_events,
        target=config.target,
        audit_lookups=config.audit_lookups,
    )


def _soak_worker(
    config: ChaosSoakConfig, collect_metrics: bool, label: str
) -> Tuple[Any, Optional[Dict[str, Dict[str, Any]]]]:
    """One scheme's soak on a worker process.

    Tracers cannot cross the process boundary, so parallel soaks run
    untraced; metrics go into a fresh per-worker registry whose state
    is shipped back for the parent to merge (the harness namespaces
    its counters per scheme, so merges never collide).
    """
    from repro.obs.metrics import MetricsRegistry

    registry = MetricsRegistry() if collect_metrics else None
    report = soak_one(label, config, metrics=registry)
    state = registry.dump_state() if registry is not None else None
    return report, state


def run(
    config: ChaosSoakConfig = ChaosSoakConfig(),
    tracer: Optional["Tracer"] = None,
    metrics: Optional["MetricsRegistry"] = None,
    *,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """Soak all five schemes; one row per scheme.

    With ``jobs > 1`` the five scheme soaks fan out over worker
    processes (each soak is a pure function of the config, so rows are
    bit-identical to the serial path).  A ``tracer`` forces the serial
    path: trace records must interleave in one virtual clock.
    """
    result = ExperimentResult(
        name="Chaos soak: schemes under drop/duplicate/crash faults",
        headers=list(columns.CHAOS_SOAK_COLUMNS),
        meta={
            "n": config.server_count,
            "h": config.entry_count,
            "events": config.events,
            "t": config.target,
            "drop_p": config.drop_probability,
            "dup_p": config.duplicate_probability,
            "seed": config.seed,
        },
    )
    labels = list(SCHEME_PARAMS)
    if resolve_jobs(jobs) > 1 and tracer is None:
        with make_executor(jobs) as executor:
            outcomes = executor.ordered_samples(
                partial(_soak_worker, config, metrics is not None), labels
            )
        reports = []
        for report, state in outcomes:
            reports.append(report)
            if metrics is not None and state is not None:
                metrics.merge_state(state)
    else:
        reports = [
            soak_one(label, config, tracer=tracer, metrics=metrics)
            for label in labels
        ]
    failures = []
    for label, report in zip(labels, reports):
        result.rows.append(report.as_row())
        if not report.passed:
            failures.append((label, report.invariant_failures))
    result.meta["passed"] = not failures
    if failures:
        result.meta["failures"] = {
            label: list(reasons) for label, reasons in failures
        }
    return result
