"""Property-based tests for the discrete-event engine."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulation.engine import SimulationEngine
from repro.simulation.events import LookupEvent

times = st.floats(
    min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False
)


@given(st.lists(times, max_size=60))
@settings(max_examples=60, deadline=None)
def test_events_always_execute_in_time_order(schedule):
    engine = SimulationEngine()
    executed = []
    engine.on(LookupEvent, lambda e: executed.append(e.time))
    engine.schedule_all(LookupEvent(t) for t in schedule)
    engine.run()
    assert executed == sorted(schedule)
    assert engine.processed == len(schedule)
    assert engine.pending == 0


@given(st.lists(times, min_size=1, max_size=40), times)
@settings(max_examples=60, deadline=None)
def test_run_until_splits_cleanly(schedule, cutoff):
    engine = SimulationEngine()
    executed = []
    engine.on(LookupEvent, lambda e: executed.append(e.time))
    engine.schedule_all(LookupEvent(t) for t in schedule)
    engine.run(until=cutoff)
    assert executed == sorted(t for t in schedule if t <= cutoff)
    assert engine.pending == sum(1 for t in schedule if t > cutoff)
    # The clock never exceeds the cutoff nor runs backwards.
    assert engine.now <= max(cutoff, max(schedule))
    # Draining the rest completes everything in order.
    engine.run()
    assert executed == sorted(schedule)


@given(
    st.lists(st.tuples(times, st.integers(1, 5)), min_size=1, max_size=30)
)
@settings(max_examples=40, deadline=None)
def test_simultaneous_events_keep_insertion_order(pairs):
    engine = SimulationEngine()
    executed = []
    engine.on(LookupEvent, lambda e: executed.append((e.time, e.target)))
    for time, target in pairs:
        engine.schedule(LookupEvent(time, target=target))
    engine.run()
    # Stable sort over time must reproduce exactly.
    expected = sorted(pairs, key=lambda pair: pair[0])
    assert executed == expected
