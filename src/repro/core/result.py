"""Result types returned by lookup and update operations.

The paper's evaluation needs more than the entry set from each lookup:
Figure 4 counts servers contacted, Figure 12 counts failed lookups, and
Figure 14 counts messages processed.  ``LookupResult`` and
``UpdateResult`` carry those observations alongside the functional
result so metrics can be computed without instrumenting strategies from
the outside.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Tuple

from repro.core.entry import Entry


@dataclass(frozen=True)
class LookupResult:
    """Outcome of one ``partial_lookup(t)`` call.

    Attributes
    ----------
    entries:
        The distinct entries returned to the client.
    target:
        The target answer size ``t`` the client asked for.
    servers_contacted:
        Identifiers of the servers the client contacted, in contact
        order.  ``len(servers_contacted)`` is the paper's client lookup
        cost for this call (Section 4.2), counting only operational
        servers that actually responded.
    failed_contacts:
        Identifiers of failed servers the client tried before finding
        operational ones.  Kept separate because the paper's lookup
        cost assumes no failures.
    messages:
        Number of request messages processed by servers on behalf of
        this lookup (one per operational server contacted).
    retries:
        Extra passes the client made over unanswered servers under a
        :class:`~repro.cluster.client.RetryPolicy`; 0 for the paper's
        single-pass client.
    backoff:
        Total simulated time the client spent backing off before
        retries (accounted, not enacted — the transport is
        synchronous).
    """

    entries: Tuple[Entry, ...]
    target: int
    servers_contacted: Tuple[int, ...] = ()
    failed_contacts: Tuple[int, ...] = ()
    messages: int = 0
    retries: int = 0
    backoff: float = 0.0

    @property
    def success(self) -> bool:
        """Whether the lookup retrieved at least ``target`` entries."""
        return len(self.entries) >= self.target

    @property
    def degraded(self) -> bool:
        """Explicitly-labelled short answer: fewer than ``target`` entries.

        A lookup never silently under-fills — when retries (if any)
        are exhausted and the merged answer is still short, the result
        is *degraded* rather than wrong.  Always ``not success`` for
        ``target > 0``; full lookups (``target == 0``) are never
        degraded.
        """
        return self.target > 0 and len(self.entries) < self.target

    @property
    def lookup_cost(self) -> int:
        """Number of operational servers contacted (Section 4.2)."""
        return len(self.servers_contacted)

    @property
    def entry_set(self) -> FrozenSet[Entry]:
        """The returned entries as a frozen set."""
        return frozenset(self.entries)

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)


@dataclass(frozen=True)
class UpdateResult:
    """Outcome of one ``place``, ``add``, or ``delete`` call.

    Attributes
    ----------
    operation:
        One of ``"place"``, ``"add"``, ``"delete"``.
    messages:
        Number of messages processed by servers for this update, under
        the Section 6.4 cost model: the client's request to the initial
        server costs 1, a broadcast costs ``n``, and each point-to-point
        server message costs 1.
    broadcast:
        Whether the update triggered a broadcast.
    servers_touched:
        Identifiers of servers whose local store changed.
    """

    operation: str
    messages: int = 0
    broadcast: bool = False
    servers_touched: Tuple[int, ...] = ()


@dataclass
class OperationLog:
    """Accumulates results over a sequence of operations.

    A convenience aggregate used by experiments: feed it every
    :class:`LookupResult` / :class:`UpdateResult` and read off the
    totals the paper reports.
    """

    lookups: List[LookupResult] = field(default_factory=list)
    updates: List[UpdateResult] = field(default_factory=list)

    def record_lookup(self, result: LookupResult) -> LookupResult:
        self.lookups.append(result)
        return result

    def record_update(self, result: UpdateResult) -> UpdateResult:
        self.updates.append(result)
        return result

    @property
    def total_lookup_cost(self) -> int:
        return sum(r.lookup_cost for r in self.lookups)

    @property
    def mean_lookup_cost(self) -> float:
        if not self.lookups:
            return 0.0
        return self.total_lookup_cost / len(self.lookups)

    @property
    def failed_lookups(self) -> int:
        return sum(1 for r in self.lookups if not r.success)

    @property
    def degraded_lookups(self) -> int:
        return sum(1 for r in self.lookups if r.degraded)

    @property
    def total_retries(self) -> int:
        return sum(r.retries for r in self.lookups)

    @property
    def failure_rate(self) -> float:
        if not self.lookups:
            return 0.0
        return self.failed_lookups / len(self.lookups)

    @property
    def total_update_messages(self) -> int:
        return sum(r.messages for r in self.updates)

    def clear(self) -> None:
        self.lookups.clear()
        self.updates.clear()
