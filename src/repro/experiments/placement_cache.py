"""PlacementCache: share one placement across many measurements.

Sweeps re-place constantly: Figure 4 places each scheme afresh for
every (target, run) grid point even though the placement depends only
on the run seed, and Table 2 builds the *same* seeded placement once
for its static-metric cells and again for its lookup-cost cell.  The
cache generalizes Table 2's shared-placement trick: placements are
keyed by ``(strategy name, params, seed, entry count, server count)``
and built exactly once.

The subtle part is reuse without changing any measured number.  A
consumer of a fresh placement starts measuring from the *post-place*
RNG state, message counters, and stores; a second consumer of a cached
placement must see exactly the same starting point even though the
first consumer has since advanced the RNG and mutated counters (or
even the placement itself, in churn experiments).  So the cache
snapshots all three right after ``place`` — stores/state via
:mod:`repro.cluster.snapshots`, the RNG via ``getstate``, the
counters via ``MessageStats.snapshot`` — and restores them on every
handout.  Handed-out measurements are therefore *paired* (they share
placement and starting RNG stream), which is deterministic and
unbiased, but it is an opt-in change for sweeps whose seed previously
varied per grid point — experiment configs expose it as
``reuse_placements`` (default off, seed outputs untouched).

Invalidation: mutating the placement (``add``/``delete``/``place``)
bumps the strategy's ``placement_epoch``; the next handout notices the
epoch mismatch and restores the pristine stores from the snapshot.
``invalidate``/``clear`` drop cached instances outright for callers
that want the memory back or a genuinely fresh build.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.cluster.cluster import Cluster
from repro.cluster.network import MessageStats
from repro.cluster.snapshots import restore_cluster, snapshot_cluster
from repro.core.entry import Entry, make_entries
from repro.strategies.base import PlacementStrategy
from repro.strategies.registry import create_strategy

CacheKey = Tuple[str, Tuple[Tuple[str, Any], ...], int, int, int]

#: One strategy of a shared-cluster group: (label, registry name,
#: store key, params as sorted item pairs).
GroupSpec = Tuple[str, str, str, Tuple[Tuple[str, Any], ...]]


@dataclass
class _CachedPlacement:
    strategies: Dict[str, PlacementStrategy]
    entries: List[Entry]
    cluster_snapshot: Dict[str, Any]
    rng_state: Any
    stats: MessageStats
    epochs: Dict[str, int]
    hits: int = 0


@dataclass
class PlacementCache:
    """Build-once, hand-out-many placed strategy instances."""

    _cache: Dict[CacheKey, _CachedPlacement] = field(default_factory=dict)

    def placed(
        self,
        name: str,
        entry_count: int,
        server_count: int,
        seed: int,
        **params: Any,
    ) -> Tuple[PlacementStrategy, List[Entry]]:
        """A placed strategy plus its entry universe, cached by key.

        The first call builds ``Cluster(server_count, seed)``, the
        strategy, and ``place(make_entries(entry_count))``; every call
        (including the first) leaves stores, RNG, and message counters
        exactly as they were the moment ``place`` returned, so each
        consumer measures from an identical starting point.
        """
        key: CacheKey = (
            name,
            tuple(sorted(params.items())),
            seed,
            entry_count,
            server_count,
        )
        spec: GroupSpec = (name, name, "k", tuple(sorted(params.items())))
        strategies, entries = self._placed_specs(key, (spec,), entry_count, server_count, seed)
        return strategies[name], entries

    def placed_group(
        self,
        specs: Tuple[GroupSpec, ...],
        entry_count: int,
        server_count: int,
        seed: int,
    ) -> Tuple[Dict[str, PlacementStrategy], List[Entry]]:
        """Several strategies placed on ONE shared cluster, cached together.

        ``specs`` is a tuple of ``(label, registry name, store key,
        params-as-item-pairs)``.  Placements happen in spec order on a
        single ``Cluster(server_count, seed)`` — the paired-comparison
        setup Figure 4 and Table 2 use — and the whole group is
        snapshotted once, after the last ``place``.  Returns
        ``({label: strategy}, entries)``.
        """
        key = (("group",) + specs, (), seed, entry_count, server_count)
        return self._placed_specs(key, specs, entry_count, server_count, seed)

    def _placed_specs(
        self,
        key: CacheKey,
        specs: Tuple[GroupSpec, ...],
        entry_count: int,
        server_count: int,
        seed: int,
    ) -> Tuple[Dict[str, PlacementStrategy], List[Entry]]:
        cached = self._cache.get(key)
        if cached is None:
            cluster = Cluster(server_count, seed=seed)
            entries = make_entries(entry_count)
            strategies: Dict[str, PlacementStrategy] = {}
            for label, name, store_key, params in specs:
                strategy = create_strategy(name, cluster, key=store_key, **dict(params))
                strategy.place(entries)
                strategies[label] = strategy
            cached = _CachedPlacement(
                strategies=strategies,
                entries=entries,
                cluster_snapshot=snapshot_cluster(cluster),
                rng_state=cluster.rng.getstate(),
                stats=cluster.network.stats.snapshot(),
                epochs={
                    label: strategy.placement_epoch
                    for label, strategy in strategies.items()
                },
            )
            self._cache[key] = cached
            return dict(cached.strategies), list(cached.entries)
        cached.hits += 1
        cluster = next(iter(cached.strategies.values())).cluster
        if any(
            strategy.placement_epoch != cached.epochs[label]
            for label, strategy in cached.strategies.items()
        ):
            # A consumer mutated a placement (churn); bring the
            # pristine stores back for the whole shared cluster.
            restore_cluster(cached.cluster_snapshot, cluster)
            for label, strategy in cached.strategies.items():
                cached.epochs[label] = strategy.placement_epoch
        cluster.rng.setstate(cached.rng_state)
        cluster.network.stats = cached.stats.snapshot()
        return dict(cached.strategies), list(cached.entries)

    def invalidate(
        self, name: str, entry_count: int, server_count: int, seed: int, **params: Any
    ) -> bool:
        """Drop one cached placement; True if it was present."""
        key: CacheKey = (
            name,
            tuple(sorted(params.items())),
            seed,
            entry_count,
            server_count,
        )
        return self._cache.pop(key, None) is not None

    def clear(self) -> None:
        self._cache.clear()

    @property
    def size(self) -> int:
        return len(self._cache)

    @property
    def hits(self) -> int:
        return sum(record.hits for record in self._cache.values())
