"""Exact instance enumeration for the randomized schemes (Figure 8).

§4.5 defines a strategy's unfairness as the *average over instances*
of equation (1), and Figure 8 works one case exactly: RandomServer-1
on 2 servers and 2 entries has four equally likely instances with
unfairness 1, 0, 0, 1, so the strategy's unfairness is 1/2.

For tiny configurations this module enumerates *every* instance a
randomized scheme can produce, with its probability, and computes the
exact per-entry retrieval probabilities and exact strategy-level
unfairness — no Monte-Carlo.  Used to cross-validate the sampling
estimators in :mod:`repro.metrics.unfairness` and to reproduce
Figure 8 as a computation rather than a picture.

The retrieval model matches the simulator's client: pick a uniformly
random server; it returns min(t, stored) uniformly random local
entries; if short, continue to the remaining servers in random order,
trimming the final overshoot uniformly.  For exactness we restrict to
``t <= min_server_load`` (single-contact lookups) or accept the
multi-contact closed form for full-coverage targets; instance
enumeration itself is exact for any scheme.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Iterator, List, Sequence, Tuple

from repro.core.exceptions import InvalidParameterError

#: An instance: per-server tuple of stored entry indices.
Instance = Tuple[Tuple[int, ...], ...]


@dataclass(frozen=True)
class EnumeratedInstance:
    """One possible placement with its probability under the scheme."""

    placement: Instance
    probability: Fraction


def enumerate_random_server_instances(
    entry_count: int, server_count: int, x: int
) -> List[EnumeratedInstance]:
    """All RandomServer-x instances for tiny (h, n, x).

    Each server independently picks a uniformly random x-subset of the
    h entries, so there are C(h, x)^n equally likely instances.

    >>> len(enumerate_random_server_instances(2, 2, 1))
    4
    """
    if x > entry_count:
        x = entry_count
    subsets = list(itertools.combinations(range(entry_count), x))
    total = len(subsets) ** server_count
    if total > 200_000:
        raise InvalidParameterError(
            f"{total} instances is too many to enumerate; shrink h, n, or x"
        )
    probability = Fraction(1, total)
    return [
        EnumeratedInstance(tuple(choice), probability)
        for choice in itertools.product(subsets, repeat=server_count)
    ]


def enumerate_hash_instances(
    entry_count: int, server_count: int, y: int
) -> List[EnumeratedInstance]:
    """All Hash-y instances for tiny (h, n, y).

    Idealized hash functions assign each entry's ``y`` targets
    independently and uniformly (with replacement across functions,
    deduplicated for storage), giving ``n^(h·y)`` equally likely
    assignment vectors that collapse onto fewer distinct placements.
    Probabilities of identical placements are merged.
    """
    assignments = itertools.product(
        itertools.product(range(server_count), repeat=y), repeat=entry_count
    )
    total = server_count ** (entry_count * y)
    if total > 200_000:
        raise InvalidParameterError(
            f"{total} assignments is too many to enumerate; shrink h, n, or y"
        )
    merged: Dict[Instance, Fraction] = {}
    unit = Fraction(1, total)
    for assignment in assignments:
        stores: List[List[int]] = [[] for _ in range(server_count)]
        for entry_index, targets in enumerate(assignment):
            for server_id in set(targets):
                stores[server_id].append(entry_index)
        placement = tuple(tuple(sorted(store)) for store in stores)
        merged[placement] = merged.get(placement, Fraction(0)) + unit
    return [
        EnumeratedInstance(placement, probability)
        for placement, probability in sorted(merged.items())
    ]


def instance_retrieval_probabilities(
    placement: Instance, entry_count: int, target: int
) -> List[Fraction]:
    """Exact p_I(j) for a single-contact lookup regime.

    Valid when every non-empty server holds at least ``target``
    entries (so the client never needs a second server): the client
    picks a server uniformly, and that server returns a uniform
    ``target``-subset of its store — hence
    ``p(j) = (1/n) Σ_servers [j ∈ store] · t/|store|``.

    Raises if any server is too small for the single-contact regime.
    """
    n = len(placement)
    if target < 1:
        raise InvalidParameterError("target must be >= 1")
    for store in placement:
        if 0 < len(store) < target:
            raise InvalidParameterError(
                "single-contact analysis needs every non-empty server to "
                f"hold >= t entries; got {len(store)} < {target}"
            )
    probabilities = [Fraction(0)] * entry_count
    for store in placement:
        if not store:
            continue
        share = Fraction(target, len(store)) / n
        for entry_index in store:
            probabilities[entry_index] += share
    return probabilities


def instance_unfairness_exact(
    placement: Instance, entry_count: int, target: int
) -> float:
    """Equation (1) evaluated exactly on one instance.

    The variance is accumulated in exact rational arithmetic; only the
    final square root is floating point.
    """
    probabilities = instance_retrieval_probabilities(
        placement, entry_count, target
    )
    ideal = Fraction(target, entry_count)
    variance = sum((p - ideal) ** 2 for p in probabilities)
    return (entry_count / target) * math.sqrt(float(variance) / entry_count)


def strategy_unfairness_exact(
    instances: Sequence[EnumeratedInstance], entry_count: int, target: int
) -> float:
    """The paper's strategy-level unfairness: E_instances[U_I], exactly.

    >>> instances = enumerate_random_server_instances(2, 2, 1)
    >>> strategy_unfairness_exact(instances, 2, 1)   # Figure 8
    0.5
    """
    total = 0.0
    for instance in instances:
        total += float(instance.probability) * instance_unfairness_exact(
            instance.placement, entry_count, target
        )
    return total


def expected_coverage_exact(
    instances: Sequence[EnumeratedInstance], entry_count: int
) -> float:
    """E[|covered entries|] over the enumerated instances, exactly."""
    total = Fraction(0)
    for instance in instances:
        covered = set()
        for store in instance.placement:
            covered.update(store)
        total += instance.probability * len(covered)
    return float(total)
