"""Chaos test: interleaved updates, lookups, failures, and recoveries.

A long random schedule of every kind of event must never corrupt a
strategy: no duplicate entries in answers, no crash, and answers drawn
only from entries that are live *or* legitimately stale.

Staleness is real, faithful behaviour: the paper's protocols have no
anti-entropy repair, so an update issued while a server is down never
reaches it — a delete can leave a stale copy that resurfaces when the
server recovers.  The model therefore tracks a ``maybe_stale`` set:
any entry updated while at least one server was failed.  The safety
property is that nothing *outside* ``live ∪ maybe_stale`` can ever be
returned.
"""

import random

import pytest

from repro.cluster.cluster import Cluster
from repro.core.entry import Entry, make_entries
from repro.core.exceptions import NoOperationalServerError
from repro.strategies.registry import available_strategies, create_strategy

PARAMS = {
    "full_replication": {},
    "fixed": {"x": 25},
    "random_server": {"x": 25},
    "round_robin": {"y": 2, "counter_replicas": 3},
    "hash": {"y": 2},
    "key_partitioning": {},
}


@pytest.mark.parametrize("name", available_strategies())
def test_chaos_schedule(name):
    rng = random.Random(hash(name) % (2**31))
    cluster = Cluster(10, seed=17)
    strategy = create_strategy(name, cluster, **PARAMS[name])
    initial = make_entries(60)
    strategy.place(initial)
    live = {e.entry_id for e in initial}
    maybe_stale = set()
    next_id = 0
    any_failure_ever = False

    for step in range(400):
        roll = rng.random()
        degraded = cluster.failed_count > 0
        any_failure_ever = any_failure_ever or degraded
        # Fixed-x's *selective* broadcast consults the contacted
        # server's local store; once any failure has desynchronized
        # the supposedly-identical stores, a delete can be wrongly
        # swallowed by a stale initial server even while everyone is
        # up — so after the first failure, every Fixed-x delete is
        # only best-effort.  (The paper's no-concurrency-control
        # caveat, §5.2, extended to failures.)
        delete_unreliable = degraded or (
            name == "fixed" and any_failure_ever
        )
        try:
            if roll < 0.25:
                entry = Entry(f"c{next_id}")
                next_id += 1
                strategy.add(entry)
                live.add(entry.entry_id)
            elif roll < 0.45 and live:
                victim = rng.choice(sorted(live))
                strategy.delete(Entry(victim))
                live.discard(victim)
                if delete_unreliable:
                    # A failed (or, for Fixed-x, desynchronized)
                    # server may still hold a copy forever.
                    maybe_stale.add(victim)
            elif roll < 0.85:
                result = strategy.partial_lookup(rng.randint(1, 10))
                ids = [e.entry_id for e in result.entries]
                assert len(ids) == len(set(ids))
                assert set(ids) <= live | maybe_stale, "untracked entry"
            elif roll < 0.95 and cluster.failed_count < 9:
                cluster.fail(rng.randrange(10))
            elif cluster.failed_count:
                cluster.recover(rng.choice(
                    [s.server_id for s in cluster.servers if not s.alive]
                ))
        except NoOperationalServerError:
            # Updates may legitimately be refused while the relevant
            # servers are down (e.g. all counter replicas failed).
            # Recover someone and carry on.
            cluster.recover(rng.randrange(10))

    cluster.recover_all()

    # After full recovery: answers are still duplicate-free and drawn
    # only from live-or-stale entries.
    result = strategy.partial_lookup(5)
    ids = [e.entry_id for e in result.entries]
    assert len(ids) == len(set(ids))
    assert set(ids) <= live | maybe_stale

    retrievable = {e.entry_id for e in strategy.lookup_all()}
    assert retrievable <= live | maybe_stale, "invented entries"

    if name == "hash":
        # Live entries sit only on their hash targets.
        placement = strategy.placement()
        for entry_id in sorted(live)[:10]:
            holders = {
                sid
                for sid, entries in placement.items()
                if Entry(entry_id) in entries
            }
            targets = set(strategy.family.assign_distinct(Entry(entry_id)))
            assert holders <= targets
