"""Unit tests for the stochastic failure/recovery process."""

import random

import pytest

from repro.core.exceptions import InvalidParameterError
from repro.simulation.events import FailureEvent, RecoveryEvent
from repro.workload.failures import (
    FailureProcess,
    FailureProcessConfig,
    empirical_availability,
)


def _config(mtbf=100.0, mttr=25.0):
    return FailureProcessConfig(
        mean_time_between_failures=mtbf, mean_time_to_repair=mttr
    )


class TestConfig:
    def test_availability_formula(self):
        assert _config(100, 25).availability == pytest.approx(0.8)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            FailureProcessConfig(0, 10)
        with pytest.raises(InvalidParameterError):
            FailureProcessConfig(10, -1)


class TestEventStreams:
    def test_alternating_kinds(self):
        process = FailureProcess(_config(), rng=random.Random(1))
        events = process.events_for_server(0, horizon=5000)
        kinds = [type(e) for e in events]
        for index, kind in enumerate(kinds):
            expected = FailureEvent if index % 2 == 0 else RecoveryEvent
            assert kind is expected

    def test_times_increase_within_horizon(self):
        process = FailureProcess(_config(), rng=random.Random(2))
        events = process.events_for_server(3, horizon=2000)
        times = [e.time for e in events]
        assert times == sorted(times)
        assert all(0 < t < 2000 for t in times)
        assert all(e.server_id == 3 for e in events)

    def test_fleet_merges_sorted(self):
        process = FailureProcess(_config(), rng=random.Random(3))
        events = process.events_for_fleet(5, horizon=3000)
        times = [e.time for e in events]
        assert times == sorted(times)
        assert {e.server_id for e in events} <= set(range(5))

    def test_empirical_availability_matches_config(self):
        config = _config(mtbf=100, mttr=50)  # availability 2/3
        process = FailureProcess(config, rng=random.Random(4))
        total = 0.0
        servers = 40
        horizon = 20000.0
        for server_id in range(servers):
            events = process.events_for_server(server_id, horizon)
            total += empirical_availability(events, horizon)
        assert total / servers == pytest.approx(config.availability, abs=0.05)

    def test_bad_horizon(self):
        process = FailureProcess(_config(), rng=random.Random(5))
        with pytest.raises(InvalidParameterError):
            process.events_for_server(0, horizon=0)
        with pytest.raises(InvalidParameterError):
            empirical_availability([], horizon=-1)


class TestAvailabilityExperiment:
    def test_shapes(self):
        from repro.experiments.availability import AvailabilityConfig, run

        config = AvailabilityConfig(
            availabilities=(0.3, 0.9), runs=2, lookups_per_run=150
        )
        result = run(config)
        harsh = result.row_for(availability=0.3)
        gentle = result.row_for(availability=0.9)
        # Fixed-20 cannot serve t=35 at any availability (§4.3).
        assert harsh["fixed"] == 1.0 and gentle["fixed"] == 1.0
        # Everyone else improves with availability.
        for label in ("random_server", "round_robin", "hash",
                      "key_partitioning"):
            assert gentle[label] <= harsh[label]
        # Partitioning fails ~ owner unavailability; far worse than
        # any partial scheme at high availability.
        assert gentle["key_partitioning"] > gentle["round_robin"] + 0.02
