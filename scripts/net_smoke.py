#!/usr/bin/env python
"""Live-service smoke: boot ``repro serve``, drive ``repro call``, tear down.

CI's net-smoke job runs this script.  It starts the asyncio lookup
service as a real subprocess on an ephemeral port, waits for the
``--ready-file`` handshake, then runs ``repro call`` partial lookups
against every hosted scheme — checking, per scheme, that:

- every lookup met its target (``all_success``),
- the returned entry ids are distinct and drawn from the placed
  universe ``v1..vH``,
- the service's ``verify`` op reports full coverage (every placed
  entry retrievable from operational servers) and the scheme's exact
  expected storage cost.

It then asserts the CLI's exit-code contract — 0 for lookups that met
their target, 3 (degraded) for short-but-non-empty answers, 4 (failed)
for empty answers — by asking ``fixed`` for more entries than its x=10
subset holds, and by querying a lone shard that is not home to the
key at all.  Every contract point is asserted twice: once on the
sequential JSON path and once with ``--codec binary --batch N``
(pipelined batched lookups over the negotiated binary codec), which
must produce identical summaries and exit codes.

The same contract then runs against a ``serve --workers 2`` fleet
(SO_REUSEPORT multi-process serve): every scheme answers through the
fleet, degraded/failed exits hold, one SIGTERM to the parent tears
down every worker (verified by pid), and the ``info.capabilities``
cache counters show real hot-key hits — written out as a JSON
artifact with ``--cache-stats PATH`` for CI to upload.

Finally the durability contract: a ``serve --store log`` service is
populated, SIGKILLed mid-workload (no shutdown path runs), and
restarted on the same data directory — the recovered process must
report ``storage.recovered`` and serve raw binary reply frames that
are byte-for-byte identical to the pre-crash control's, mutation
included.

The server is terminated with SIGTERM and must exit cleanly within
the grace period; any leftover process is killed and reported as a
failure.  The whole script is bounded by ``--timeout`` (default 120 s)
so a wedged service fails fast instead of hanging the job.

Usage: ``PYTHONPATH=src python scripts/net_smoke.py [--timeout 120]``
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time

SERVERS = 12
ENTRIES = 30
SEED = 5
TARGET = 8
LOOKUPS = 3

X = 10  # fixed / random_server subset size
Y = 2  # round_robin / hash copy count

#: scheme -> (expected coverage, (min, max) storage) for the service
#: defaults above.  Fixed-x is partial *by design* (covers only its x
#: chosen entries); Hash-y's storage dips below y*h when hash
#: functions collide; everything else is exact.
EXPECTED = {
    "full_replication": (ENTRIES, (SERVERS * ENTRIES, SERVERS * ENTRIES)),
    "fixed": (X, (SERVERS * X, SERVERS * X)),
    "random_server": (ENTRIES, (SERVERS * X, SERVERS * X)),
    "round_robin": (ENTRIES, (Y * ENTRIES, Y * ENTRIES)),
    "hash": (ENTRIES, (ENTRIES, Y * ENTRIES)),
}


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def wait_for_ready(path: str, process: subprocess.Popen, deadline: float) -> tuple[str, int]:
    while time.monotonic() < deadline:
        if process.poll() is not None:
            fail(f"server exited early with code {process.returncode}")
        try:
            with open(path, encoding="utf-8") as handle:
                text = handle.read().strip()
        except FileNotFoundError:
            text = ""
        if text:
            host, port = text.split()
            return host, int(port)
        time.sleep(0.1)
    fail("server never wrote the ready file")
    raise AssertionError  # unreachable


def run_call(
    scheme: str,
    host: str,
    port: int,
    deadline: float,
    *,
    target: int = TARGET,
    verify: bool = True,
    expect: int = 0,
    codec: str = "json",
    batch: int = 1,
) -> dict:
    command = [
        sys.executable,
        "-m",
        "repro",
        "call",
        scheme,
        "--host",
        host,
        "--port",
        str(port),
        "--target",
        str(target),
        "--count",
        str(LOOKUPS),
        "--seed",
        "11",
        "--codec",
        codec,
        "--batch",
        str(batch),
    ]
    if verify:
        command.append("--verify")
    budget = max(1.0, deadline - time.monotonic())
    result = subprocess.run(
        command, capture_output=True, text=True, timeout=budget
    )
    if result.returncode != expect:
        fail(
            f"repro call {scheme} exited {result.returncode}, want {expect}:\n"
            f"{result.stdout}\n{result.stderr}"
        )
    summary = json.loads(result.stdout)
    if summary.get("exit_code") != expect:
        fail(
            f"{scheme}: summary exit_code {summary.get('exit_code')} "
            f"disagrees with process exit {expect}"
        )
    return summary


def check_scheme(scheme: str, summary: dict, label: str = "") -> None:
    if not summary["all_success"]:
        fail(f"{scheme}: lookup(s) missed the target: {summary}")
    universe = {f"v{i}" for i in range(1, ENTRIES + 1)}
    for lookup in summary["lookups"]:
        ids = lookup["entries"]
        if len(ids) != len(set(ids)):
            fail(f"{scheme}: duplicate entries in one lookup answer: {ids}")
        if len(ids) != TARGET:
            fail(f"{scheme}: got {len(ids)} entries, want {TARGET}")
        stray = set(ids) - universe
        if stray:
            fail(f"{scheme}: entries outside the placed universe: {stray}")
    verify = summary["verify"]
    coverage, (storage_low, storage_high) = EXPECTED[scheme]
    if verify["coverage"] != coverage:
        fail(f"{scheme}: coverage {verify['coverage']} != {coverage}")
    if not storage_low <= verify["storage_cost"] <= storage_high:
        fail(
            f"{scheme}: storage {verify['storage_cost']} outside "
            f"[{storage_low}, {storage_high}]"
        )
    if verify["operational"] != SERVERS:
        fail(f"{scheme}: {verify['operational']} operational servers != {SERVERS}")
    print(
        f"ok {scheme}{label}: {LOOKUPS} lookups x {TARGET} entries, "
        f"coverage {verify['coverage']}/{ENTRIES}, "
        f"storage {verify['storage_cost']}"
    )


def check_degraded_exit(
    host: str, port: int, deadline: float, *, codec: str = "json", batch: int = 1
) -> None:
    # ``fixed`` hosts only its X chosen entries; asking for more is
    # answerable-but-short — degraded (3), never failed (4).
    summary = run_call(
        "fixed",
        host,
        port,
        deadline,
        target=X + 2,
        verify=False,
        expect=3,
        codec=codec,
        batch=batch,
    )
    for lookup in summary["lookups"]:
        if lookup["found"] != X or lookup["success"]:
            fail(f"degraded call: expected {X} found and no success: {lookup}")
        if not lookup["degraded"]:
            fail(f"degraded call: row not marked degraded: {lookup}")
    label = f" [{codec}, batch {batch}]" if batch > 1 else ""
    print(
        f"ok exit-code {summary['exit_code']}{label}: "
        "short non-empty answer is degraded"
    )


def check_failed_exit(ready_dir: str, deadline: float) -> None:
    # A lone shard that is not home to ``fixed`` truthfully answers
    # empty; an empty answer with a positive target is failed (4).
    ready = os.path.join(ready_dir, "shard-ready.txt")
    server = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--port",
            "0",
            "--ready-file",
            ready,
            "--servers",
            str(SERVERS),
            "--entries",
            str(ENTRIES),
            "--seed",
            str(SEED),
            "--shard",
            "0/3",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        host, port = wait_for_ready(ready, server, deadline)
        for codec, batch in (("json", 1), ("binary", LOOKUPS)):
            summary = run_call(
                "fixed",
                host,
                port,
                deadline,
                verify=False,
                expect=4,
                codec=codec,
                batch=batch,
            )
            for lookup in summary["lookups"]:
                if lookup["found"] != 0:
                    fail(f"failed call: non-home shard answered data: {lookup}")
            label = f" [{codec}, batch {batch}]" if batch > 1 else ""
            print(
                f"ok exit-code {summary['exit_code']}{label}: "
                "empty answer from a non-home shard is failed"
            )
    finally:
        if server.poll() is None:
            server.send_signal(signal.SIGTERM)
            try:
                server.wait(timeout=10)
            except subprocess.TimeoutExpired:
                server.kill()
                server.wait()
                fail("shard server did not exit within 10s of SIGTERM")


def collect_cache_stats(host: str, port: int) -> dict:
    """Drive repeated hot-key lookups on one connection, read counters.

    ``full_replication`` lookups for the whole store are the cacheable
    hot path (no RNG sampling), so after the first round every send is
    a cache hit on whichever process serves this connection; the
    ``info.capabilities.cache`` block is that process's live ledger.
    """
    import asyncio

    from repro.net.client import AsyncLookupClient

    async def probe() -> dict:
        client = AsyncLookupClient(host, port, codec="binary")
        async with client:
            for _ in range(12):
                result = await client.lookup("full_replication", ENTRIES)
                if len(result) != ENTRIES:
                    fail(f"cache probe lookup got {len(result)}/{ENTRIES}")
            return await client.capabilities()

    caps = asyncio.run(asyncio.wait_for(probe(), timeout=30))
    cache = caps.get("cache") or {}
    if not cache.get("enabled"):
        fail(f"reply cache not enabled in capabilities: {caps}")
    if cache.get("hits", 0) <= 0:
        fail(f"hot-key probe produced no cache hits: {cache}")
    print(
        f"ok cache: {cache['hits']} hits / {cache['misses']} misses "
        f"on worker {caps.get('workers', {}).get('index', 0)} "
        f"(role {caps.get('workers', {}).get('role', 'single')})"
    )
    return caps


def check_zerocopy_identity(host: str, port: int) -> None:
    """The zero-copy reply path serves the legacy encoder's exact bytes.

    Two assertions: (1) locally, joining the fragment encoder's buffer
    list reproduces the flat binary encoder byte for byte, splices and
    all; (2) on the wire, a cacheable lookup asked twice on one binary
    connection answers with identical raw reply frames — the first
    reply was packed cold through the fragment path, the second spliced
    straight out of the reply cache, and neither may differ from the
    other by even one byte.
    """
    import asyncio
    import struct

    from repro.cluster.messages import LookupRequest
    from repro.net.codec import (
        CODEC_BINARY,
        encode_envelope_binary,
        encode_envelope_fragments,
        encode_message,
        hello_envelope,
        pack_send_reply,
        read_frame,
        write_frame,
    )
    from repro.core.entry import Entry

    sample = {
        "op": "batch",
        "value": [pack_send_reply(7, tuple(Entry(f"v{i}") for i in range(1, 200)))],
    }
    joined = b"".join(bytes(b) for b in encode_envelope_fragments(sample))
    if joined != encode_envelope_binary(sample):
        fail("fragment encoder diverged from the flat binary encoder")

    async def probe() -> tuple[bytes, bytes]:
        reader, writer = await asyncio.open_connection(host, port)
        try:
            await write_frame(writer, hello_envelope((CODEC_BINARY,)))
            hello = await read_frame(reader)
            if not (hello and hello.get("ok")):
                fail(f"zero-copy probe hello failed: {hello}")
            lookup = {
                "op": "send",
                "server": 0,
                "key": "full_replication",
                "message": encode_message(LookupRequest(0)),
            }
            frames = []
            for _ in range(2):
                await write_frame(writer, dict(lookup), codec=CODEC_BINARY)
                (length,) = struct.unpack(">I", await reader.readexactly(4))
                frames.append(await reader.readexactly(length))
            return frames[0], frames[1]
        finally:
            writer.close()
            await writer.wait_closed()

    cold, cached = asyncio.run(asyncio.wait_for(probe(), timeout=30))
    if cold != cached:
        fail("cached zero-copy reply differs from the cold reply bytes")
    print(f"ok zero-copy: cold and cached replies byte-identical ({len(cold)}B)")


def check_log_store_recovery(ready_dir: str, deadline: float) -> None:
    """``serve --store log``: SIGKILL mid-workload, restart, identical bytes.

    The control replies are captured from the *uncrashed* service right
    after a post-boot mutation, as raw binary reply frames.  The server
    is then SIGKILLed — no shutdown hook, no final flush beyond the
    per-record journal flush — and restarted on the same data
    directory.  The recovered service must report
    ``storage.recovered`` in its capabilities and answer every
    (scheme, server) full-store lookup with frames byte-for-byte equal
    to the control's (``LookupRequest(target=0)`` consumes no RNG, so
    the replies are a pure function of durable state).
    """
    import asyncio
    import struct

    from repro.cluster.messages import AddRequest, LookupRequest
    from repro.core.entry import Entry
    from repro.net.codec import (
        CODEC_BINARY,
        encode_message,
        hello_envelope,
        read_frame,
        write_frame,
    )

    data_dir = os.path.join(ready_dir, "log-store-data")
    os.makedirs(data_dir, exist_ok=True)
    ready = os.path.join(ready_dir, "log-store-ready.txt")

    def spawn() -> subprocess.Popen:
        if os.path.exists(ready):
            os.unlink(ready)
        return subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--port",
                "0",
                "--ready-file",
                ready,
                "--servers",
                str(SERVERS),
                "--entries",
                str(ENTRIES),
                "--seed",
                str(SEED),
                "--store",
                "log",
                "--data-dir",
                data_dir,
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )

    async def mutate(host: str, port: int) -> None:
        reader, writer = await asyncio.open_connection(host, port)
        try:
            await write_frame(
                writer,
                {
                    "op": "send",
                    "server": 0,
                    "key": "full_replication",
                    "message": encode_message(AddRequest(Entry("w1"))),
                },
            )
            reply = await read_frame(reader)
            if not (isinstance(reply, dict) and reply.get("ok")):
                fail(f"log-store mutation failed: {reply!r}")
        finally:
            writer.close()
            await writer.wait_closed()

    async def capture(host: str, port: int) -> list[bytes]:
        reader, writer = await asyncio.open_connection(host, port)
        frames: list[bytes] = []
        try:
            await write_frame(writer, hello_envelope((CODEC_BINARY,)))
            hello = await read_frame(reader)
            if not (hello and hello.get("ok")):
                fail(f"log-store probe hello failed: {hello}")
            for scheme in sorted(EXPECTED):
                for server_id in range(SERVERS):
                    await write_frame(
                        writer,
                        {
                            "op": "send",
                            "server": server_id,
                            "key": scheme,
                            "message": encode_message(LookupRequest(0)),
                        },
                        codec=CODEC_BINARY,
                    )
                    (length,) = struct.unpack(">I", await reader.readexactly(4))
                    frames.append(await reader.readexactly(length))
        finally:
            writer.close()
            await writer.wait_closed()
        return frames

    async def storage_caps(host: str, port: int) -> dict:
        reader, writer = await asyncio.open_connection(host, port)
        try:
            await write_frame(writer, {"op": "info"})
            info = await read_frame(reader)
        finally:
            writer.close()
            await writer.wait_closed()
        caps = ((info or {}).get("value") or {}).get("capabilities") or {}
        return dict(caps.get("storage") or {})

    server = spawn()
    caps: dict = {}
    control: list[bytes] = []
    try:
        host, port = wait_for_ready(ready, server, deadline)
        asyncio.run(asyncio.wait_for(mutate(host, port), timeout=30))
        control = asyncio.run(asyncio.wait_for(capture(host, port), timeout=30))
        server.kill()
        server.wait()
        server = spawn()
        host, port = wait_for_ready(ready, server, deadline)
        caps = asyncio.run(asyncio.wait_for(storage_caps(host, port), timeout=30))
        if caps.get("kind") != "log" or not caps.get("recovered"):
            fail(f"restarted log-store service did not recover: {caps}")
        recovered = asyncio.run(asyncio.wait_for(capture(host, port), timeout=30))
        if recovered != control:
            diff = sum(1 for a, b in zip(control, recovered) if a != b)
            fail(
                f"log-store recovery replies differ from the uncrashed "
                f"control ({diff}/{len(control)} frames)"
            )
    finally:
        if server.poll() is None:
            server.send_signal(signal.SIGTERM)
            try:
                server.wait(timeout=10)
            except subprocess.TimeoutExpired:
                server.kill()
                server.wait()
                fail("log-store server did not exit within 10s of SIGTERM")
    print(
        f"ok log-store recovery: SIGKILL + restart replayed "
        f"{caps.get('log_records')} journal records and served "
        f"{len(control)} byte-identical reply frames"
    )


def _fleet_pids(ready: str) -> list[int]:
    with open(f"{ready}.workers", encoding="utf-8") as handle:
        lines = [line.split() for line in handle if line.strip()]
    return [int(pid) for _index, pid in lines]


def _assert_fleet_gone(pids: list[int]) -> None:
    time.sleep(0.5)
    for pid in pids:
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            continue
        os.kill(pid, signal.SIGKILL)
        fail(f"worker pid {pid} survived the fleet teardown")


def check_worker_fleet(ready_dir: str, deadline: float) -> dict:
    """The ``serve --workers 2`` leg: full exit-code contract + teardown.

    Asserts 0 (every scheme serves full answers through the fleet), 3
    (short-but-non-empty stays degraded), 4 (a lone non-home *fleet*
    answers empty), that mutating/reading across worker processes is
    transparent to ``repro call``, and that one SIGTERM to the parent
    tears down every worker with a clean "[serve] stopped".
    """
    ready = os.path.join(ready_dir, "fleet-ready.txt")
    server = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--workers",
            "2",
            "--port",
            "0",
            "--ready-file",
            ready,
            "--servers",
            str(SERVERS),
            "--entries",
            str(ENTRIES),
            "--seed",
            str(SEED),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    caps: dict = {}
    try:
        host, port = wait_for_ready(ready, server, deadline)
        pids = _fleet_pids(ready)
        if len(pids) != 2:
            fail(f"expected 2 worker pids in the manifest, got {pids}")
        print(f"fleet up at {host}:{port}, workers {pids}")
        for scheme in sorted(EXPECTED):
            check_scheme(
                scheme,
                run_call(scheme, host, port, deadline, codec="binary", batch=LOOKUPS),
                label=" [workers 2]",
            )
        check_degraded_exit(host, port, deadline)
        check_degraded_exit(host, port, deadline, codec="binary", batch=LOOKUPS)
        caps = collect_cache_stats(host, port)
        workers = caps.get("workers") or {}
        if workers.get("count") != 2:
            fail(f"capabilities do not report the 2-worker fleet: {workers}")
    finally:
        if server.poll() is None:
            server.send_signal(signal.SIGTERM)
            try:
                server.wait(timeout=15)
            except subprocess.TimeoutExpired:
                server.kill()
                server.wait()
                fail("worker fleet did not exit within 15s of SIGTERM")
    output = server.stdout.read() if server.stdout else ""
    if server.returncode != 0:
        fail(f"worker fleet exited {server.returncode}:\n{output}")
    if "[serve] stopped" not in output:
        fail(f"worker fleet did not report a clean stop:\n{output}")
    _assert_fleet_gone(pids)
    print("ok workers 2: fleet served all schemes and tore down cleanly")

    # exit code 4 through a fleet: a lone non-home shard, 2 workers
    ready4 = os.path.join(ready_dir, "fleet-shard-ready.txt")
    shard = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--workers",
            "2",
            "--port",
            "0",
            "--ready-file",
            ready4,
            "--servers",
            str(SERVERS),
            "--entries",
            str(ENTRIES),
            "--seed",
            str(SEED),
            "--shard",
            "0/3",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        host, port = wait_for_ready(ready4, shard, deadline)
        summary = run_call(
            "fixed", host, port, deadline, verify=False, expect=4
        )
        for lookup in summary["lookups"]:
            if lookup["found"] != 0:
                fail(f"fleet failed-exit leg answered data: {lookup}")
        print("ok exit-code 4 [workers 2]: non-home fleet answers empty")
    finally:
        if shard.poll() is None:
            shard.send_signal(signal.SIGTERM)
            try:
                shard.wait(timeout=15)
            except subprocess.TimeoutExpired:
                shard.kill()
                shard.wait()
                fail("sharded worker fleet did not exit within 15s of SIGTERM")
    return caps


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--timeout", type=float, default=120.0)
    parser.add_argument(
        "--cache-stats",
        default=None,
        metavar="PATH",
        help="write the observed cache hit-rate counters here (JSON)",
    )
    args = parser.parse_args()
    deadline = time.monotonic() + args.timeout

    with tempfile.TemporaryDirectory() as tmpdir:
        ready = os.path.join(tmpdir, "ready.txt")
        server = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--port",
                "0",
                "--ready-file",
                ready,
                "--servers",
                str(SERVERS),
                "--entries",
                str(ENTRIES),
                "--seed",
                str(SEED),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            host, port = wait_for_ready(ready, server, deadline)
            print(f"server up at {host}:{port}")
            for scheme in sorted(EXPECTED):
                check_scheme(scheme, run_call(scheme, host, port, deadline))
            # The same contract over the binary codec with pipelined
            # batches: identical summaries, identical exit codes.
            for scheme in sorted(EXPECTED):
                check_scheme(
                    scheme,
                    run_call(
                        scheme, host, port, deadline, codec="binary", batch=LOOKUPS
                    ),
                    label=f" [binary, batch {LOOKUPS}]",
                )
            check_degraded_exit(host, port, deadline)
            check_degraded_exit(host, port, deadline, codec="binary", batch=LOOKUPS)
            check_failed_exit(tmpdir, deadline)
            check_zerocopy_identity(host, port)
            single_caps = collect_cache_stats(host, port)
        finally:
            if server.poll() is None:
                server.send_signal(signal.SIGTERM)
                try:
                    server.wait(timeout=10)
                except subprocess.TimeoutExpired:
                    server.kill()
                    server.wait()
                    fail("server did not exit within 10s of SIGTERM")
        output = server.stdout.read() if server.stdout else ""
        if server.returncode != 0:
            fail(f"server exited {server.returncode}:\n{output}")
        if "[serve] stopped" not in output:
            fail(f"server did not report a clean stop:\n{output}")
        fleet_caps = check_worker_fleet(tmpdir, deadline)
        check_log_store_recovery(tmpdir, deadline)
    if args.cache_stats:
        with open(args.cache_stats, "w", encoding="utf-8") as handle:
            json.dump(
                {
                    "single": single_caps.get("cache"),
                    "workers": fleet_caps.get("cache"),
                    "fleet": fleet_caps.get("workers"),
                },
                handle,
                indent=2,
                sort_keys=True,
            )
        print(f"cache stats written to {args.cache_stats}")
    print("net smoke passed: all schemes served real partial lookups")
    return 0


if __name__ == "__main__":
    sys.exit(main())
