"""Unit tests for the experiment registry and CLI."""

import json

import pytest

from repro.core.exceptions import InvalidParameterError
from repro.experiments.cli import main
from repro.experiments.registry import (
    EXPERIMENTS,
    build_config,
    get_spec,
    list_experiments,
)


class TestRegistry:
    def test_all_paper_artifacts_present(self):
        assert set(EXPERIMENTS) == {
            "table1", "fig4", "fig6", "fig7", "fig9",
            "fig12", "fig13", "fig14", "table2", "hotspot",
            "availability", "diverse", "sensitivity", "chaos",
        }

    def test_get_spec_unknown(self):
        with pytest.raises(InvalidParameterError, match="available"):
            get_spec("fig99")

    def test_list_in_paper_order(self):
        ids = [spec.experiment_id for spec in list_experiments()]
        assert ids[0] == "table1"
        assert ids.index("fig4") < ids.index("fig14")

    def test_build_config_defaults(self):
        spec = get_spec("table1")
        config = build_config(spec, {})
        assert config.entry_count == 100

    def test_build_config_coerces_int(self):
        spec = get_spec("table1")
        config = build_config(spec, {"runs": "7"})
        assert config.runs == 7

    def test_build_config_coerces_tuple(self):
        spec = get_spec("fig4")
        config = build_config(spec, {"targets": "10,20,30"})
        assert config.targets == (10, 20, 30)

    def test_build_config_coerces_float(self):
        spec = get_spec("fig12")
        config = build_config(spec, {"arrival_gap": "5.0"})
        assert config.arrival_gap == 5.0

    def test_build_config_rejects_unknown_field(self):
        spec = get_spec("table1")
        with pytest.raises(InvalidParameterError, match="no parameter"):
            build_config(spec, {"bogus": "1"})


class TestCli:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig4" in out and "hotspot" in out

    def test_run_prints_table(self, capsys):
        assert main(["run", "table1", "--set", "runs=3"]) == 0
        out = capsys.readouterr().out
        assert "Table 1: storage cost" in out
        assert "full_replication" in out

    def test_run_with_plot(self, capsys):
        assert main([
            "run", "fig6", "--set", "runs=2",
            "--set", "budgets=50,100,200", "--plot",
        ]) == 0
        out = capsys.readouterr().out
        assert "legend:" in out

    def test_run_writes_json(self, tmp_path, capsys):
        target = tmp_path / "out" / "t1.json"
        assert main([
            "run", "table1", "--set", "runs=2", "--json", str(target)
        ]) == 0
        payload = json.loads(target.read_text())
        assert payload["name"].startswith("Table 1")
        assert payload["config"]["runs"] == 2
        assert len(payload["rows"]) == 5

    def test_bad_override_is_a_clean_error(self, capsys):
        assert main(["run", "table1", "--set", "bogus=1"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_malformed_set_is_a_clean_error(self, capsys):
        assert main(["run", "table1", "--set", "runs"]) == 2
        assert "name=value" in capsys.readouterr().err
