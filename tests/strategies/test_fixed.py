"""Unit tests for the Fixed-x strategy (§3.2, §5.2)."""

import pytest

from repro.cluster.cluster import Cluster
from repro.core.entry import Entry, make_entries
from repro.core.exceptions import InvalidParameterError
from repro.strategies.fixed import FixedX


@pytest.fixture
def strategy(cluster):
    s = FixedX(cluster, x=20)
    s.place(make_entries(100))
    return s


class TestPlacement:
    def test_every_server_stores_first_x(self, strategy):
        expected = set(make_entries(20))
        for entries in strategy.placement().values():
            assert entries == expected

    def test_storage_cost_x_times_n(self, strategy):
        assert strategy.storage_cost() == 200

    def test_coverage_is_x(self, strategy):
        assert strategy.coverage() == 20

    def test_placement_with_fewer_than_x_entries(self, cluster):
        strategy = FixedX(cluster, x=20)
        strategy.place(make_entries(5))
        assert strategy.coverage() == 5
        assert strategy.storage_cost() == 50

    def test_x_validation(self, cluster):
        with pytest.raises(InvalidParameterError):
            FixedX(cluster, x=0)

    def test_from_budget(self, cluster):
        assert FixedX.from_budget(cluster, 200).x == 20


class TestLookups:
    def test_one_server_within_x(self, strategy):
        result = strategy.partial_lookup(15)
        assert result.success and result.lookup_cost == 1

    def test_target_above_x_fails_with_one_contact(self, strategy):
        # Contacting more identical servers could never help.
        result = strategy.partial_lookup(25)
        assert not result.success
        assert result.lookup_cost == 1
        assert len(result) == 20

    def test_only_first_x_ever_returned(self, strategy):
        allowed = set(make_entries(20))
        for _ in range(50):
            assert set(strategy.partial_lookup(10).entries) <= allowed

    def test_tolerates_n_minus_1_failures(self, strategy):
        strategy.cluster.fail_many(range(1, 10))
        assert strategy.partial_lookup(20).success


class TestSelectiveBroadcast:
    def test_add_ignored_when_full(self, strategy):
        result = strategy.add(Entry("new"))
        assert result.messages == 1  # request only, no broadcast
        assert not result.broadcast
        assert Entry("new") not in strategy.lookup_all()

    def test_add_broadcast_when_below_x(self, strategy):
        strategy.delete(Entry("v1"))  # store drops to 19
        result = strategy.add(Entry("new"))
        assert result.broadcast
        assert result.messages == 1 + 10
        assert Entry("new") in strategy.lookup_all()

    def test_delete_of_tracked_entry_broadcasts(self, strategy):
        result = strategy.delete(Entry("v5"))
        assert result.broadcast
        assert result.messages == 1 + 10

    def test_delete_of_untracked_entry_ignored(self, strategy):
        result = strategy.delete(Entry("v50"))  # outside the first 20
        assert not result.broadcast
        assert result.messages == 1
        assert strategy.coverage() == 20

    def test_servers_stay_identical_through_updates(self, strategy):
        strategy.delete(Entry("v3"))
        strategy.add(Entry("a"))
        strategy.delete(Entry("v7"))
        strategy.add(Entry("b"))
        placements = list(strategy.placement().values())
        assert all(p == placements[0] for p in placements)


class TestCushionDynamics:
    def test_deletes_without_adds_shrink_store(self, strategy):
        for i in range(1, 6):
            strategy.delete(Entry(f"v{i}"))
        assert strategy.coverage() == 15
        assert not strategy.partial_lookup(16).success

    def test_refill_restores_capacity(self, strategy):
        strategy.delete(Entry("v1"))
        strategy.add(Entry("r1"))
        assert strategy.coverage() == 20
        assert strategy.partial_lookup(20).success
