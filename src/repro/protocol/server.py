"""The sans-IO server-side request core.

:class:`ServerProtocol` is the transport-agnostic half of a lookup
server: it owns idempotent delivery dedupe (the at-least-once
transport may deliver the same logical message twice) and dispatches
each received message — lookups, the add/delete/place update
choreography, anti-entropy verify probes — to the per-key logic the
active placement strategy installed.  It performs no I/O and keeps no
transport state; both the simulated :class:`~repro.cluster.network.Network`
and the asyncio socket service (:mod:`repro.net.service`) drive the
same instances.

Peer messaging: several schemes answer an update by messaging *other*
servers (Round-Robin's delete choreography, RandomServer's broadcasts).
The logic layer reaches peers through the ``peers`` argument — the
transport the driver is pumping messages through — so the protocol
core stays ignorant of how those messages move.  In-process drivers
pass the simulated network; the socket service hosts its cluster
in-process and passes the same, so server-to-server traffic never
re-enters the wire codec.

The one message every scheme treats identically — the per-server
lookup answer — lives here as :func:`answer_lookup`, the paper's
"return t randomly selected entries stored on the server, or all the
entries if the total is less than t".
"""

from __future__ import annotations

import random
from collections import OrderedDict
from typing import TYPE_CHECKING, Any, List

from repro.protocol.effects import Effect, Reply
from repro.protocol.events import MessageReceived

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.messages import Message
    from repro.cluster.server import EntryStore, Server
    from repro.core.entry import Entry


def answer_lookup(
    store: "EntryStore", target: int, rng: random.Random
) -> List["Entry"]:
    """The per-server lookup answer shared by every scheme.

    ``target <= 0`` means "everything", used by traditional full
    lookups and coverage probes.  Randomness is injected so seeded
    replies replay identically under any driver.
    """
    return store.sample(target, rng)


class ServerProtocol:
    """Sans-IO message handling for one server.

    The protocol wraps a :class:`~repro.cluster.server.Server` (the
    store/state owner) and is the single dispatch point for received
    messages.  Transport concerns — liveness suppression, loss, §6.4
    message accounting — stay with the driver; by the time a message
    reaches :meth:`on_message` it *was* delivered.
    """

    #: How many (delivery id → reply) records the dedupe cache keeps.
    #: Duplicated deliveries arrive immediately after the original in
    #: the synchronous transport, so a small window is ample; the
    #: bound exists so long chaos runs cannot grow memory unboundedly.
    DEDUP_WINDOW = 1024

    __slots__ = ("_server", "_seen_deliveries")

    def __init__(self, server: "Server") -> None:
        self._server = server
        self._seen_deliveries: "OrderedDict[int, Any]" = OrderedDict()

    @property
    def server(self) -> "Server":
        return self._server

    # -- event/effect surface ------------------------------------------------

    def on_message(self, event: MessageReceived, peers: Any) -> List[Effect]:
        """Consume one delivery event; emit the reply effect."""
        if event.delivery_id is None:
            return [Reply(self.dispatch(event.key, event.message, peers))]
        return [
            Reply(
                self.dispatch_dedup(
                    event.key, event.message, peers, event.delivery_id
                )
            )
        ]

    # -- dispatch ------------------------------------------------------------

    def dispatch(self, key: str, message: "Message", peers: Any) -> Any:
        """Route a delivered message to the installed per-key logic."""
        logic = self._server.logic_for(key)
        if logic is None:
            raise RuntimeError(
                f"server {self._server.server_id} has no logic installed "
                f"for key {key!r}"
            )
        return logic.handle(self._server, message, peers)

    def dispatch_dedup(
        self, key: str, message: "Message", peers: Any, delivery_id: int
    ) -> Any:
        """Idempotent dispatch: process each delivery id exactly once.

        The at-least-once transport (a fault plan with duplication)
        may deliver the same logical message twice; the first delivery
        runs the handler and caches its reply, the second returns the
        cached reply without re-running it.  This is what makes every
        update handler idempotent under duplicated delivery without
        each strategy having to reason about redelivery.
        """
        if delivery_id in self._seen_deliveries:
            return self._seen_deliveries[delivery_id]
        reply = self.dispatch(key, message, peers)
        self._seen_deliveries[delivery_id] = reply
        while len(self._seen_deliveries) > self.DEDUP_WINDOW:
            self._seen_deliveries.popitem(last=False)
        return reply

    def forget_deliveries(self) -> None:
        """Drop the dedupe cache (server wiped / freshly provisioned)."""
        self._seen_deliveries.clear()
