"""Unit tests for the Network cost model."""

import pytest

from repro.cluster.messages import LookupRequest, StoreMessage
from repro.cluster.network import UNDELIVERED, MessageStats, Network
from repro.cluster.server import Server, ServerLogic
from repro.core.entry import Entry
from repro.core.exceptions import InvalidParameterError


class _CountingLogic(ServerLogic):
    """Test logic: stores entries, returns the server id."""

    def handle(self, server, message, network):
        if isinstance(message, StoreMessage):
            server.store("k").add(message.entry)
        return server.server_id


def _make_network(size: int = 4):
    servers = [Server(i) for i in range(size)]
    logic = _CountingLogic()
    for server in servers:
        server.install_logic("k", logic)
    return Network(servers), servers


class TestSend:
    def test_send_delivers_and_counts(self):
        network, _ = _make_network()
        reply = network.send(2, "k", StoreMessage(Entry("a")))
        assert reply == 2
        assert network.stats.total == 1
        assert network.stats.per_server[2] == 1

    def test_send_rejects_out_of_range_destination(self):
        # Ids used to wrap modulo n, silently masking out-of-range
        # destination bugs in protocol code; now they are errors.
        network, _ = _make_network(4)
        with pytest.raises(InvalidParameterError):
            network.send(6, "k", StoreMessage(Entry("a")))
        with pytest.raises(InvalidParameterError):
            network.server(-1)
        assert network.stats.total == 0

    def test_send_to_failed_is_undelivered_and_uncounted(self):
        network, servers = _make_network()
        servers[1].fail()
        reply = network.send(1, "k", StoreMessage(Entry("a")))
        assert reply is UNDELIVERED
        assert network.stats.total == 0
        assert network.stats.undelivered == 1

    def test_undelivered_sentinel_is_falsy(self):
        assert not UNDELIVERED


class TestBroadcast:
    def test_broadcast_costs_n(self):
        network, _ = _make_network(4)
        replies = network.broadcast("k", StoreMessage(Entry("a")))
        assert network.stats.total == 4
        assert set(replies) == {0, 1, 2, 3}
        assert network.stats.broadcasts == 1

    def test_broadcast_skips_failed(self):
        network, servers = _make_network(4)
        servers[0].fail()
        servers[3].fail()
        replies = network.broadcast("k", StoreMessage(Entry("a")))
        assert set(replies) == {1, 2}
        assert network.stats.total == 2
        assert network.stats.undelivered == 2


class TestAccountingCategories:
    def test_update_vs_lookup_categories(self):
        network, _ = _make_network()
        network.send(0, "k", StoreMessage(Entry("a")))
        network.send(0, "k", LookupRequest(3))
        network.send(1, "k", LookupRequest(3))
        assert network.stats.update_messages == 1
        assert network.stats.lookup_messages == 2

    def test_by_type_counter(self):
        network, _ = _make_network()
        network.send(0, "k", StoreMessage(Entry("a")))
        network.send(0, "k", StoreMessage(Entry("b")))
        assert network.stats.by_type["StoreMessage"] == 2

    def test_reset(self):
        network, _ = _make_network()
        network.send(0, "k", StoreMessage(Entry("a")))
        network.reset_stats()
        assert network.stats.total == 0
        assert network.stats.by_type == {}

    def test_snapshot_is_independent(self):
        network, _ = _make_network()
        network.send(0, "k", StoreMessage(Entry("a")))
        snapshot = network.stats.snapshot()
        network.send(0, "k", StoreMessage(Entry("b")))
        assert snapshot.total == 1
        assert network.stats.total == 2
