"""Entry lifetime distributions (paper §6.1).

The paper pairs every add with a delete at the end of the entry's
lifetime, drawn from either an exponential distribution (not
tail-heavy) or a Zipf-like distribution (tail-heavy), "scaled so that
their expectation is λ·h" — which, with arrival gap λ and Little's
law, keeps ``h`` entries in the system in steady state.

For the Zipf-like density ``P(t) = 1/(t·ln C)`` on ``[1, C]``, the
paper sets ``C = λ·h``; but that choice gives mean ``(C−1)/ln C``,
*not* λ·h (e.g. ≈145 for λ·h = 1000), which would hold ~7× fewer
entries than intended and contradict the experiments' "100 entries in
steady state" setup.  We therefore default to solving for the ``C``
whose mean actually equals the requested expectation (the paper's
stated intent), and keep ``paper_literal=True`` available to reproduce
the formula exactly as printed.  EXPERIMENTS.md discusses the
discrepancy.
"""

from __future__ import annotations

import math
import random
from abc import ABC, abstractmethod

from repro.core.exceptions import InvalidParameterError


class LifetimeDistribution(ABC):
    """A positive random lifetime with a configured expectation."""

    @property
    @abstractmethod
    def mean(self) -> float:
        """The distribution's expected lifetime."""

    @abstractmethod
    def sample(self, rng: random.Random) -> float:
        """Draw one lifetime."""

    @property
    def name(self) -> str:
        return type(self).__name__


class ExponentialLifetime(LifetimeDistribution):
    """``P(t) = (1/m)·e^(−t/m)``: memoryless, light-tailed.

    >>> dist = ExponentialLifetime(mean=1000.0)
    >>> rng = random.Random(7)
    >>> mean = sum(dist.sample(rng) for _ in range(20000)) / 20000
    >>> 950 < mean < 1050
    True
    """

    def __init__(self, mean: float) -> None:
        if mean <= 0:
            raise InvalidParameterError(f"mean must be positive, got {mean}")
        self._mean = mean

    @property
    def mean(self) -> float:
        return self._mean

    def sample(self, rng: random.Random) -> float:
        return rng.expovariate(1.0 / self._mean)


class ZipfLifetime(LifetimeDistribution):
    """``P(t) = 1/(t·ln C)`` on ``[1, C]``: heavy-tailed.

    Sampling uses the inverse CDF: ``F(t) = ln(t)/ln(C)``, so
    ``t = C^u`` for uniform ``u``.

    Parameters
    ----------
    mean:
        The target expected lifetime (the paper's λ·h).
    paper_literal:
        If True, set ``C = mean`` exactly as the paper's formula reads
        (yielding an actual mean of ``(C−1)/ln C``); if False (the
        default), solve for the ``C`` whose mean equals ``mean``,
        matching the paper's stated scaling intent.
    """

    def __init__(self, mean: float, paper_literal: bool = False) -> None:
        if mean <= math.e:
            raise InvalidParameterError(
                f"Zipf lifetime needs mean > e for a solvable C, got {mean}"
            )
        self._target_mean = mean
        self.paper_literal = paper_literal
        self.cutoff = mean if paper_literal else self._solve_cutoff(mean)

    @staticmethod
    def _solve_cutoff(target_mean: float) -> float:
        """Find C with ``(C − 1)/ln(C) = target_mean`` by bisection.

        ``(C−1)/ln C`` is increasing for ``C > 1``, so bisection on a
        bracket is exact enough at 1e-9 relative tolerance.
        """
        low, high = math.e, max(4.0, target_mean)
        while (high - 1) / math.log(high) < target_mean:
            high *= 2
        for _ in range(200):
            mid = (low + high) / 2
            if (mid - 1) / math.log(mid) < target_mean:
                low = mid
            else:
                high = mid
            if (high - low) / high < 1e-12:
                break
        return (low + high) / 2

    @property
    def mean(self) -> float:
        """The distribution's *actual* mean, ``(C − 1)/ln C``."""
        return (self.cutoff - 1) / math.log(self.cutoff)

    def sample(self, rng: random.Random) -> float:
        return self.cutoff ** rng.random()


class FixedLifetime(LifetimeDistribution):
    """A degenerate constant lifetime, for deterministic tests."""

    def __init__(self, mean: float) -> None:
        if mean <= 0:
            raise InvalidParameterError(f"mean must be positive, got {mean}")
        self._mean = mean

    @property
    def mean(self) -> float:
        return self._mean

    def sample(self, rng: random.Random) -> float:
        return self._mean
