"""Fleet durability: snapshot parity over the backend interface and
DeltaApplier behaviour on a disk-recovered worker.

The snapshot half is the ``snapshot_stores``/``load_snapshot`` contract
(every scheme round-trips through ``StorageBackend.restore``, on both
backends); the applier half is the recover-from-disk boot path — a
respawned worker replays the journal, seeds its watermark from the
recovered epoch, and then catches up from buffered bus deltas instead
of a full network resync (with the gap-too-wide fallback intact).
"""

import asyncio
import os
import tempfile

import pytest

from repro.cluster.messages import AddRequest, DeleteRequest
from repro.core.entry import Entry
from repro.net.codec import encode_message
from repro.net.service import DEFAULT_SCHEMES, LookupService, ServiceConfig
from repro.net.workers import (
    MAX_DELTA_BUFFER,
    DeltaApplier,
    WriteForwarder,
    WriterBus,
    compute_apply_delta,
    load_snapshot,
    snapshot_stores,
)


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=30))


CONFIG = ServiceConfig(server_count=8, entry_count=12, seed=3)


def _log_config(data_dir, **overrides):
    base = dict(
        server_count=8, entry_count=12, seed=3, store="log", data_dir=str(data_dir)
    )
    base.update(overrides)
    return ServiceConfig(**base)


def _send(key, message, server=0):
    return {
        "op": "send",
        "server": server,
        "key": key,
        "message": encode_message(message),
    }


def _masks(service, key):
    return [server.store(key).mask for server in service.cluster.servers]


def _stores(service, key):
    return [server.store(key).as_list() for server in service.cluster.servers]


def _mutate(service):
    for envelope in (
        _send("full_replication", AddRequest(entry=Entry("zz-1"))),
        _send("full_replication", DeleteRequest(entry=Entry("v2"))),
        _send("hash", AddRequest(entry=Entry("zz-2"))),
    ):
        assert service.handle_envelope(envelope)["ok"]


class TestSnapshotParity:
    """Satellite: snapshot/load round-trip through the backend interface."""

    @pytest.mark.parametrize("key", sorted(DEFAULT_SCHEMES))
    def test_each_scheme_round_trips(self, key):
        source = LookupService(CONFIG)
        _mutate(source)
        target = LookupService(CONFIG)
        load_snapshot(target, snapshot_stores(source))
        assert _stores(target, key) == _stores(source, key)
        assert _masks(target, key) == _masks(source, key)

    def test_snapshot_preserves_insertion_order_per_server(self):
        source = LookupService(CONFIG)
        _mutate(source)
        target = LookupService(CONFIG)
        load_snapshot(target, snapshot_stores(source))
        for key in DEFAULT_SCHEMES:
            for a, b in zip(
                source.cluster.servers, target.cluster.servers
            ):
                assert b.store(key).as_list() == a.store(key).as_list()
                assert b.store(key).indices() == a.store(key).indices()

    def test_load_into_a_durable_reader_journals_one_reset_per_store(
        self, tmp_path
    ):
        source = LookupService(CONFIG)
        _mutate(source)
        reader = LookupService(_log_config(tmp_path))
        before = reader.journal.log_records
        snapshot = snapshot_stores(source)
        load_snapshot(reader, snapshot)
        resets = reader.journal.log_records - before
        expected = sum(len(per_server) for per_server in snapshot.values())
        assert resets == expected  # one reset record per (key, server)

    def test_adopted_snapshot_survives_a_crash(self, tmp_path):
        source = LookupService(CONFIG)
        _mutate(source)
        reader = LookupService(_log_config(tmp_path))
        load_snapshot(reader, snapshot_stores(source))
        reader.journal.close()
        reborn = LookupService(_log_config(tmp_path))
        assert reborn.recovered
        for key in DEFAULT_SCHEMES:
            assert _stores(reborn, key) == _stores(source, key)
            assert _masks(reborn, key) == _masks(source, key)


class TestDurableDeltaApplier:
    """Satellite: resync behaviour with a store recovered from disk."""

    def _crash_and_recover(self, tmp_path, epochs=3):
        """A writer journals ``epochs`` mutations, dies; returns
        (writer service, its deltas, the disk-recovered reader)."""
        writer = LookupService(_log_config(tmp_path))
        deltas = []
        for n in range(epochs):
            _, delta = compute_apply_delta(
                writer, _send("full_replication", AddRequest(entry=Entry(f"zz-{n}")))
            )
            assert delta is not None
            delta["epoch"] = n + 1
            writer.journal.record_epoch(delta["key"], delta["epoch"])
            deltas.append(delta)
        writer.journal.close()
        recovered = LookupService(_log_config(tmp_path, store_read_only=True))
        assert recovered.recovered
        assert recovered.recovered_epoch == epochs
        return writer, deltas, recovered

    def test_replayed_epochs_are_duplicates_after_recovery(self, tmp_path):
        writer, deltas, recovered = self._crash_and_recover(tmp_path)
        applier = DeltaApplier(recovered, applied=recovered.recovered_epoch)
        # every journal-replayed delta arrives again via the bus: all
        # must be recognized as duplicates, and the stores must not drift
        for delta in deltas:
            assert applier.offer(delta) == "duplicate"
        assert _masks(recovered, "full_replication") == _masks(
            writer, "full_replication"
        )

    def test_buffered_epochs_apply_in_order_after_recovery(self, tmp_path):
        _, _, recovered = self._crash_and_recover(tmp_path)
        applier = DeltaApplier(recovered, applied=recovered.recovered_epoch)
        live = LookupService(_log_config(tmp_path, store_read_only=True))
        next_epoch = recovered.recovered_epoch + 1
        _, d4 = compute_apply_delta(
            live, _send("full_replication", AddRequest(entry=Entry("post-a")))
        )
        d4["epoch"] = next_epoch
        _, d5 = compute_apply_delta(
            live, _send("full_replication", AddRequest(entry=Entry("post-b")))
        )
        d5["epoch"] = next_epoch + 1
        # out-of-order arrival: the future epoch buffers, then both
        # apply the moment the sequence closes
        assert applier.offer(d5) == "buffered"
        assert applier.offer(d4) == "applied"
        assert applier.applied == next_epoch + 1
        assert _masks(recovered, "full_replication") == _masks(
            live, "full_replication"
        )

    def test_gap_beyond_the_buffer_requests_a_resync(self, tmp_path):
        writer, _, recovered = self._crash_and_recover(tmp_path)
        applier = DeltaApplier(recovered, applied=recovered.recovered_epoch)
        base = recovered.recovered_epoch + 2  # leave a hole at +1
        template = {"key": "full_replication", "servers": {}}
        for offset in range(MAX_DELTA_BUFFER):
            status = applier.offer(dict(template, epoch=base + offset))
            assert status == "buffered"
        # one more unbridgeable future delta overflows the buffer
        assert applier.offer(dict(template, epoch=base + MAX_DELTA_BUFFER)) == "resync"
        # the snapshot fallback then converges the recovered reader
        applier.resync(base + MAX_DELTA_BUFFER, snapshot_stores(writer))
        assert applier.applied == base + MAX_DELTA_BUFFER
        for key in DEFAULT_SCHEMES:
            assert _masks(recovered, key) == _masks(writer, key)


class TestDurableBusSync:
    """A recovered reader catches up incrementally over the writer pipe."""

    def test_recovered_reader_syncs_from_deltas_not_a_snapshot(self):
        async def scenario():
            with tempfile.TemporaryDirectory() as tmp:
                data_dir = os.path.join(tmp, "data")
                writer_svc = LookupService(_log_config(data_dir))
                bus = WriterBus(writer_svc, os.path.join(tmp, "bus.sock"))
                await bus.start()
                try:
                    # two epochs land while no reader is up; the journal
                    # holds their mutations and epoch markers
                    await bus.forward(
                        _send("full_replication", AddRequest(entry=Entry("zz-a")))
                    )
                    await bus.forward(
                        _send("full_replication", AddRequest(entry=Entry("zz-b")))
                    )
                    assert bus.epoch == 2
                    # a respawned reader recovers from the same journal...
                    reader_svc = LookupService(
                        _log_config(data_dir, store_read_only=True)
                    )
                    assert reader_svc.recovered
                    assert reader_svc.recovered_epoch == 2
                    fwd = WriteForwarder(reader_svc, os.path.join(tmp, "bus.sock"))
                    await fwd.start()
                    try:
                        # ...and its boot sync found nothing missing:
                        # watermark already at the bus epoch, stores equal
                        assert fwd.applier.applied == bus.epoch
                        for key in writer_svc.strategies:
                            assert _masks(reader_svc, key) == _masks(
                                writer_svc, key
                            )
                        # a post-boot mutation still reaches it live
                        await bus.forward(
                            _send(
                                "full_replication",
                                AddRequest(entry=Entry("zz-c")),
                            )
                        )
                        deadline = asyncio.get_running_loop().time() + 5
                        while asyncio.get_running_loop().time() < deadline:
                            if fwd.applier.applied == bus.epoch:
                                break
                            await asyncio.sleep(0.01)
                        assert _masks(reader_svc, "full_replication") == _masks(
                            writer_svc, "full_replication"
                        )
                    finally:
                        await fwd.stop()
                finally:
                    await bus.stop()

        run(scenario())

    def test_restarted_bus_resumes_the_epoch_sequence(self):
        with tempfile.TemporaryDirectory() as tmp:
            data_dir = os.path.join(tmp, "data")
            crashed = LookupService(_log_config(data_dir))
            crashed.journal.record_epoch("full_replication", 9)
            crashed.journal.close()
            reborn = LookupService(_log_config(data_dir))
            bus = WriterBus(reborn, os.path.join(tmp, "bus.sock"))
            # the epoch counter picks up where the journal left off, so
            # recovered readers' watermarks stay comparable
            assert bus.epoch == 9
            assert bus.scheme_epochs.get("full_replication") == 9
