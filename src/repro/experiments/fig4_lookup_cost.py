"""Figure 4: lookup cost vs target answer size at a fixed storage budget.

Paper setup: 100 entries, 10 servers, a 200-entry storage budget
(hence Fixed-20, RandomServer-20, Round-2, Hash-2), target answer
sizes 10..50; 5000 runs of 5000 lookups per data point.  Fixed-20 is
omitted from the figure because it cannot answer targets above 20; we
include it as a column with its failure rate so the omission is
visible in the data.

Expected shape: Round-2 is a step curve (+1 server per 20 of target),
RandomServer-20 tracks it from above (overlapping subsets waste
contacts), Hash-2 is above 1 even for small targets but can beat the
others just past multiples of 20.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Dict, List, Optional, Tuple

from repro.analysis.exact import exact_lookup_cost
from repro.analysis.formulas import solve_x_from_budget, solve_y_from_budget
from repro.cluster.cluster import Cluster
from repro.core.entry import make_entries
from repro.core.exceptions import InvalidParameterError
from repro.experiments.parallel import make_executor
from repro.experiments.placement_cache import PlacementCache
from repro.experiments.runner import ExperimentResult, average_runs_multi
from repro.metrics.lookup_cost import LookupCostEstimate, estimate_lookup_cost
from repro.strategies.fixed import FixedX
from repro.strategies.hashing import HashY
from repro.strategies.random_server import RandomServerX
from repro.strategies.round_robin import RoundRobinY


@dataclass(frozen=True)
class Fig4Config:
    """Paper parameters, with scaled-down default run counts."""

    entry_count: int = 100
    server_count: int = 10
    storage_budget: int = 200
    targets: Tuple[int, ...] = (10, 15, 20, 25, 30, 35, 40, 45, 50)
    #: Placements per data point (paper: 5000).
    runs: int = 30
    #: Lookups per placement (paper: 5000).
    lookups_per_run: int = 200
    seed: int = 4
    #: "mc" (paper default), "exact" (closed-form lookup cost; only
    #: Fixed-x and Round-Robin-y have one, so the stochastic schemes
    #: raise), or "auto" (exact where available, MC otherwise).
    estimator: str = "mc"
    #: When True, each run places all four schemes once and sweeps
    #: every target against that one placement (restored between
    #: targets via :class:`PlacementCache`), instead of re-placing at
    #: every (target, run) grid point.  Opt-in: the grid collapses to
    #: one master seed, so the numbers differ from the default
    #: per-target seeding (deterministically so).
    reuse_placements: bool = False


def _strategies(config: Fig4Config, cluster: Cluster):
    x = solve_x_from_budget(config.storage_budget, config.server_count)
    y = solve_y_from_budget(config.storage_budget, config.entry_count)
    return {
        f"round_robin_{y}": RoundRobinY(cluster, y=y, key="rr"),
        f"random_server_{x}": RandomServerX(cluster, x=x, key="rs"),
        f"hash_{y}": HashY(cluster, y=y, key="h"),
        f"fixed_{x}": FixedX(cluster, x=x, key="f"),
    }


def _estimate(config: Fig4Config, strategy, target: int) -> LookupCostEstimate:
    if config.estimator in ("exact", "auto"):
        estimate = exact_lookup_cost(strategy, target)
        if estimate is not None:
            return estimate
        if config.estimator == "exact":
            raise InvalidParameterError(
                f"no exact lookup-cost form for {type(strategy).__name__} "
                f"(use estimator='mc' or 'auto')"
            )
    return estimate_lookup_cost(strategy, target, config.lookups_per_run)


def measure_point(config: Fig4Config, target: int, seed: int) -> Dict[str, float]:
    """One run: place each strategy fresh, average lookup cost at ``target``.

    All four strategies share one cluster (under different keys) so
    they see the same seeds, pairing the comparison.
    """
    cluster = Cluster(config.server_count, seed=seed)
    entries = make_entries(config.entry_count)
    samples: Dict[str, float] = {}
    for label, strategy in _strategies(config, cluster).items():
        strategy.place(entries)
        estimate = _estimate(config, strategy, target)
        samples[label] = estimate.mean_cost
        samples[label + "_fail"] = estimate.failure_rate
    return samples


#: Per-process placement cache for the ``reuse_placements`` path (each
#: worker process gets its own copy; cached instances are never sent
#: across the process boundary).
_PLACEMENTS = PlacementCache()


def _group_specs(config: Fig4Config):
    x = solve_x_from_budget(config.storage_budget, config.server_count)
    y = solve_y_from_budget(config.storage_budget, config.entry_count)
    return (
        (f"round_robin_{y}", "round_robin", "rr", (("y", y),)),
        (f"random_server_{x}", "random_server", "rs", (("x", x),)),
        (f"hash_{y}", "hash", "h", (("y", y),)),
        (f"fixed_{x}", "fixed", "f", (("x", x),)),
    )


def measure_run_reused(config: Fig4Config, seed: int) -> Dict[str, float]:
    """One run of the whole grid: place once, sweep every target.

    The :class:`PlacementCache` handout restores the post-place RNG
    state and message counters before each target, so each target's
    measurement is independent of the grid's composition.
    """
    specs = _group_specs(config)
    samples: Dict[str, float] = {}
    for target in config.targets:
        strategies, _entries = _PLACEMENTS.placed_group(
            specs, config.entry_count, config.server_count, seed
        )
        for label, strategy in strategies.items():
            estimate = _estimate(config, strategy, target)
            samples[f"{label}@{target}"] = estimate.mean_cost
            samples[f"{label}@{target}_fail"] = estimate.failure_rate
    return samples


def run(
    config: Fig4Config = Fig4Config(), *, jobs: Optional[int] = None
) -> ExperimentResult:
    """Regenerate Figure 4's series (plus Fixed-x's failure column)."""
    x = solve_x_from_budget(config.storage_budget, config.server_count)
    y = solve_y_from_budget(config.storage_budget, config.entry_count)
    labels = [f"round_robin_{y}", f"random_server_{x}", f"hash_{y}", f"fixed_{x}"]
    result = ExperimentResult(
        name="Figure 4: lookup cost vs target answer size",
        headers=["target"] + labels + [f"fixed_{x}_fail"],
        meta={
            "h": config.entry_count,
            "n": config.server_count,
            "budget": config.storage_budget,
            "runs": config.runs,
            "lookups_per_run": config.lookups_per_run,
        },
    )
    if config.estimator != "mc":
        result.meta["estimator"] = config.estimator
    if config.reuse_placements:
        result.meta["reuse_placements"] = True
    with make_executor(jobs) as executor:
        if config.reuse_placements:
            averaged = average_runs_multi(
                partial(measure_run_reused, config),
                master_seed=config.seed,
                runs=config.runs,
                executor=executor,
            )
            for target in config.targets:
                row: Dict[str, object] = {"target": target}
                for label in labels:
                    row[label] = round(averaged[f"{label}@{target}"].mean, 3)
                row[f"fixed_{x}_fail"] = round(
                    averaged[f"fixed_{x}@{target}_fail"].mean, 3
                )
                result.rows.append(row)
            return result
        for target in config.targets:
            averaged = average_runs_multi(
                partial(measure_point, config, target),
                master_seed=config.seed + target,
                runs=config.runs,
                executor=executor,
            )
            row = {"target": target}
            for label in labels:
                row[label] = round(averaged[label].mean, 3)
            row[f"fixed_{x}_fail"] = round(averaged[f"fixed_{x}_fail"].mean, 3)
            result.rows.append(row)
    return result
