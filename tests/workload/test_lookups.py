"""Unit tests for the lookup workload generator."""

import random

import pytest

from repro.core.exceptions import InvalidParameterError
from repro.workload.lookups import LookupWorkload


class TestConfiguration:
    def test_requires_exactly_one_mode(self):
        with pytest.raises(InvalidParameterError):
            LookupWorkload()
        with pytest.raises(InvalidParameterError):
            LookupWorkload(target=5, target_range=(1, 10))

    def test_invalid_fixed_target(self):
        with pytest.raises(InvalidParameterError):
            LookupWorkload(target=0)

    def test_invalid_range(self):
        with pytest.raises(InvalidParameterError):
            LookupWorkload(target_range=(5, 2))


class TestGeneration:
    def test_fixed_target_batch(self):
        workload = LookupWorkload(target=7, rng=random.Random(1))
        assert workload.batch(5) == [7, 7, 7, 7, 7]

    def test_ranged_targets_within_bounds(self):
        workload = LookupWorkload(target_range=(3, 9), rng=random.Random(2))
        targets = workload.batch(500)
        assert all(3 <= t <= 9 for t in targets)
        assert len(set(targets)) > 3  # actually varies

    def test_events_at_times(self):
        workload = LookupWorkload(target=4, rng=random.Random(3))
        events = workload.events_at([1.0, 2.5])
        assert [(e.time, e.target) for e in events] == [(1.0, 4), (2.5, 4)]

    def test_events_uniform_sorted_in_window(self):
        workload = LookupWorkload(target=4, rng=random.Random(4))
        events = workload.events_uniform(50, start=10.0, end=20.0)
        times = [e.time for e in events]
        assert times == sorted(times)
        assert all(10.0 <= t <= 20.0 for t in times)

    def test_events_uniform_bad_window(self):
        workload = LookupWorkload(target=4, rng=random.Random(5))
        with pytest.raises(InvalidParameterError):
            workload.events_uniform(5, start=10.0, end=5.0)
