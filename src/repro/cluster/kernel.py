"""The bitset Monte-Carlo lookup kernel.

``retrieval_probabilities`` issues 10,000 ``partial_lookup`` calls per
placement instance — the hot loop of every fig9/fig13-class
experiment.  Each such lookup runs the full machinery: a
``LookupRequest`` dataclass per contact, network dispatch, logic
dispatch, an :class:`~repro.core.result.LookupResult`, and per-entry
string-id set operations.  None of that is needed to *count* answers:
this kernel re-implements the client skeleton over the dense interned
indices (see :mod:`repro.core.interning`), accumulating into a flat
count array, with membership tests as bitmask probes.

The kernel is only used when it can be **bit-identical** to the real
path, RNG draws and message counters included:

* ``random.Random.sample``'s draw sequence depends only on
  ``(len(population), k)`` and ``shuffle``'s only on the list length,
  so sampling index lists of the same lengths consumes exactly the
  RNG stream the Entry-object path would.
* Message accounting is replayed in bulk into ``MessageStats`` after
  the run — one processed ``LookupRequest`` per contacted operational
  server, one ``undelivered`` per skipped failed server — so stats
  consumers (fig4's cost model, stats dumps) see identical counters.

Anything the kernel cannot replay exactly — fault plans, tracers,
retry policies, metrics registries, message logs, custom client RNGs,
or a strategy whose ``partial_lookup`` is not the declared plain
skeleton (``lookup_profile() is None``) — makes :func:`plan_kernel`
return ``None`` and the caller falls back to the real path.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

from repro.cluster.client import Client, Stride
from repro.cluster.messages import LookupRequest, MessageCategory

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.strategies.base import PlacementStrategy


# ---------------------------------------------------------------------------
# Inlined RNG primitives.
#
# ``random.Random.sample``/``shuffle``/``randrange`` are pure Python;
# in the MC loop their call overhead (plus ``sample`` recomputing its
# algorithm-selection threshold on every call) rivals the actual
# drawing.  The helpers below replicate their *exact* ``getrandbits``
# draw sequences with the dispatch hoisted out.  They are only used
# after :func:`_inline_rng_supported` has verified, against the live
# stdlib, that the replication is draw-for-draw identical — if a
# future CPython changes the algorithms, the kernel silently drops
# back to calling the real methods (still correct, just slower).
# ---------------------------------------------------------------------------


def _use_pool_path(n: int, k: int) -> bool:
    """CPython ``sample``'s algorithm choice: pool copy vs rejection set."""
    setsize = 21
    if k > 5:
        setsize += 4 ** math.ceil(math.log(k * 3, 4))
    return n <= setsize


def _sample_pool(population, k, getrandbits):
    """``sample`` via partial Fisher-Yates on a pool copy (n <= setsize)."""
    n = len(population)
    result = [None] * k
    pool = population[:]
    for i in range(k):
        bound = n - i
        bits = bound.bit_length()
        r = getrandbits(bits)
        while r >= bound:
            r = getrandbits(bits)
        result[i] = pool[r]
        pool[r] = pool[bound - 1]
    return result


def _sample_set(population, k, getrandbits):
    """``sample`` via rejection against a seen-set (n > setsize)."""
    n = len(population)
    bits = n.bit_length()
    result = [None] * k
    selected = set()
    add = selected.add
    for i in range(k):
        r = getrandbits(bits)
        while r >= n or r in selected:
            r = getrandbits(bits)
        add(r)
        result[i] = population[r]
    return result


def _fast_sample(population, k, getrandbits):
    if _use_pool_path(len(population), k):
        return _sample_pool(population, k, getrandbits)
    return _sample_set(population, k, getrandbits)


def _fast_shuffle(x, getrandbits):
    for i in range(len(x) - 1, 0, -1):
        bound = i + 1
        bits = bound.bit_length()
        r = getrandbits(bits)
        while r >= bound:
            r = getrandbits(bits)
        x[i], x[r] = x[r], x[i]


def _fast_randbelow(n, getrandbits):
    bits = n.bit_length()
    r = getrandbits(bits)
    while r >= n:
        r = getrandbits(bits)
    return r


_INLINE_RNG_OK: Optional[bool] = None


def _inline_rng_supported() -> bool:
    """One-time check: do the inlined primitives replay the stdlib exactly?"""
    global _INLINE_RNG_OK
    if _INLINE_RNG_OK is None:
        _INLINE_RNG_OK = _verify_inline_rng()
    return _INLINE_RNG_OK


def _verify_inline_rng() -> bool:
    shapes = [(5, 3), (7, 7), (10, 10), (20, 15), (50, 1), (64, 5), (100, 35), (200, 6), (500, 40)]
    for n, k in shapes:
        population = list(range(n))
        reference = random.Random(0xC0FFEE + n * 1000 + k)
        ours = random.Random(0xC0FFEE + n * 1000 + k)
        if reference.sample(population, k) != _fast_sample(
            population, k, ours.getrandbits
        ) or reference.getstate() != ours.getstate():
            return False
    for length in (0, 1, 2, 10, 37):
        reference = random.Random(0xF00D + length)
        ours = random.Random(0xF00D + length)
        a = list(range(length))
        b = list(range(length))
        reference.shuffle(a)
        _fast_shuffle(b, ours.getrandbits)
        if a != b or reference.getstate() != ours.getstate():
            return False
    for n in (1, 2, 9, 10, 100):
        reference = random.Random(n)
        ours = random.Random(n)
        if reference.randrange(n) != _fast_randbelow(n, ours.getrandbits) or (
            reference.getstate() != ours.getstate()
        ):
            return False
    return True


@dataclass
class KernelPlan:
    """Everything the kernel needs, pre-resolved from a strategy."""

    rng: random.Random
    #: Per-server dense-index lists (the live ``EntryStore`` internals;
    #: lookups never mutate stores, so sharing is safe).
    stores: List[List[int]]
    alive: List[bool]
    n: int
    #: None for random order, the stride for a Stride walk.
    stride: Optional[int]
    max_servers: Optional[int]
    #: Count-array size (the key's interned universe).
    index_space: int
    #: Where to replay message accounting.
    strategy: "PlacementStrategy"


def plan_kernel(strategy: "PlacementStrategy", target: int) -> Optional[KernelPlan]:
    """Build a :class:`KernelPlan`, or None if the fast path can't be exact."""
    from repro.strategies.base import StrategyLogic

    if target <= 0:
        return None
    profile = strategy.lookup_profile()
    if profile is None:
        return None
    client: Client = strategy.client
    cluster = strategy.cluster
    network = cluster.network
    if (
        client.retry_policy is not None
        or client.tracer is not None
        or client.metrics is not None
        or client._rng is not cluster.rng
    ):
        return None
    if (
        network.fault_injector is not None
        or network._tracer is not None
        or network._message_log is not None
    ):
        return None
    key = strategy.key
    for server in cluster.servers:
        logic = server.logic_for(key)
        # The per-server answer must be the shared StrategyLogic
        # sampling from the cluster RNG; a custom ``handle`` override
        # could do anything, so it disqualifies the kernel.
        if (
            not isinstance(logic, StrategyLogic)
            or type(logic).handle is not StrategyLogic.handle
            or logic.rng is not cluster.rng
        ):
            return None
    stride = profile.order.y if isinstance(profile.order, Stride) else None
    if stride is None and profile.order != "random":
        return None
    return KernelPlan(
        rng=cluster.rng,
        stores=[server.store(key)._indices for server in cluster.servers],
        alive=[server.alive for server in cluster.servers],
        n=cluster.size,
        stride=stride,
        max_servers=profile.max_servers,
        index_space=len(cluster.interner(key)),
        strategy=strategy,
    )


def run_retrieval_kernel(plan: KernelPlan, target: int, lookups: int) -> List[int]:
    """Run ``lookups`` Monte-Carlo partial lookups; return per-index counts.

    Bit-identical (RNG stream and message counters) to calling
    ``strategy.partial_lookup(target)`` ``lookups`` times and counting
    the returned entries.
    """
    rng = plan.rng
    stores = plan.stores
    alive = plan.alive
    n = plan.n
    max_servers = plan.max_servers
    counts = [0] * plan.index_space
    per_server = [0] * n
    undelivered = 0

    inline = type(rng) is random.Random and _inline_rng_supported()
    if inline:
        getrandbits = rng.getrandbits
        sample = lambda population, k: _fast_sample(population, k, getrandbits)
        shuffle = lambda x: _fast_shuffle(x, getrandbits)
        randrange = lambda bound: _fast_randbelow(bound, getrandbits)
        # The per-store (m, target) sample shape repeats every lookup;
        # pick CPython sample's pool-vs-set algorithm once per store.
        samplers = [
            (_sample_pool if _use_pool_path(len(store), target) else _sample_set)
            if len(store) > target
            else None
            for store in stores
        ]
    else:
        getrandbits = None
        sample = rng.sample
        shuffle = rng.shuffle
        randrange = rng.randrange
        samplers = [None] * n

    if plan.stride is not None:
        # Precompute the deterministic part of every stride walk: the
        # walk itself and the sorted leftovers (both depend only on
        # the start), leaving the RNG draws — start and leftover
        # shuffle — to the per-lookup loop, exactly as
        # Client.stride_order does.
        walks: List[List[int]] = []
        leftovers_by_start: List[List[int]] = []
        stride = plan.stride
        for start in range(n):
            walk: List[int] = []
            seen = set()
            current = start % n
            for _ in range(n):
                if current in seen:
                    break
                walk.append(current)
                seen.add(current)
                current = (current + stride) % n
            walks.append(walk)
            leftovers_by_start.append([i for i in range(n) if i not in seen])
        base_order = None
    else:
        base_order = list(range(n))

    for _ in range(lookups):
        if plan.stride is None:
            order = base_order[:]  # type: ignore[index]
            shuffle(order)
        else:
            start = randrange(n)
            leftovers = leftovers_by_start[start][:]
            shuffle(leftovers)
            order = walks[start] + leftovers
        merged_mask = 0
        merged_count = 0
        contacted = 0
        for sid in order:
            if merged_count >= target:
                break
            if max_servers is not None and contacted >= max_servers:
                break
            if not alive[sid]:
                undelivered += 1
                continue
            contacted += 1
            per_server[sid] += 1
            store = stores[sid]
            if target >= len(store):
                reply = store
            elif inline:
                reply = samplers[sid](store, target, getrandbits)
            else:
                reply = sample(store, target)
            if merged_mask:
                fresh = [i for i in reply if not (merged_mask >> i) & 1]
            else:
                fresh = reply
            if merged_count + len(fresh) > target:
                fresh = sample(fresh, target - merged_count)
            for i in fresh:
                counts[i] += 1
                merged_mask |= 1 << i
            merged_count += len(fresh)

    _replay_stats(plan, per_server, undelivered)
    return counts


def _replay_stats(plan: KernelPlan, per_server: List[int], undelivered: int) -> None:
    """Bulk-apply the message accounting the real path would have done."""
    stats = plan.strategy.cluster.network.stats
    total = sum(per_server)
    if total:
        stats.total += total
        stats.by_category[MessageCategory.LOOKUP] = (
            stats.by_category.get(MessageCategory.LOOKUP, 0) + total
        )
        type_name = LookupRequest.__name__
        stats.by_type[type_name] = stats.by_type.get(type_name, 0) + total
        for sid, count in enumerate(per_server):
            if count:
                stats.per_server[sid] = stats.per_server.get(sid, 0) + count
    stats.undelivered += undelivered
