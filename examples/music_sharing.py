"""Music sharing: churn, fairness, and provider load.

The paper's motivating application (§1, §4.5): song names map to the
peers serving them.  Peers join and leave constantly, and *which*
peers a lookup returns matters — a biased scheme funnels every
download to the same providers and overloads them (the Napster
hot-provider problem).

This example runs the same steady-state churn workload against
Fixed-x, RandomServer-x, and Hash-y and compares:

- update traffic (messages per join/leave),
- provider fairness (how evenly download traffic would spread), and
- lookup failures during churn.

Run:  python examples/music_sharing.py
"""

import random

from repro import Cluster
from repro.core.entry import Entry
from repro.experiments.report import render_table
from repro.metrics.unfairness import estimate_unfairness
from repro.simulation.events import AddEvent
from repro.simulation.replay import TraceReplayer
from repro.strategies.fixed import FixedX
from repro.strategies.hashing import HashY
from repro.strategies.random_server import RandomServerX
from repro.workload.generator import SteadyStateWorkload

#: Expected number of peers serving the song at any time.
PEERS = 100
#: A downloader wants a handful of candidate peers per lookup.
TARGET = 5
#: Joins + leaves simulated per scheme.
CHURN_EVENTS = 2000


def simulate(label, build_strategy, seed):
    """Run the churn workload and collect the provider-facing metrics."""
    workload = SteadyStateWorkload(PEERS, rng=random.Random(seed))
    trace = workload.generate(CHURN_EVENTS)

    cluster = Cluster(10, seed=seed)
    strategy = build_strategy(cluster)
    strategy.place(trace.initial_entries)
    cluster.reset_stats()

    # Track the live peer population alongside the replay so fairness
    # can be measured over the peers that actually exist at the end.
    live = {entry.entry_id: entry for entry in trace.initial_entries}
    stats = TraceReplayer(strategy, monitor_target=TARGET).replay(trace.events)
    for event in trace.events:
        if isinstance(event, AddEvent):
            live[event.entry.entry_id] = event.entry
        else:
            live.pop(event.entry.entry_id, None)

    fairness = estimate_unfairness(
        strategy, TARGET, list(live.values()), lookups=3000
    )
    return {
        "scheme": label,
        "msgs_per_update": round(stats.update_messages / CHURN_EVENTS, 2),
        "unfairness": round(fairness.unfairness, 3),
        "unlisted_peers": fairness.zero_probability_entries,
        "pct_time_degraded": round(100 * stats.failure_time_fraction, 3),
    }


def main() -> None:
    rows = [
        simulate("fixed-25", lambda c: FixedX(c, x=25), seed=11),
        simulate("random_server-25", lambda c: RandomServerX(c, x=25), seed=11),
        simulate("hash-2", lambda c: HashY(c, y=2), seed=11),
    ]
    print(render_table(
        ["scheme", "msgs_per_update", "unfairness", "unlisted_peers",
         "pct_time_degraded"],
        rows,
        title=f"Music sharing: {PEERS} peers, {CHURN_EVENTS} churn events, "
              f"lookups want {TARGET} peers",
    ))
    print(
        "\nReading the table (paper §6.3-§6.4):\n"
        " - fixed-x is cheapest per update (selective broadcast) but\n"
        "   unfair: it advertises the same 25 peers to everyone and\n"
        "   never lists the rest.\n"
        " - random_server-x spreads load better statically, but churn\n"
        "   biases it toward newer peers and it broadcasts every update.\n"
        " - hash-y updates are point-to-point (no broadcast), every\n"
        "   peer stays listed, and fairness holds up under churn - the\n"
        "   paper's recommendation for high-churn sharing workloads.\n"
    )


if __name__ == "__main__":
    main()
