"""Command-line driver for the paper's experiments.

Usage (installed as ``python -m repro``)::

    python -m repro list
    python -m repro run fig4
    python -m repro run fig4 --set runs=50 --set lookups_per_run=1000
    python -m repro run fig12 --plot
    python -m repro run table1 --json results/table1.json
    python -m repro run-all --out results/

Every command prints the same rows/series the paper reports; ``--plot``
adds an ASCII rendition of the figure, ``--json`` writes the result
(rows + config) for downstream tooling.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import pathlib
import sys
import time
from typing import Any, Dict, List, Optional

from repro.core import columns
from repro.core.exceptions import ReproError
from repro.experiments.parallel import resolve_jobs
from repro.experiments.plotting import plot_experiment
from repro.experiments.profiles import PROFILES, profile_overrides
from repro.experiments.registry import (
    EXPERIMENTS,
    ExperimentSpec,
    build_config,
    get_spec,
    list_experiments,
    run_manifest,
)
from repro.experiments.report import render_experiment, render_table
from repro.experiments.runner import ExperimentResult


def _parse_overrides(pairs: List[str]) -> Dict[str, str]:
    overrides: Dict[str, str] = {}
    for pair in pairs:
        if "=" not in pair:
            raise ReproError(f"--set expects name=value, got {pair!r}")
        name, _, value = pair.partition("=")
        overrides[name.strip()] = value.strip()
    return overrides


def result_to_json(result: ExperimentResult, config: Any) -> Dict[str, Any]:
    """A JSON-serializable record of one experiment run."""
    return {
        "name": result.name,
        "headers": result.headers,
        "rows": result.rows,
        "meta": result.meta,
        "config": dataclasses.asdict(config),
    }


def _write_json(payload: Dict[str, Any], path: pathlib.Path) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, default=str) + "\n")


def _cmd_list(args: argparse.Namespace) -> int:
    rows = [
        {
            "id": spec.experiment_id,
            "paper": spec.paper_artifact,
            "description": spec.description,
            "config": spec.config_class.__name__,
        }
        for spec in list_experiments()
    ]
    print(render_table(["id", "paper", "description", "config"], rows,
                       title="Available experiments"))
    return 0


def _run_one(
    spec: ExperimentSpec,
    overrides: Dict[str, str],
    plot: bool,
    json_path: Optional[pathlib.Path],
    csv_path: Optional[pathlib.Path] = None,
    quiet: bool = False,
    jobs: Optional[int] = None,
    profile: Optional[str] = None,
) -> ExperimentResult:
    # A profile seeds the overrides; explicit --set values win.
    merged: Dict[str, Any] = {}
    if profile is not None:
        merged.update(profile_overrides(spec.config_class, profile))
    merged.update(overrides)
    config = build_config(spec, merged)
    resolved_jobs = resolve_jobs(jobs)
    started = time.perf_counter()
    result = spec.run(config, jobs=resolved_jobs)
    elapsed = time.perf_counter() - started
    if not quiet:
        print(render_experiment(result))
        print(f"[{spec.experiment_id}: {elapsed:.1f}s]")
        if plot and spec.plottable:
            print()
            print(plot_experiment(result, log_y=spec.log_y))
    # Attach the manifest only after rendering: the printed output of
    # every experiment stays byte-identical to pre-manifest runs while
    # the JSON artifact gains the provenance record.  The execution
    # record (jobs/wall-clock) is the one deliberately non-reproducible
    # manifest field; results do not depend on it.
    result.attach_manifest(
        run_manifest(spec, config).with_execution(
            jobs=resolved_jobs,
            workers=resolved_jobs,
            mode="process" if resolved_jobs > 1 else "serial",
            wall_clock_seconds=elapsed,
        )
    )
    if json_path is not None:
        _write_json(result_to_json(result, config), json_path)
        if not quiet:
            print(f"[wrote {json_path}]")
    if csv_path is not None:
        from repro.io.results import result_to_csv

        result_to_csv(result, csv_path)
        if not quiet:
            print(f"[wrote {csv_path}]")
    return result


def _apply_estimator(
    overrides: Dict[str, str], estimator: Optional[str]
) -> Dict[str, str]:
    """Fold ``--estimator`` into the overrides; explicit --set wins."""
    if estimator is not None:
        overrides.setdefault("estimator", estimator)
    return overrides


def _cmd_run(args: argparse.Namespace) -> int:
    spec = get_spec(args.experiment)
    json_path = pathlib.Path(args.json) if args.json else None
    csv_path = pathlib.Path(args.csv) if args.csv else None
    _run_one(
        spec,
        _apply_estimator(_parse_overrides(args.set), args.estimator),
        args.plot,
        json_path,
        csv_path,
        jobs=args.jobs,
        profile=args.profile,
    )
    return 0


def _cmd_run_all(args: argparse.Namespace) -> int:
    out_dir = pathlib.Path(args.out) if args.out else None
    overrides = _apply_estimator(_parse_overrides(args.set), args.estimator)
    for spec in list_experiments():
        print(f"=== {spec.experiment_id} ({spec.paper_artifact}) ===")
        json_path = (
            out_dir / f"{spec.experiment_id}.json" if out_dir else None
        )
        # Shared overrides apply only where the config has the field.
        valid = {
            f.name for f in dataclasses.fields(spec.config_class)
        }
        applicable = {k: v for k, v in overrides.items() if k in valid}
        _run_one(
            spec,
            applicable,
            args.plot,
            json_path,
            jobs=args.jobs,
            profile=args.profile,
        )
        print()
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    from repro.analysis.planner import (
        DeploymentSpec,
        cheapest_for_updates,
        plan_rows,
    )

    spec = DeploymentSpec(
        entry_count=args.entries,
        server_count=args.servers,
        storage_budget=args.budget,
        target_answer_size=args.target,
        updates_per_lookup=args.update_rate,
    )
    rows = plan_rows(spec)
    print(render_table(
        list(columns.PLAN_COLUMNS),
        rows,
        title=(
            f"Analytic plan: h={spec.entry_count}, n={spec.server_count}, "
            f"budget={spec.storage_budget}, t={spec.target_answer_size}"
        ),
    ))
    print(f"cheapest for updates (§6.4): {cheapest_for_updates(spec)}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.report_doc import write_report

    path = write_report(
        pathlib.Path(args.out),
        scale=args.scale,
        include_plots=args.plot,
        experiment_ids=args.only or None,
    )
    print(f"wrote {path}")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.experiments.validate import ValidationConfig, all_passed, run

    result = run(ValidationConfig())
    print(render_experiment(result))
    if all_passed(result):
        print("all checks passed")
        return 0
    print("VALIDATION FAILED", file=sys.stderr)
    return 1


def _cmd_chaos_soak(args: argparse.Namespace) -> int:
    from repro.experiments.chaos_soak import ChaosSoakConfig, run

    config = ChaosSoakConfig(seed=args.seed, events=args.events)
    manifest = run_manifest(get_spec("chaos"), config)
    tracer = None
    resolved_jobs = resolve_jobs(args.jobs)
    if args.trace:
        from repro.obs import Tracer

        tracer = Tracer(run_id=manifest.run_id)
        if resolved_jobs > 1:
            print("[--trace forces serial execution; ignoring --jobs]")
            resolved_jobs = 1
    started = time.perf_counter()
    result = run(config, tracer=tracer, jobs=resolved_jobs)
    elapsed = time.perf_counter() - started
    print(render_experiment(result))
    manifest = manifest.with_execution(
        jobs=resolved_jobs,
        workers=resolved_jobs,
        mode="process" if resolved_jobs > 1 else "serial",
        wall_clock_seconds=elapsed,
    )
    result.attach_manifest(manifest)
    if tracer is not None:
        from repro.obs import write_trace

        path = write_trace(tracer, pathlib.Path(args.trace), manifest=manifest)
        print(f"[wrote {path}: {len(tracer)} trace records]")
    if args.json:
        _write_json(result_to_json(result, config), pathlib.Path(args.json))
        print(f"[wrote {args.json}]")
    if result.meta.get("passed"):
        print("all invariants held")
        return 0
    for label, reasons in result.meta.get("failures", {}).items():
        for reason in reasons:
            print(f"CHAOS FAIL [{label}]: {reason}", file=sys.stderr)
    return 1


def _cmd_stats(args: argparse.Namespace) -> int:
    """Seeded lookups against one scheme, metrics registry dumped flat."""
    from repro.cluster.cluster import Cluster
    from repro.cluster.client import Client, RetryPolicy
    from repro.cluster.faults import FaultPlan
    from repro.core.entry import make_entries
    from repro.obs import MetricsRegistry, format_counters, write_counters
    from repro.strategies.registry import create_strategy

    params = {
        name: int(value) for name, value in _parse_overrides(args.param).items()
    }
    cluster = Cluster(args.servers, seed=args.seed)
    strategy = create_strategy(args.strategy, cluster, **params)
    strategy.place(make_entries(args.entries))
    metrics = MetricsRegistry()
    if args.drop_p > 0.0:
        cluster.network.install_fault_plan(
            FaultPlan(seed=args.seed, drop_probability=args.drop_p)
        )
        strategy.client = Client(
            cluster, retry_policy=RetryPolicy(), metrics=metrics
        )
    else:
        strategy.client = Client(cluster, metrics=metrics)
    for _ in range(args.lookups):
        strategy.partial_lookup(args.target)
    cluster.network.stats.publish(metrics)
    injector = cluster.network.fault_injector
    if injector is not None:
        injector.stats.publish(metrics)
    snapshot = metrics.snapshot()
    print(render_table(
        ["metric", "value"],
        metrics.as_rows(),
        title=(
            f"{args.strategy} on n={args.servers}, h={args.entries}: "
            f"{args.lookups} lookups at t={args.target}, seed {args.seed}"
        ),
    ))
    if args.out:
        path = write_counters(snapshot, pathlib.Path(args.out))
        print(f"[wrote {path}: {len(snapshot)} counters]")
    return 0


def _cmd_trace_lookup(args: argparse.Namespace) -> int:
    """A few traced lookups against one scheme; spans printed, JSONL out."""
    from repro.cluster.cluster import Cluster
    from repro.cluster.client import Client
    from repro.core.entry import make_entries
    from repro.obs import Tracer, write_trace
    from repro.strategies.registry import create_strategy

    params = {
        name: int(value) for name, value in _parse_overrides(args.param).items()
    }
    cluster = Cluster(args.servers, seed=args.seed)
    strategy = create_strategy(args.strategy, cluster, **params)
    strategy.place(make_entries(args.entries))
    tracer = Tracer(run_id=f"trace-lookup-{args.strategy}-seed{args.seed}")
    cluster.install_tracer(tracer)
    for server_id in args.fail:
        cluster.fail(server_id)
    strategy.client = Client(cluster, tracer=tracer)
    for _ in range(args.lookups):
        strategy.partial_lookup(args.target)
    cluster.uninstall_tracer()
    rows = []
    for span in tracer.spans("lookup"):
        contacts = [
            r for r in tracer.children_of(span) if r.name == "contact"
        ]
        rows.append(
            {
                "span": span.span_id,
                "order": span.fields.get("order", "?"),
                "contacts": ",".join(
                    f"{c.fields['server']}"
                    + ("" if c.fields["outcome"] == "delivered" else "!")
                    for c in contacts
                ),
                "entries": span.fields.get("entries", 0),
                "messages": span.fields.get("messages", 0),
                "success": span.fields.get("success", False),
            }
        )
    print(render_table(
        ["span", "order", "contacts", "entries", "messages", "success"],
        rows,
        title=(
            f"{args.lookups} traced lookups: {args.strategy} on "
            f"n={args.servers}, t={args.target}, seed {args.seed} "
            "(contacts: server id, '!' = no answer)"
        ),
    ))
    if args.out:
        path = write_trace(tracer, pathlib.Path(args.out))
        print(f"[wrote {path}: {len(tracer)} trace records]")
    return 0


def _cmd_trace_generate(args: argparse.Namespace) -> int:
    import random

    from repro.io.traces import save_trace
    from repro.workload.generator import SteadyStateWorkload
    from repro.workload.lifetimes import ExponentialLifetime, ZipfLifetime

    mean_lifetime = args.arrival_gap * args.entries
    lifetime = (
        ZipfLifetime(mean_lifetime)
        if args.lifetime == "zipf"
        else ExponentialLifetime(mean_lifetime)
    )
    workload = SteadyStateWorkload(
        args.entries,
        arrival_gap=args.arrival_gap,
        lifetime=lifetime,
        rng=random.Random(args.seed),
    )
    trace = workload.generate(args.updates)
    path = save_trace(trace, pathlib.Path(args.out))
    print(
        f"wrote {path}: {len(trace.initial_entries)} initial entries, "
        f"{trace.update_count} updates ({args.lifetime} lifetimes, "
        f"seed {args.seed})"
    )
    return 0


def _cmd_trace_replay(args: argparse.Namespace) -> int:
    from repro.cluster.cluster import Cluster
    from repro.io.traces import load_trace
    from repro.simulation.replay import TraceReplayer
    from repro.strategies.registry import create_strategy

    trace = load_trace(pathlib.Path(args.trace))
    params = {
        name: int(value) for name, value in _parse_overrides(args.param).items()
    }
    cluster = Cluster(args.servers, seed=args.seed)
    strategy = create_strategy(args.strategy, cluster, **params)
    strategy.place(trace.initial_entries)
    cluster.reset_stats()
    replayer = TraceReplayer(strategy, monitor_target=args.monitor_target)
    stats = replayer.replay(trace.events)
    rows = [
        {"metric": "adds", "value": stats.adds},
        {"metric": "deletes", "value": stats.deletes},
        {"metric": "lookups", "value": stats.lookups},
        {"metric": "lookup_failure_rate", "value": round(stats.lookup_failure_rate, 4)},
        {"metric": "update_messages", "value": stats.update_messages},
        {"metric": "final_storage", "value": strategy.storage_cost()},
        {"metric": "final_coverage", "value": strategy.coverage()},
    ]
    if args.monitor_target is not None:
        rows.append(
            {
                "metric": f"pct_time_below_t={args.monitor_target}",
                "value": round(100 * stats.failure_time_fraction, 4),
            }
        )
    print(render_table(["metric", "value"], rows,
                       title=f"Replay of {args.trace} on {args.strategy}"))
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    """cProfile one experiment run; print the hottest functions."""
    import cProfile
    import io
    import pstats

    spec = get_spec(args.experiment)
    config = build_config(spec, _parse_overrides(args.set))
    profiler = cProfile.Profile()
    started = time.perf_counter()
    profiler.enable()
    result = spec.run(config, jobs=1)
    profiler.disable()
    elapsed = time.perf_counter() - started
    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.strip_dirs().sort_stats(args.sort).print_stats(args.top)
    print(
        f"[{spec.experiment_id}: {elapsed:.1f}s serial, "
        f"{len(result.rows)} rows; top {args.top} by {args.sort}]"
    )
    print(stream.getvalue(), end="")
    if args.out:
        stats.dump_stats(args.out)
        print(f"[wrote {args.out}]")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the tables and figures of 'Partial "
        "Lookup Services' (ICDCS 2003).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser("list", help="list experiments")
    list_parser.set_defaults(handler=_cmd_list)

    run_parser = subparsers.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment", choices=sorted(EXPERIMENTS))
    run_parser.add_argument(
        "--set",
        action="append",
        default=[],
        metavar="NAME=VALUE",
        help="override a config field (repeatable); e.g. --set runs=50",
    )
    run_parser.add_argument(
        "--plot", action="store_true", help="also render an ASCII figure"
    )
    run_parser.add_argument(
        "--json", metavar="PATH", help="write rows + config as JSON"
    )
    run_parser.add_argument(
        "--csv", metavar="PATH", help="write rows as CSV"
    )
    run_parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for seeded runs (default: $REPRO_JOBS or 1); "
        "results are bit-identical for any value",
    )
    run_parser.add_argument(
        "--profile", choices=sorted(PROFILES), default=None,
        help="config scale profile: 'paper' restores the paper's run "
        "counts, 'smoke' shrinks everything for CI; --set still wins",
    )
    run_parser.add_argument(
        "--estimator", choices=("mc", "exact", "auto"), default=None,
        help="probability/cost estimator where the experiment supports "
        "one: 'mc' is the paper's Monte-Carlo method, 'exact' the "
        "closed form (deterministic schemes only), 'auto' exact where "
        "available with MC fallback",
    )
    run_parser.set_defaults(handler=_cmd_run)

    all_parser = subparsers.add_parser(
        "run-all", help="run every experiment in paper order"
    )
    all_parser.add_argument(
        "--set", action="append", default=[], metavar="NAME=VALUE",
        help="override a config field wherever it exists (repeatable)",
    )
    all_parser.add_argument("--plot", action="store_true")
    all_parser.add_argument(
        "--out", metavar="DIR", help="write one JSON per experiment"
    )
    all_parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for seeded runs (default: $REPRO_JOBS or 1)",
    )
    all_parser.add_argument(
        "--profile", choices=sorted(PROFILES), default=None,
        help="config scale profile applied to every experiment",
    )
    all_parser.add_argument(
        "--estimator", choices=("mc", "exact", "auto"), default=None,
        help="estimator override, applied wherever the config has the "
        "field ('auto' is the safe fast choice; 'exact' raises on "
        "stochastic schemes)",
    )
    all_parser.set_defaults(handler=_cmd_run_all)

    prof_parser = subparsers.add_parser(
        "profile",
        help="cProfile one experiment (serial) and print the hottest "
        "functions",
    )
    prof_parser.add_argument("experiment", choices=sorted(EXPERIMENTS))
    prof_parser.add_argument(
        "--set", action="append", default=[], metavar="NAME=VALUE",
        help="override a config field (repeatable)",
    )
    prof_parser.add_argument(
        "--top", type=int, default=25, metavar="N",
        help="rows of profile output to print (default 25)",
    )
    prof_parser.add_argument(
        "--sort", choices=("cumulative", "tottime", "calls"),
        default="cumulative", help="pstats sort key (default cumulative)",
    )
    prof_parser.add_argument(
        "--out", metavar="PATH",
        help="also dump the raw pstats profile for snakeviz and friends",
    )
    prof_parser.set_defaults(handler=_cmd_profile)

    validate_parser = subparsers.add_parser(
        "validate",
        help="check measured behaviour against every closed form",
    )
    validate_parser.set_defaults(handler=_cmd_validate)

    report_parser = subparsers.add_parser(
        "report", help="write a markdown report of all experiments"
    )
    report_parser.add_argument("--out", required=True, metavar="PATH")
    report_parser.add_argument(
        "--scale", choices=("quick", "default", "thorough"), default="quick"
    )
    report_parser.add_argument("--plot", action="store_true")
    report_parser.add_argument(
        "--only", action="append", metavar="ID",
        help="restrict to these experiment ids (repeatable)",
    )
    report_parser.set_defaults(handler=_cmd_report)

    plan_parser = subparsers.add_parser(
        "plan", help="analytic capacity plan for a deployment"
    )
    plan_parser.add_argument("--entries", type=int, required=True)
    plan_parser.add_argument("--servers", type=int, required=True)
    plan_parser.add_argument("--budget", type=int, required=True)
    plan_parser.add_argument("--target", type=int, required=True)
    plan_parser.add_argument("--update-rate", type=float, default=0.0)
    plan_parser.set_defaults(handler=_cmd_plan)

    chaos_parser = subparsers.add_parser(
        "chaos-soak",
        help="soak every scheme under a seeded fault plan; exit 1 on "
        "any invariant violation",
    )
    chaos_parser.add_argument("--seed", type=int, default=0)
    chaos_parser.add_argument(
        "--events", type=int, default=2000,
        help="update events in the soak trace",
    )
    chaos_parser.add_argument(
        "--json", metavar="PATH", help="write rows + config as JSON"
    )
    chaos_parser.add_argument(
        "--trace", metavar="PATH",
        help="record a structured JSONL trace of the soak (lookup "
        "spans, update deliveries, repair sweeps) to PATH",
    )
    chaos_parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="soak schemes on worker processes (ignored with --trace)",
    )
    chaos_parser.set_defaults(handler=_cmd_chaos_soak)

    stats_parser = subparsers.add_parser(
        "stats",
        help="run a seeded workload against one scheme and dump the "
        "metrics registry as flat counters",
    )
    stats_parser.add_argument(
        "--strategy", default="round_robin",
        help="strategy name from the registry",
    )
    stats_parser.add_argument(
        "--param", action="append", default=[], metavar="NAME=VALUE",
        help="strategy constructor parameter (repeatable), e.g. y=2",
    )
    stats_parser.add_argument("--servers", type=int, default=10)
    stats_parser.add_argument("--entries", type=int, default=40)
    stats_parser.add_argument("--lookups", type=int, default=100)
    stats_parser.add_argument("--target", type=int, default=5)
    stats_parser.add_argument("--seed", type=int, default=0)
    stats_parser.add_argument(
        "--drop-p", type=float, default=0.0,
        help="install a fault plan with this drop probability",
    )
    stats_parser.add_argument(
        "--out", metavar="PATH",
        help="also write the counters dump ('name value' lines) to PATH",
    )
    stats_parser.set_defaults(handler=_cmd_stats)

    trace_parser = subparsers.add_parser(
        "trace", help="generate / replay workload trace files"
    )
    trace_sub = trace_parser.add_subparsers(dest="trace_command", required=True)

    generate_parser = trace_sub.add_parser(
        "generate", help="write a steady-state update trace (JSONL)"
    )
    generate_parser.add_argument("--entries", type=int, default=100)
    generate_parser.add_argument("--updates", type=int, default=10000)
    generate_parser.add_argument("--arrival-gap", type=float, default=10.0)
    generate_parser.add_argument(
        "--lifetime", choices=("exp", "zipf"), default="exp"
    )
    generate_parser.add_argument("--seed", type=int, default=0)
    generate_parser.add_argument("--out", required=True, metavar="PATH")
    generate_parser.set_defaults(handler=_cmd_trace_generate)

    replay_parser = trace_sub.add_parser(
        "replay", help="replay a trace file against a strategy"
    )
    replay_parser.add_argument("trace", metavar="PATH")
    replay_parser.add_argument(
        "--strategy", default="round_robin",
        help="strategy name from the registry",
    )
    replay_parser.add_argument(
        "--param", action="append", default=[], metavar="NAME=VALUE",
        help="strategy constructor parameter (repeatable), e.g. y=2",
    )
    replay_parser.add_argument("--servers", type=int, default=10)
    replay_parser.add_argument("--seed", type=int, default=0)
    replay_parser.add_argument(
        "--monitor-target", type=int, default=None,
        help="track %% of time coverage falls below this target",
    )
    replay_parser.set_defaults(handler=_cmd_trace_replay)

    lookup_parser = trace_sub.add_parser(
        "lookup",
        help="run traced lookups against one scheme and print the spans",
    )
    lookup_parser.add_argument(
        "--strategy", default="round_robin",
        help="strategy name from the registry",
    )
    lookup_parser.add_argument(
        "--param", action="append", default=[], metavar="NAME=VALUE",
        help="strategy constructor parameter (repeatable), e.g. y=2",
    )
    lookup_parser.add_argument("--servers", type=int, default=10)
    lookup_parser.add_argument("--entries", type=int, default=40)
    lookup_parser.add_argument("--lookups", type=int, default=5)
    lookup_parser.add_argument("--target", type=int, default=5)
    lookup_parser.add_argument("--seed", type=int, default=0)
    lookup_parser.add_argument(
        "--fail", action="append", default=[], type=int, metavar="SERVER",
        help="fail this server before the lookups (repeatable)",
    )
    lookup_parser.add_argument(
        "--out", metavar="PATH", help="also write the JSONL trace to PATH"
    )
    lookup_parser.set_defaults(handler=_cmd_trace_lookup)

    # The network service face lives in repro.net; it registers the
    # ``serve`` and ``call`` subcommands on this parser.
    from repro.net.cli import add_call_parser, add_serve_parser

    add_serve_parser(subparsers)
    add_call_parser(subparsers)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via -m repro
    sys.exit(main())
