"""Ablation: RandomServer's reservoir add vs naive full re-sampling.

Section 5.3 maintains each server's uniformly random x-subset under
adds with Vitter's reservoir rule: one single-entry broadcast and
constant local work, with the subset staying exactly uniform.  The
naive alternative re-runs the whole random placement on every add —
the same number of *messages* (one request plus a broadcast) but each
broadcast carries the entire h-entry set instead of one entry.  This
bench verifies (a) the reservoir keeps per-entry inclusion
probabilities uniform (the statistical property the rule exists to
preserve) and (b) the payload saving.
"""

from _bench_utils import render_and_print

from repro.cluster.cluster import Cluster
from repro.core.entry import Entry, make_entries
from repro.experiments.runner import ExperimentResult
from repro.strategies.random_server import RandomServerX


def _reservoir_inclusion_bias(runs: int = 400) -> float:
    """Max deviation of per-entry inclusion probability from x/h.

    Place 10 entries, add 10 more via the reservoir path, and check
    every one of the 20 ends up in a server's subset with probability
    close to x/h = 5/20.
    """
    hits = {f"v{i}": 0 for i in range(1, 11)}
    hits.update({f"a{i}": 0 for i in range(10)})
    for seed in range(runs):
        strategy = RandomServerX(Cluster(1, seed=seed), x=5)
        strategy.place(make_entries(10))
        for i in range(10):
            strategy.add(Entry(f"a{i}"))
        for entry in strategy.cluster.server(0).store("k"):
            hits[entry.entry_id] += 1
    ideal = 5 / 20
    return max(abs(count / runs - ideal) for count in hits.values())


def _cost_per_add(naive: bool, adds: int = 50, h: int = 100, n: int = 10):
    """(messages, payload entries shipped) per add for either variant.

    Both counts come straight from the network's accounting: the
    naive variant re-places the whole entry set, so every broadcast
    ships all ``h+`` entries; the reservoir ships one.
    """
    cluster = Cluster(n, seed=3 if naive else 4)
    strategy = RandomServerX(cluster, x=20)
    entries = list(make_entries(h))
    strategy.place(entries)
    stats = cluster.network.stats
    before = stats.snapshot()
    for i in range(adds):
        entry = Entry(f"n{i}")
        if naive:
            entries.append(entry)
            strategy.place(entries)
        else:
            strategy.add(entry)
    delta = stats.diff(before)
    return delta.update_messages / adds, delta.payload_entries / adds


def _run_ablation() -> ExperimentResult:
    result = ExperimentResult(
        name="Ablation: RandomServer reservoir add",
        headers=["variant", "msgs_per_add", "payload_entries_per_add",
                 "max_inclusion_bias"],
    )
    reservoir_msgs, reservoir_payload = _cost_per_add(naive=False)
    replace_msgs, replace_payload = _cost_per_add(naive=True)
    result.rows.append(
        {
            "variant": "reservoir (paper §5.3)",
            "msgs_per_add": round(reservoir_msgs, 1),
            "payload_entries_per_add": round(reservoir_payload, 1),
            "max_inclusion_bias": round(_reservoir_inclusion_bias(), 3),
        }
    )
    result.rows.append(
        {
            "variant": "naive re-place",
            "msgs_per_add": round(replace_msgs, 1),
            "payload_entries_per_add": round(replace_payload, 1),
            "max_inclusion_bias": 0.0,  # uniform by construction
        }
    )
    return result


def test_bench_ablation_reservoir(benchmark):
    result = benchmark.pedantic(_run_ablation, rounds=1, iterations=1)
    render_and_print(result)
    reservoir = result.row_for(variant="reservoir (paper §5.3)")
    replace = result.row_for(variant="naive re-place")
    # Uniformity preserved within sampling noise (400 runs).
    assert reservoir["max_inclusion_bias"] < 0.08
    # Same message count (one request + broadcast either way)…
    assert reservoir["msgs_per_add"] == replace["msgs_per_add"]
    # …but the naive variant ships >100x the payload per add.
    assert replace["payload_entries_per_add"] > (
        100 * reservoir["payload_entries_per_add"]
    )
