"""Unit tests for the latency-rounds metric (§3.5's predictability)."""

import pytest

from repro.cluster.cluster import Cluster
from repro.core.entry import make_entries
from repro.core.exceptions import InvalidParameterError
from repro.metrics.latency import estimate_lookup_latency
from repro.strategies.fixed import FixedX
from repro.strategies.full_replication import FullReplication
from repro.strategies.hashing import HashY
from repro.strategies.random_server import RandomServerX
from repro.strategies.round_robin import RoundRobinY


def _placed(strategy):
    strategy.place(make_entries(100))
    return strategy


class TestPredictability:
    def test_round_robin_is_one_round_despite_multi_contact(self):
        strategy = _placed(RoundRobinY(Cluster(10, seed=1), y=2))
        estimate = estimate_lookup_latency(strategy, target=40, lookups=100)
        assert estimate.predictable
        assert estimate.mean_contacts == 2.0  # two servers...
        assert estimate.mean_rounds == 1.0    # ...contacted in parallel

    def test_hash_pays_a_round_per_contact(self):
        strategy = _placed(HashY(Cluster(10, seed=2), y=2))
        estimate = estimate_lookup_latency(strategy, target=40, lookups=100)
        assert not estimate.predictable
        assert estimate.mean_rounds == estimate.mean_contacts
        assert estimate.mean_rounds > 1.5

    def test_random_server_adaptive(self):
        strategy = _placed(RandomServerX(Cluster(10, seed=3), x=20))
        estimate = estimate_lookup_latency(strategy, target=40, lookups=100)
        assert not estimate.predictable
        assert estimate.mean_rounds >= 2.0

    def test_single_contact_schemes_one_round(self):
        for strategy in (
            _placed(FullReplication(Cluster(10, seed=4))),
            _placed(FixedX(Cluster(10, seed=5), x=20)),
        ):
            estimate = estimate_lookup_latency(strategy, target=10, lookups=50)
            assert estimate.mean_rounds == 1.0

    def test_round_robin_failures_cost_an_extra_round(self):
        strategy = _placed(RoundRobinY(Cluster(10, seed=6), y=2))
        strategy.cluster.fail(0)
        strategy.cluster.fail(5)
        estimate = estimate_lookup_latency(strategy, target=40, lookups=200)
        # Some precomputed fan-outs hit a failed server and need a
        # second, adaptive round.
        assert 1.0 < estimate.mean_rounds < 2.0

    def test_latency_advantage_round_vs_hash_at_large_targets(self):
        """§3.5's observation, quantified: same contacts, fewer rounds."""
        cluster = Cluster(10, seed=7)
        round_robin = _placed(RoundRobinY(cluster, y=2, key="rr"))
        hashed = _placed(HashY(cluster, y=2, key="h"))
        rr = estimate_lookup_latency(round_robin, target=60, lookups=100)
        hy = estimate_lookup_latency(hashed, target=60, lookups=100)
        assert rr.mean_rounds == 1.0
        assert hy.mean_rounds >= 3.0

    def test_validation(self):
        strategy = _placed(FullReplication(Cluster(4, seed=8)))
        with pytest.raises(InvalidParameterError):
            estimate_lookup_latency(strategy, 5, lookups=0)
