"""End-to-end asyncio service tests: real sockets on an ephemeral port."""

import asyncio
import random

import pytest

from repro.cluster.client import RetryPolicy
from repro.net.client import AsyncLookupClient, ServiceError
from repro.net.codec import encode_message
from repro.net.service import DEFAULT_SCHEMES, LookupService, ServiceConfig
from repro.cluster.messages import AddRequest, LookupRequest
from repro.core.entry import Entry


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=30))


CONFIG = ServiceConfig(server_count=12, entry_count=30, seed=7)


async def with_service(fn, config=CONFIG):
    service = LookupService(config)
    host, port = await service.start(port=0)
    try:
        return await fn(service, host, port)
    finally:
        await service.stop()


class TestEnvelopeDispatch:
    # handle_envelope is pure dispatch; no sockets needed.

    def test_ping_and_info(self):
        service = LookupService(CONFIG)
        assert service.handle_envelope({"op": "ping"})["ok"]
        info = service.handle_envelope({"op": "info"})["value"]
        assert info["servers"] == 12
        assert set(info["schemes"]) == set(DEFAULT_SCHEMES)
        assert info["schemes"]["round_robin"]["profile"]["order"] == {"stride": 2}
        assert info["schemes"]["fixed"]["profile"]["max_servers"] == 1

    def test_unknown_op_is_bad_request(self):
        service = LookupService(CONFIG)
        reply = service.handle_envelope({"op": "launch"})
        assert not reply["ok"]
        assert reply["error"] == "bad-request"

    def test_send_routes_through_network_accounting(self):
        service = LookupService(CONFIG)
        before = service.cluster.network.stats.total
        reply = service.handle_envelope(
            {
                "op": "send",
                "server": 0,
                "key": "hash",
                "message": encode_message(LookupRequest(3)),
            }
        )
        assert reply["ok"]
        assert service.cluster.network.stats.total == before + 1

    def test_send_to_failed_server_is_unavailable(self):
        service = LookupService(CONFIG)
        service.cluster.fail(4)
        reply = service.handle_envelope(
            {
                "op": "send",
                "server": 4,
                "key": "hash",
                "message": encode_message(LookupRequest(3)),
            }
        )
        assert not reply["ok"]
        assert reply["error"] == "unavailable"

    def test_send_validation(self):
        service = LookupService(CONFIG)
        bad_server = service.handle_envelope(
            {"op": "send", "server": 99, "key": "hash", "message": {}}
        )
        assert bad_server["error"] == "bad-request"
        bad_key = service.handle_envelope(
            {
                "op": "send",
                "server": 0,
                "key": "nope",
                "message": encode_message(LookupRequest(1)),
            }
        )
        assert bad_key["error"] == "bad-request"

    def test_update_via_send_is_visible_to_lookups(self):
        service = LookupService(CONFIG)
        reply = service.handle_envelope(
            {
                "op": "send",
                "server": 1,
                "key": "full_replication",
                "message": encode_message(AddRequest(Entry("fresh"))),
            }
        )
        assert reply["ok"]
        verify = service.handle_envelope(
            {"op": "verify", "key": "full_replication"}
        )["value"]
        assert verify["coverage"] == CONFIG.entry_count + 1


class TestOverSockets:
    def test_all_schemes_complete_partial_lookups(self):
        async def scenario(service, host, port):
            outcomes = {}
            async with AsyncLookupClient(host, port, rng=random.Random(3)) as client:
                assert await client.ping()
                for scheme in sorted(DEFAULT_SCHEMES):
                    result = await client.lookup(scheme, 8)
                    outcomes[scheme] = result
            return outcomes

        outcomes = run(with_service(scenario))
        for scheme, result in outcomes.items():
            assert result.success, scheme
            assert len(result.entries) == 8
            ids = [e.entry_id for e in result.entries]
            assert len(set(ids)) == 8

    def test_max_servers_profile_respected_over_wire(self):
        async def scenario(service, host, port):
            async with AsyncLookupClient(host, port, rng=random.Random(1)) as client:
                return await client.lookup("full_replication", 8)

        result = run(with_service(scenario))
        assert result.messages == 1
        assert len(result.servers_contacted) == 1

    def test_failed_server_surfaces_as_failed_contact(self):
        async def scenario(service, host, port):
            service.cluster.fail(2)
            service.cluster.fail(5)
            async with AsyncLookupClient(host, port, rng=random.Random(2)) as client:
                return await client.lookup("hash", 25)

        result = run(with_service(scenario))
        assert result.success
        assert set(result.failed_contacts) <= {2, 5}
        assert not {2, 5} & set(result.servers_contacted)

    def test_retry_policy_reruns_failed_contacts(self):
        async def scenario(service, host, port):
            # Fail everything but two servers so the first pass comes
            # up short, then recover before the retry pass.
            for sid in range(2, service.cluster.size):
                service.cluster.fail(sid)
            policy = RetryPolicy(
                max_attempts=2, base_backoff=0.05, jitter=0.0, backoff_budget=5.0
            )
            client = AsyncLookupClient(
                host, port, rng=random.Random(5), retry_policy=policy
            )
            async with client:
                info = await client.info()
                task = asyncio.ensure_future(client.lookup("hash", 25))
                await asyncio.sleep(0.02)
                for sid in range(2, service.cluster.size):
                    service.cluster.recover(sid)
                return await task

        result = run(with_service(scenario))
        assert result.retries == 1
        assert result.backoff > 0

    def test_unknown_scheme_raises(self):
        async def scenario(service, host, port):
            async with AsyncLookupClient(host, port) as client:
                with pytest.raises(ServiceError, match="does not host"):
                    await client.lookup("zigzag", 5)

        run(with_service(scenario))

    def test_verify_reports_invariants(self):
        async def scenario(service, host, port):
            async with AsyncLookupClient(host, port) as client:
                return await client.verify("round_robin")

        verify = run(with_service(scenario))
        assert verify["coverage"] == CONFIG.entry_count
        assert verify["storage_cost"] == 2 * CONFIG.entry_count
        assert verify["operational"] == CONFIG.server_count

    def test_many_clients_interleave(self):
        async def scenario(service, host, port):
            async def one(seed):
                async with AsyncLookupClient(
                    host, port, rng=random.Random(seed)
                ) as client:
                    return await client.lookup("round_robin", 8)

            return await asyncio.gather(*(one(seed) for seed in range(8)))

        results = run(with_service(scenario))
        assert all(r.success for r in results)

    def test_request_timeout_becomes_dropped_contact(self):
        async def scenario(service, host, port):
            # A server that never replies: swap the envelope handler
            # for one that stalls longer than the client timeout.
            real = service.handle_envelope
            stall = {"first": True}

            async def handler(reader, writer):
                from repro.net.codec import read_frame, write_frame

                while True:
                    envelope = await read_frame(reader)
                    if envelope is None:
                        break
                    if envelope.get("op") == "send" and stall.pop("first", False):
                        await asyncio.sleep(10)  # > client timeout
                    await write_frame(writer, real(envelope))

            service.handle_connection = handler  # monkeypatch the instance
            await service.stop()
            server = await asyncio.start_server(handler, host="127.0.0.1", port=0)
            sock_host, sock_port = server.sockets[0].getsockname()[:2]
            try:
                client = AsyncLookupClient(
                    sock_host,
                    sock_port,
                    rng=random.Random(4),
                    timeout=0.2,
                    retry_policy=RetryPolicy(
                        max_attempts=2, base_backoff=0.01, jitter=0.0
                    ),
                )
                async with client:
                    result = await client.lookup("hash", 5)
            finally:
                server.close()
                await server.wait_closed()
            return result

        result = run(with_service(scenario))
        # The stalled contact was reported dropped and retried on a
        # fresh connection; the lookup still completed.
        assert result.success
        assert result.retries <= 1

    def test_clean_stop_with_live_connection(self):
        async def scenario(service, host, port):
            client = AsyncLookupClient(host, port)
            await client.connect()
            assert await client.ping()
            await service.stop()
            await client.close()
            return True

        async def runner():
            service = LookupService(CONFIG)
            host, port = await service.start(port=0)
            return await scenario(service, host, port)

        assert run(runner())
