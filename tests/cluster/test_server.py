"""Unit tests for Server and EntryStore."""

import random

import pytest

from repro.cluster.server import EntryStore, Server
from repro.core.entry import Entry, make_entries


class TestEntryStore:
    def test_add_returns_true_on_new(self):
        store = EntryStore()
        assert store.add(Entry("a"))

    def test_add_duplicate_returns_false(self):
        store = EntryStore([Entry("a")])
        assert not store.add(Entry("a"))
        assert len(store) == 1

    def test_discard_present(self):
        store = EntryStore(make_entries(3))
        assert store.discard(Entry("v2"))
        assert Entry("v2") not in store
        assert len(store) == 2

    def test_discard_absent_returns_false(self):
        store = EntryStore()
        assert not store.discard(Entry("x"))

    def test_membership(self):
        store = EntryStore([Entry("a")])
        assert Entry("a") in store
        assert Entry("b") not in store

    def test_iteration_preserves_insertion_order(self):
        entries = make_entries(5)
        store = EntryStore(entries)
        assert list(store) == entries

    def test_sample_size(self):
        store = EntryStore(make_entries(10))
        sampled = store.sample(4, random.Random(1))
        assert len(sampled) == 4
        assert len(set(sampled)) == 4

    def test_sample_more_than_stored_returns_all(self):
        store = EntryStore(make_entries(3))
        assert sorted(store.sample(10, random.Random(1))) == make_entries(3)

    def test_sample_zero_means_everything(self):
        store = EntryStore(make_entries(3))
        assert sorted(store.sample(0, random.Random(1))) == make_entries(3)

    def test_sample_uniformity(self):
        store = EntryStore(make_entries(4))
        rng = random.Random(9)
        counts = {e.entry_id: 0 for e in make_entries(4)}
        trials = 8000
        for _ in range(trials):
            for entry in store.sample(1, rng):
                counts[entry.entry_id] += 1
        for count in counts.values():
            assert abs(count / trials - 0.25) < 0.03

    def test_pop_random_removes(self):
        store = EntryStore(make_entries(5))
        popped = store.pop_random(random.Random(1))
        assert popped not in store
        assert len(store) == 4

    def test_pop_random_empty_raises(self):
        with pytest.raises(KeyError):
            EntryStore().pop_random(random.Random(1))

    def test_replace_swaps_in_place(self):
        store = EntryStore(make_entries(3))
        assert store.replace(Entry("v2"), Entry("new"))
        assert list(store)[1] == Entry("new")
        assert Entry("v2") not in store

    def test_replace_missing_old_fails(self):
        store = EntryStore(make_entries(2))
        assert not store.replace(Entry("zz"), Entry("new"))

    def test_replace_existing_new_fails(self):
        store = EntryStore(make_entries(2))
        assert not store.replace(Entry("v1"), Entry("v2"))

    def test_clear(self):
        store = EntryStore(make_entries(3))
        store.clear()
        assert len(store) == 0
        assert store.add(Entry("v1"))  # ids cleared too


class TestServer:
    def test_stores_are_per_key(self):
        server = Server(0)
        server.store("a").add(Entry("x"))
        assert server.stored_entry_count("a") == 1
        assert server.stored_entry_count("b") == 0

    def test_state_is_per_key(self):
        server = Server(0)
        server.state("a")["head"] = 5
        assert "head" not in server.state("b")

    def test_fail_and_recover_preserve_state(self):
        server = Server(0)
        server.store("k").add(Entry("x"))
        server.fail()
        assert not server.alive
        server.recover()
        assert server.alive
        assert Entry("x") in server.store("k")

    def test_wipe_erases_everything(self):
        server = Server(0)
        server.store("k").add(Entry("x"))
        server.state("k")["h"] = 3
        server.wipe()
        assert server.stored_entry_count("k") == 0
        assert server.state("k") == {}

    def test_receive_without_logic_raises(self):
        from repro.cluster.messages import StoreMessage

        server = Server(0)
        with pytest.raises(RuntimeError, match="no logic"):
            server.receive("k", StoreMessage(Entry("x")), network=None)

    def test_keys_listing(self):
        server = Server(0)
        server.store("a")
        server.store("b")
        assert server.keys() == ["a", "b"]
