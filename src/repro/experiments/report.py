"""Fixed-width text rendering of experiment results.

The benchmarks and examples print the same rows/series the paper's
tables and figures report; this module renders them legibly in a
terminal without any plotting dependency.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Dict[str, Any]],
    title: Optional[str] = None,
) -> str:
    """Render dict-rows as an aligned fixed-width table.

    >>> print(render_table(["a", "b"], [{"a": 1, "b": 2.5}]))
    a  b
    -  ---
    1  2.5
    """
    cells = [[_format_cell(row.get(h, "")) for h in headers] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip())
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
    return "\n".join(lines)


def render_series(
    x_header: str,
    series: Dict[str, Dict[Any, float]],
    title: Optional[str] = None,
) -> str:
    """Render figure-style series as a table with one column per curve.

    ``series`` maps curve name → {x value → y value}; x values are the
    union across curves, sorted.
    """
    xs = sorted({x for curve in series.values() for x in curve})
    headers = [x_header] + list(series)
    rows = []
    for x in xs:
        row: Dict[str, Any] = {x_header: x}
        for name, curve in series.items():
            row[name] = curve.get(x, "")
        rows.append(row)
    return render_table(headers, rows, title=title)


def render_experiment(result) -> str:
    """Render an :class:`~repro.experiments.runner.ExperimentResult`."""
    meta = ", ".join(f"{k}={v}" for k, v in result.meta.items())
    title = result.name if not meta else f"{result.name} ({meta})"
    return render_table(result.headers, result.rows, title=title)
