"""Replay a pre-generated event trace against a placement strategy.

The paper's dynamic methodology (§6.1): "We create update events with
timestamps in advance and replay these events in the simulation."  The
:class:`TraceReplayer` wires a trace into the engine, drives the
strategy, and gathers the aggregate statistics the dynamic experiments
report — update message totals, lookup failure time, and time-weighted
store occupancy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional

from repro.core.exceptions import NoOperationalServerError
from repro.core.result import OperationLog
from repro.simulation.engine import SimulationEngine
from repro.simulation.events import (
    AddEvent,
    DeleteEvent,
    Event,
    FailureEvent,
    LookupEvent,
    ProbeEvent,
    RecoveryEvent,
)


@dataclass
class TraceStats:
    """Aggregates collected while replaying a trace."""

    adds: int = 0
    deletes: int = 0
    lookups: int = 0
    failed_lookups: int = 0
    update_messages: int = 0
    #: Updates the service refused because no server could sequence
    #: them (e.g. every Round-Robin counter replica down).  Real
    #: behaviour under heavy failures, so it is counted, not raised.
    refused_updates: int = 0
    #: Virtual time during which the strategy could NOT satisfy the
    #: monitored target answer size (Figure 12's "failure time").
    failure_time: float = 0.0
    #: Total virtual time observed.
    observed_time: float = 0.0

    @property
    def lookup_failure_rate(self) -> float:
        if not self.lookups:
            return 0.0
        return self.failed_lookups / self.lookups

    @property
    def failure_time_fraction(self) -> float:
        """Fraction of virtual time in the failed state (Figure 12)."""
        if self.observed_time <= 0:
            return 0.0
        return self.failure_time / self.observed_time


class TraceReplayer:
    """Drives a strategy through a timestamped update/lookup trace.

    Parameters
    ----------
    strategy:
        Any :class:`~repro.strategies.base.PlacementStrategy`.
    monitor_target:
        If set, the replayer tracks — continuously, between events —
        whether a lookup for this target answer size *would* fail
        (i.e. the coverage on operational servers is below the
        target), accumulating the paper's "percentage of execution
        time when a lookup failed" (Figure 12).  For the uniform-store
        strategies (Fixed-x, full replication) coverage equals every
        server's store size, so this is exactly the per-lookup failure
        condition.
    """

    def __init__(self, strategy, monitor_target: Optional[int] = None) -> None:
        self.strategy = strategy
        self.engine = SimulationEngine()
        self.stats = TraceStats()
        self.log = OperationLog()
        self._monitor_target = monitor_target
        self._last_observation_time = 0.0
        self._in_failure_state = False
        self.engine.on(AddEvent, self._handle_add)
        self.engine.on(DeleteEvent, self._handle_delete)
        self.engine.on(LookupEvent, self._handle_lookup)
        self.engine.on(FailureEvent, self._handle_failure)
        self.engine.on(RecoveryEvent, self._handle_recovery)
        self.engine.on(ProbeEvent, self._handle_probe)

    # -- event handlers ---------------------------------------------------------

    def _advance_failure_clock(self, now: float) -> None:
        """Charge the elapsed interval to the current failure state."""
        if self._monitor_target is None:
            return
        elapsed = now - self._last_observation_time
        if elapsed > 0:
            self.stats.observed_time += elapsed
            if self._in_failure_state:
                self.stats.failure_time += elapsed
        self._last_observation_time = now
        self._in_failure_state = (
            self.strategy.coverage() < self._monitor_target
        )

    def _handle_add(self, event: AddEvent) -> None:
        self._advance_failure_clock(event.time)
        try:
            result = self.strategy.add(event.entry)
        except NoOperationalServerError:
            self.stats.refused_updates += 1
        else:
            self.log.record_update(result)
            self.stats.update_messages += result.messages
        self.stats.adds += 1
        self._advance_failure_clock(event.time)

    def _handle_delete(self, event: DeleteEvent) -> None:
        self._advance_failure_clock(event.time)
        try:
            result = self.strategy.delete(event.entry)
        except NoOperationalServerError:
            self.stats.refused_updates += 1
        else:
            self.log.record_update(result)
            self.stats.update_messages += result.messages
        self.stats.deletes += 1
        self._advance_failure_clock(event.time)

    def _handle_lookup(self, event: LookupEvent) -> None:
        self._advance_failure_clock(event.time)
        result = self.strategy.partial_lookup(event.target)
        self.log.record_lookup(result)
        self.stats.lookups += 1
        if not result.success:
            self.stats.failed_lookups += 1

    def _handle_failure(self, event: FailureEvent) -> None:
        self._advance_failure_clock(event.time)
        self.strategy.cluster.fail(event.server_id)
        self._advance_failure_clock(event.time)

    def _handle_recovery(self, event: RecoveryEvent) -> None:
        self._advance_failure_clock(event.time)
        self.strategy.cluster.recover(event.server_id)
        self._advance_failure_clock(event.time)

    def _handle_probe(self, event: ProbeEvent) -> None:
        self._advance_failure_clock(event.time)
        if event.probe is not None:
            event.probe(event.time, self.strategy)

    # -- driving -------------------------------------------------------------------

    def replay(
        self,
        events: Iterable[Event],
        until: Optional[float] = None,
    ) -> TraceStats:
        """Schedule ``events`` and run them all; return the statistics."""
        self.engine.schedule_all(events)
        self.engine.run(until=until)
        self._advance_failure_clock(self.engine.now)
        return self.stats
