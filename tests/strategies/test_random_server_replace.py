"""Tests for RandomServer-x's §5.3 active-replacement delete mode."""

import pytest

from repro.cluster.cluster import Cluster
from repro.core.entry import Entry, make_entries
from repro.core.exceptions import InvalidParameterError
from repro.strategies.random_server import RandomServerX


@pytest.fixture
def strategy():
    s = RandomServerX(Cluster(10, seed=31), x=20, delete_mode="replace")
    s.place(make_entries(100))
    return s


class TestReplacementDeletes:
    def test_stores_refill_after_delete(self, strategy):
        strategy.delete(Entry("v1"))
        # Every server that held v1 fetched a substitute; all stores
        # are back at x (replacements exist while h > x).
        assert strategy.cluster.store_sizes("k") == [20] * 10

    def test_deleted_entry_gone(self, strategy):
        strategy.delete(Entry("v1"))
        assert Entry("v1") not in strategy.lookup_all()

    def test_replacement_is_a_live_entry(self, strategy):
        placed = set(make_entries(100))
        strategy.delete(Entry("v1"))
        for entries in strategy.placement().values():
            assert entries <= placed - {Entry("v1")}

    def test_no_duplicates_introduced(self, strategy):
        for victim in make_entries(10):
            strategy.delete(victim)
        for server in strategy.cluster.servers:
            listed = [e.entry_id for e in server.store("k")]
            assert len(listed) == len(set(listed))

    def test_delete_costs_more_than_cushion(self):
        cluster = Cluster(10, seed=32)
        cushion = RandomServerX(cluster, x=20, key="c")
        replace = RandomServerX(cluster, x=20, key="r", delete_mode="replace")
        entries = make_entries(100)
        cushion.place(entries)
        replace.place(entries)
        cushion_cost = cushion.delete(Entry("v1")).messages
        replace_cost = replace.delete(Entry("v1")).messages
        assert replace_cost > cushion_cost

    def test_replacement_exhausts_gracefully(self):
        # With h < x nothing can be fetched: deletes just shrink.
        strategy = RandomServerX(Cluster(4, seed=33), x=10, delete_mode="replace")
        strategy.place(make_entries(5))
        for victim in make_entries(5):
            strategy.delete(victim)
        assert strategy.coverage() == 0
        assert strategy.storage_cost() == 0

    def test_cushion_mode_does_not_refill(self):
        strategy = RandomServerX(Cluster(10, seed=34), x=20)
        strategy.place(make_entries(100))
        strategy.delete(Entry("v1"))
        sizes = strategy.cluster.store_sizes("k")
        assert sum(sizes) < 200  # holders shrank, nobody refetched

    def test_invalid_mode_rejected(self):
        with pytest.raises(InvalidParameterError):
            RandomServerX(Cluster(4, seed=1), x=3, delete_mode="magic")

    def test_params_reports_mode(self, strategy):
        assert strategy.params()["delete_mode"] == "replace"
