"""A registry of named counters, gauges, and histograms.

The cluster keeps its ledgers in purpose-built dataclasses
(:class:`~repro.cluster.network.MessageStats`,
:class:`~repro.cluster.faults.FaultStats`, per-lookup
:class:`~repro.core.result.LookupResult` fields).  Those stay the
source of truth — the registry is the *export* surface: producers
publish their current totals into named instruments
(``MessageStats.publish``, ``FaultStats.publish``, the retrying
client's per-lookup counters), and :meth:`MetricsRegistry.snapshot`
flattens everything into one point-in-time ``{name: value}`` map for
the flat-counters dump and the ``stats`` CLI.

Instruments are deliberately minimal and allocation-light:

- :class:`Counter` — monotonic count; supports both incremental
  ``inc`` (live producers like the client) and absolute ``set_to``
  (ledger publishers, so republishing is idempotent).
- :class:`Gauge` — last-write-wins level.
- :class:`Histogram` — streaming count/total/min/max; no buckets, the
  distributions the experiments need are computed offline from traces.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.exceptions import InvalidParameterError


class Counter:
    """A named monotonic counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise InvalidParameterError(
                f"counter {self.name!r} cannot decrease (inc {amount})"
            )
        self.value += amount

    def set_to(self, value: float) -> None:
        """Publish an absolute total (idempotent republishing)."""
        if value < self.value:
            raise InvalidParameterError(
                f"counter {self.name!r} cannot decrease "
                f"({self.value:g} -> {value:g})"
            )
        self.value = value


class Gauge:
    """A named level; last write wins."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Streaming summary of observed values."""

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """Named instruments with a point-in-time snapshot API.

    One name maps to exactly one instrument kind; asking for
    ``counter("x")`` after ``gauge("x")`` is an error rather than a
    silent aliasing bug.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def _check_unique(self, name: str, kind: str) -> None:
        owners = {
            "counter": self._counters,
            "gauge": self._gauges,
            "histogram": self._histograms,
        }
        for other_kind, table in owners.items():
            if other_kind != kind and name in table:
                raise InvalidParameterError(
                    f"metric {name!r} is already a {other_kind}"
                )

    def counter(self, name: str) -> Counter:
        """Get or create the counter called ``name``."""
        instrument = self._counters.get(name)
        if instrument is None:
            self._check_unique(name, "counter")
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge called ``name``."""
        instrument = self._gauges.get(name)
        if instrument is None:
            self._check_unique(name, "gauge")
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str) -> Histogram:
        """Get or create the histogram called ``name``."""
        instrument = self._histograms.get(name)
        if instrument is None:
            self._check_unique(name, "histogram")
            instrument = self._histograms[name] = Histogram(name)
        return instrument

    # -- snapshots -----------------------------------------------------------

    def snapshot(self) -> Dict[str, float]:
        """A point-in-time flat ``{name: value}`` map, sorted by name.

        Histograms expand into ``<name>.count`` / ``.total`` /
        ``.mean`` / ``.min`` / ``.max`` entries so the dump stays a
        flat scalar map.
        """
        flat: Dict[str, float] = {}
        for name, counter in self._counters.items():
            flat[name] = counter.value
        for name, gauge in self._gauges.items():
            flat[name] = gauge.value
        for name, histogram in self._histograms.items():
            flat[f"{name}.count"] = float(histogram.count)
            flat[f"{name}.total"] = histogram.total
            flat[f"{name}.mean"] = histogram.mean
            if histogram.min is not None:
                flat[f"{name}.min"] = histogram.min
                flat[f"{name}.max"] = histogram.max
        return dict(sorted(flat.items()))

    def dump_state(self) -> Dict[str, Dict[str, object]]:
        """Structured (not flattened) state, for cross-process merging.

        Unlike :meth:`snapshot`, histograms keep their components so a
        parent process can merge worker registries exactly.
        """
        return {
            "counters": {
                name: counter.value for name, counter in self._counters.items()
            },
            "gauges": {name: gauge.value for name, gauge in self._gauges.items()},
            "histograms": {
                name: {
                    "count": histogram.count,
                    "total": histogram.total,
                    "min": histogram.min,
                    "max": histogram.max,
                }
                for name, histogram in self._histograms.items()
            },
        }

    def merge_state(self, state: Dict[str, Dict[str, object]]) -> None:
        """Fold one worker's :meth:`dump_state` into this registry.

        Each worker starts from a fresh registry, so its counter values
        are deltas: counters add, histograms combine their streaming
        components, gauges take the incoming value (last write wins, in
        merge order).  Merging worker states in run-index order gives
        the same final registry as a single serial run; merge each
        state exactly once.
        """
        for name, value in state.get("counters", {}).items():
            counter = self.counter(name)
            counter.set_to(counter.value + float(value))
        for name, value in state.get("gauges", {}).items():
            self.gauge(name).set(float(value))
        for name, parts in state.get("histograms", {}).items():
            histogram = self.histogram(name)
            histogram.count += int(parts["count"])
            histogram.total += float(parts["total"])
            for bound, better in (("min", min), ("max", max)):
                incoming = parts[bound]
                if incoming is None:
                    continue
                current = getattr(histogram, bound)
                merged = (
                    float(incoming)
                    if current is None
                    else better(current, float(incoming))
                )
                setattr(histogram, bound, merged)

    def as_rows(self) -> List[Dict[str, object]]:
        """Snapshot as ``{"metric", "value"}`` rows for render_table."""
        return [
            {"metric": name, "value": value}
            for name, value in self.snapshot().items()
        ]

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)
