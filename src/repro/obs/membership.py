"""Observability for the shard membership layer.

The membership machine (:class:`repro.protocol.membership.
MembershipProtocol`) reports every state change as a
:class:`~repro.protocol.effects.PeerTransition` effect; the driver
forwards them here.  :class:`MembershipObserver` turns that stream
into the two standard surfaces:

- **Tracer events** named ``membership.transition``, one per change,
  carrying ``peer``, ``old``, ``new``, ``incarnation``, and the
  driver-clock timestamp ``at`` — so a shard's trace shows exactly
  when its failure detector suspected, condemned, quarantined, and
  re-admitted each peer.
- **MetricsRegistry instruments**: a monotonic counter
  ``membership.transitions`` plus one per transition edge
  (``membership.transitions.alive_to_suspect`` etc.), and per-state
  gauges ``membership.peers.alive`` / ``.suspect`` / ``.dead`` /
  ``.quarantined`` refreshed from the machine's
  :meth:`~repro.protocol.membership.MembershipProtocol.counts`.

Like every obs surface, this is strictly optional and zero-cost when
absent: the pump only calls in when an observer was attached, and an
observer with neither tracer nor metrics is inert.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

from repro.protocol.effects import PeerTransition

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.tracer import Tracer

#: The tracer event name for one membership state change.
TRANSITION_EVENT = "membership.transition"

#: Metric name prefixes (see module docstring).
TRANSITIONS_COUNTER = "membership.transitions"
PEERS_GAUGE_PREFIX = "membership.peers."


class MembershipObserver:
    """Publish membership transitions and peer-state levels.

    Parameters
    ----------
    metrics:
        Optional registry for the counters and gauges.
    tracer:
        Optional tracer for per-transition events.
    node:
        This shard's name, stamped on every tracer event so traces
        from several shards can be merged without ambiguity.
    """

    def __init__(
        self,
        metrics: Optional["MetricsRegistry"] = None,
        tracer: Optional["Tracer"] = None,
        node: str = "",
    ) -> None:
        self.metrics = metrics
        self.tracer = tracer
        self.node = node

    def transition(self, change: PeerTransition) -> None:
        """Record one :class:`PeerTransition` effect."""
        if self.tracer is not None:
            self.tracer.event(
                TRANSITION_EVENT,
                node=self.node,
                peer=change.peer,
                old=change.old_state,
                new=change.new_state,
                incarnation=change.incarnation,
                at=change.at,
            )
        if self.metrics is not None:
            self.metrics.counter(TRANSITIONS_COUNTER).inc()
            edge = f"{change.old_state or 'new'}_to_{change.new_state}"
            self.metrics.counter(f"{TRANSITIONS_COUNTER}.{edge}").inc()

    def publish_counts(self, counts: Dict[str, int]) -> None:
        """Refresh the per-state peer gauges from ``counts()``."""
        if self.metrics is None:
            return
        for state, count in counts.items():
            self.metrics.gauge(f"{PEERS_GAUGE_PREFIX}{state}").set(count)


__all__ = [
    "PEERS_GAUGE_PREFIX",
    "TRANSITIONS_COUNTER",
    "TRANSITION_EVENT",
    "MembershipObserver",
]
