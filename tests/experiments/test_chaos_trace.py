"""Chaos soak under tracing: schema validity, reconciliation, no drift."""

import random

import pytest

from repro.chaos import ChaosHarness, default_fault_plan
from repro.cluster.client import RetryPolicy
from repro.cluster.cluster import Cluster
from repro.experiments.chaos_soak import (
    SCHEME_PARAMS,
    ChaosSoakConfig,
    soak_one,
)
from repro.obs import MetricsRegistry, Tracer, validate_trace_records, write_trace
from repro.strategies.registry import create_strategy
from repro.workload.generator import SteadyStateWorkload
from repro.workload.lookups import LookupWorkload

CONFIG = ChaosSoakConfig(events=300, lookups=60, audit_lookups=10)


def soak_with_observers(label, tracer=None, metrics=None):
    """One scheme's soak with direct access to the cluster afterwards."""
    cluster = Cluster(CONFIG.server_count, seed=CONFIG.seed)
    strategy = create_strategy(label, cluster, **SCHEME_PARAMS[label])
    workload = SteadyStateWorkload(
        CONFIG.entry_count, rng=random.Random(CONFIG.seed + 1)
    )
    trace = workload.generate(CONFIG.events)
    horizon = max((event.time for event in trace.events), default=0.0)
    lookups = LookupWorkload(
        target=CONFIG.target, rng=random.Random(CONFIG.seed + 2)
    ).events_uniform(CONFIG.lookups, 0.0, horizon)
    plan = default_fault_plan(
        seed=CONFIG.seed + 3,
        drop_probability=CONFIG.drop_probability,
        duplicate_probability=CONFIG.duplicate_probability,
        server_count=CONFIG.server_count,
    )
    harness = ChaosHarness(
        strategy,
        plan,
        retry_policy=RetryPolicy(max_attempts=CONFIG.max_attempts),
        sweep_period=CONFIG.sweep_period,
        tracer=tracer,
        metrics=metrics,
    )
    report = harness.soak(
        trace.initial_entries,
        list(trace.events) + lookups,
        target=CONFIG.target,
        audit_lookups=CONFIG.audit_lookups,
    )
    return report, cluster


def test_traced_soak_produces_schema_valid_trace(tmp_path):
    tracer = Tracer(run_id="chaos-test")
    _, _ = soak_with_observers("round_robin", tracer=tracer)
    records = [r.as_dict() for r in tracer.records]
    assert validate_trace_records(records, run_id="chaos-test") == []
    # And the file form round-trips through the validating reader.
    from repro.obs import read_trace

    path = write_trace(tracer, tmp_path / "soak.jsonl")
    header, read_back = read_trace(path)
    assert header["records"] == len(records)


def test_lookup_spans_reconcile_with_message_stats():
    """Acceptance: per-lookup span messages sum to the §6.4 ledger."""
    for label in SCHEME_PARAMS:
        tracer = Tracer(run_id=f"reconcile-{label}")
        _, cluster = soak_with_observers(label, tracer=tracer)
        span_sum = sum(
            span.fields["messages"] for span in tracer.spans("lookup")
        )
        assert span_sum == cluster.network.stats.lookup_messages, label


def test_trace_covers_every_record_family():
    tracer = Tracer(run_id="families")
    _, _ = soak_with_observers("round_robin", tracer=tracer)
    names = {(r.kind, r.name) for r in tracer.records}
    assert ("span", "lookup") in names
    assert ("event", "contact") in names
    assert ("span", "repair_sweep") in names
    assert ("event", "update") in names
    assert ("event", "phase") in names
    phases = [e.fields["phase"] for e in tracer.events("phase")]
    assert phases == ["place", "arm", "soak", "quiesce", "audit"]


def test_lookup_spans_are_stamped_with_virtual_time():
    tracer = Tracer(run_id="clock")
    _, _ = soak_with_observers("round_robin", tracer=tracer)
    spans = tracer.spans("lookup")
    # Soak-phase lookups run at replay-event times, so timestamps must
    # spread across the horizon rather than all sitting at zero.
    assert any(span.start > 0.0 for span in spans)
    assert all(span.start <= span.end for span in spans)


def test_tracing_does_not_change_the_report():
    """Acceptance: with a tracer attached, rows are identical."""
    plain, _ = soak_with_observers("hash")
    traced, _ = soak_with_observers("hash", tracer=Tracer(run_id="x"))
    assert traced.as_row() == plain.as_row()
    assert traced == plain


def test_metrics_registry_collects_client_and_ledger_counters():
    metrics = MetricsRegistry()
    report, _ = soak_with_observers("round_robin", metrics=metrics)
    snapshot = metrics.snapshot()
    assert snapshot["client.lookups"] == report.lookups + CONFIG.audit_lookups
    assert snapshot["round_robin.net.messages.total"] > 0
    assert snapshot["round_robin.faults.attempted"] > 0
    assert snapshot["round_robin.sweep.sweeps"] == report.sweeps


def test_experiment_run_with_tracer_matches_untraced_rows():
    from repro.experiments import chaos_soak

    config = ChaosSoakConfig(events=200, lookups=40, audit_lookups=5)
    plain = chaos_soak.run(config)
    traced = chaos_soak.run(config, tracer=Tracer(run_id="full"))
    assert traced.rows == plain.rows
    assert traced.headers == plain.headers
