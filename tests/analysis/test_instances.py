"""Unit tests for exact instance enumeration (Figure 8)."""

from fractions import Fraction

import pytest

from repro.analysis.instances import (
    enumerate_hash_instances,
    enumerate_random_server_instances,
    expected_coverage_exact,
    instance_retrieval_probabilities,
    instance_unfairness_exact,
    strategy_unfairness_exact,
)
from repro.analysis.formulas import (
    expected_coverage_random_server,
    expected_storage,
)
from repro.core.exceptions import InvalidParameterError


class TestEnumeration:
    def test_figure8_instance_count(self):
        # RandomServer-1 on 2 servers / 2 entries: 4 instances.
        instances = enumerate_random_server_instances(2, 2, 1)
        assert len(instances) == 4
        assert sum(i.probability for i in instances) == Fraction(1)

    def test_random_server_instance_counts_general(self):
        # C(3,2)^2 = 9 instances.
        assert len(enumerate_random_server_instances(3, 2, 2)) == 9

    def test_x_capped_at_h(self):
        instances = enumerate_random_server_instances(2, 2, 5)
        assert len(instances) == 1  # everyone stores everything

    def test_hash_probabilities_sum_to_one(self):
        instances = enumerate_hash_instances(2, 2, 2)
        assert sum(i.probability for i in instances) == Fraction(1)

    def test_explosion_guard(self):
        with pytest.raises(InvalidParameterError, match="too many"):
            enumerate_random_server_instances(20, 10, 10)
        with pytest.raises(InvalidParameterError, match="too many"):
            enumerate_hash_instances(10, 10, 3)


class TestExactProbabilities:
    def test_identical_servers_concentrate(self):
        # Both servers store entry 0 only: p = (1, 0).
        placement = ((0,), (0,))
        assert instance_retrieval_probabilities(placement, 2, 1) == [
            Fraction(1),
            Fraction(0),
        ]

    def test_split_servers_are_fair(self):
        placement = ((0,), (1,))
        assert instance_retrieval_probabilities(placement, 2, 1) == [
            Fraction(1, 2),
            Fraction(1, 2),
        ]

    def test_probabilities_sum_to_target(self):
        placement = ((0, 1, 2), (1, 2, 3))
        probabilities = instance_retrieval_probabilities(placement, 4, 2)
        assert sum(probabilities) == Fraction(2)

    def test_single_contact_regime_enforced(self):
        with pytest.raises(InvalidParameterError, match="single-contact"):
            instance_retrieval_probabilities(((0,), (0, 1)), 2, 2)

    def test_empty_servers_allowed(self):
        placement = ((0, 1), ())
        probabilities = instance_retrieval_probabilities(placement, 2, 1)
        # Half the lookups hit the empty server and return nothing in
        # the single-contact model; the paper's client would retry,
        # but for the schemes we enumerate (RandomServer with x>=t)
        # non-empty stores are guaranteed.
        assert sum(probabilities) == Fraction(1, 2)


class TestFigure8:
    def test_instance_unfairness_values(self):
        # Figure 8: instances 1 and 4 have U=1; instances 2, 3 have U=0.
        assert instance_unfairness_exact(((0,), (0,)), 2, 1) == pytest.approx(1.0)
        assert instance_unfairness_exact(((0,), (1,)), 2, 1) == pytest.approx(0.0)
        assert instance_unfairness_exact(((1,), (0,)), 2, 1) == pytest.approx(0.0)
        assert instance_unfairness_exact(((1,), (1,)), 2, 1) == pytest.approx(1.0)

    def test_strategy_unfairness_is_one_half(self):
        instances = enumerate_random_server_instances(2, 2, 1)
        assert strategy_unfairness_exact(instances, 2, 1) == pytest.approx(0.5)


class TestCrossValidation:
    def test_exact_coverage_matches_closed_form(self):
        # E[coverage] = h(1-(1-x/h)^n) must agree with enumeration.
        for h, n, x in [(3, 2, 1), (4, 2, 2), (3, 3, 1)]:
            instances = enumerate_random_server_instances(h, n, x)
            exact = expected_coverage_exact(instances, h)
            closed = expected_coverage_random_server(h, n, x)
            assert exact == pytest.approx(closed, rel=1e-12)

    def test_exact_hash_storage_matches_closed_form(self):
        # E[storage] = h·n·(1-(1-1/n)^y) from Table 1.
        for h, n, y in [(2, 2, 2), (3, 2, 2), (2, 3, 2)]:
            instances = enumerate_hash_instances(h, n, y)
            exact = float(
                sum(
                    instance.probability
                    * sum(len(store) for store in instance.placement)
                    for instance in instances
                )
            )
            closed = expected_storage("hash", h, n, y=y)
            assert exact == pytest.approx(closed, rel=1e-12)

    def test_monte_carlo_estimator_converges_to_exact(self):
        """The simulator's measured unfairness matches enumeration."""
        from repro.cluster.cluster import Cluster
        from repro.core.entry import make_entries
        from repro.metrics.unfairness import estimate_unfairness
        from repro.strategies.random_server import RandomServerX

        instances = enumerate_random_server_instances(4, 2, 2)
        exact = strategy_unfairness_exact(instances, 4, 2)

        entries = make_entries(4)
        measured = 0.0
        runs = 60
        for seed in range(runs):
            strategy = RandomServerX(Cluster(2, seed=seed), x=2)
            strategy.place(entries)
            measured += estimate_unfairness(
                strategy, 2, entries, lookups=3000
            ).unfairness
        measured /= runs
        # Monte-Carlo noise adds a small positive bias; tolerate it.
        assert measured == pytest.approx(exact, abs=0.1)
