"""Benchmark suite configuration.

Each benchmark regenerates one of the paper's tables or figures and
prints the rows (run with ``-s`` to see them, or check EXPERIMENTS.md
for a recorded copy).  Statistical budgets are set so the whole suite
completes in a few minutes; pass the paper's run counts through the
experiment configs for full-fidelity numbers.
"""

import os
import sys

# Make _bench_utils importable regardless of how pytest inserts paths.
sys.path.insert(0, os.path.dirname(__file__))
