"""Table 1: storage cost of each strategy, formula vs measurement.

The paper's Table 1 states closed-form storage costs for managing
``h`` entries on ``n`` servers.  This experiment places entries with
every strategy and compares the measured total storage against the
closed form — exactly for the deterministic schemes, within sampling
noise for Hash-y (whose form is an expectation over hash collisions).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Dict, Optional

from repro.analysis.formulas import expected_storage
from repro.cluster.cluster import Cluster
from repro.core.entry import make_entries
from repro.experiments.parallel import make_executor
from repro.experiments.runner import ExperimentResult, average_runs
from repro.strategies.registry import create_strategy

#: Strategy name -> constructor parameter names used by Table 1.
_PARAMS = {
    "full_replication": {},
    "fixed": {"x": None},
    "random_server": {"x": None},
    "round_robin": {"y": None},
    "hash": {"y": None},
}


@dataclass(frozen=True)
class Table1Config:
    """Paper setup: h entries, n servers, parameters x and y."""

    entry_count: int = 100
    server_count: int = 10
    x: int = 20
    y: int = 2
    #: Runs for the stochastic Hash-y measurement.
    runs: int = 50
    seed: int = 2003


def measure_storage(strategy_name: str, config: Table1Config, seed: int) -> int:
    """Place once with ``strategy_name`` and return total storage."""
    cluster = Cluster(config.server_count, seed=seed)
    params: Dict[str, int] = {}
    if strategy_name in ("fixed", "random_server"):
        params["x"] = config.x
    elif strategy_name in ("round_robin", "hash"):
        params["y"] = config.y
    strategy = create_strategy(strategy_name, cluster, **params)
    strategy.place(make_entries(config.entry_count))
    return strategy.storage_cost()


def _storage_sample(strategy_name: str, config: Table1Config, seed: int) -> float:
    return float(measure_storage(strategy_name, config, seed))


def run(
    config: Table1Config = Table1Config(), *, jobs: Optional[int] = None
) -> ExperimentResult:
    """Regenerate Table 1 with measured-vs-formula columns."""
    result = ExperimentResult(
        name="Table 1: storage cost",
        headers=["strategy", "formula", "expected", "measured", "runs"],
        meta={
            "h": config.entry_count,
            "n": config.server_count,
            "x": config.x,
            "y": config.y,
        },
    )
    formulas = {
        "full_replication": "h*n",
        "fixed": "x*n",
        "random_server": "x*n",
        "round_robin": "h*y",
        "hash": "h*n*(1-(1-1/n)^y)",
    }
    with make_executor(jobs) as executor:
        for name in _PARAMS:
            expected = expected_storage(
                name,
                config.entry_count,
                config.server_count,
                x=config.x,
                y=config.y,
            )
            # Hash-y is the only stochastic row; deterministic rows need
            # one run and must match the formula exactly.
            runs = config.runs if name == "hash" else 1
            measured = average_runs(
                partial(_storage_sample, name, config),
                master_seed=config.seed,
                runs=runs,
                executor=executor,
            )
            result.rows.append(
                {
                    "strategy": name,
                    "formula": formulas[name],
                    "expected": round(expected, 2),
                    "measured": round(measured.mean, 2),
                    "runs": runs,
                }
            )
    return result
