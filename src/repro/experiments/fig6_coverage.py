"""Figure 6: maximum coverage vs total storage budget.

Paper setup: 100 entries, 10 servers, total storage swept 10..200.
Expected shape: Round-y and Hash-y cover ``min(budget, h)`` (they keep
a subset when underfunded, everything once the budget affords one copy
each); Fixed-x covers exactly ``x = budget/n``; RandomServer-x covers
``h·(1 − (1 − x/h)^n)`` in expectation — proportional at first, then
saturating like an inverted exponential.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Dict, Optional, Tuple

from repro.analysis.formulas import (
    expected_coverage_random_server,
    solve_x_from_budget,
    solve_y_from_budget,
)
from repro.cluster.cluster import Cluster
from repro.core.entry import make_entries
from repro.core.exceptions import InvalidParameterError
from repro.experiments.parallel import RunExecutor, make_executor
from repro.experiments.runner import ExperimentResult, average_runs
from repro.strategies.fixed import FixedX
from repro.strategies.hashing import HashY
from repro.strategies.random_server import RandomServerX
from repro.strategies.round_robin import RoundRobinY


@dataclass(frozen=True)
class Fig6Config:
    entry_count: int = 100
    server_count: int = 10
    budgets: Tuple[int, ...] = (10, 20, 40, 60, 80, 100, 120, 140, 160, 180, 200)
    #: Runs per point for the stochastic schemes (paper averages 5000).
    runs: int = 30
    seed: int = 6
    #: "mc" (paper default: measure placed clusters), "exact" (every
    #: column from its closed form — no clusters are built at all; the
    #: random_server column becomes its expectation, i.e. equal to the
    #: random_server_expected reference), or "auto" (closed forms for
    #: the deterministic schemes, measured placements for
    #: random_server).
    estimator: str = "mc"


def _coverage_point(config: Fig6Config, budget: int, name: str, seed: int) -> float:
    """Fresh placement of scheme ``name`` at ``budget``; its coverage.

    Module-level (and keyed by scheme name rather than a factory
    closure) so one run pickles cleanly onto a worker process.
    """
    h, n = config.entry_count, config.server_count
    cluster = Cluster(n, seed=seed)
    if name == "fixed":
        strategy = FixedX(cluster, x=solve_x_from_budget(budget, n))
    elif name == "random_server":
        strategy = RandomServerX(cluster, x=solve_x_from_budget(budget, n))
    elif name == "round_robin":
        strategy = RoundRobinY.from_budget(cluster, budget, h)
    else:
        strategy = HashY.from_budget(cluster, budget, h)
    strategy.place(make_entries(h))
    return float(strategy.coverage())


def measure_budget(
    config: Fig6Config, budget: int, executor: Optional[RunExecutor] = None
) -> Dict[str, float]:
    """Average coverage of each scheme at one storage budget."""
    if config.estimator not in ("mc", "exact", "auto"):
        raise InvalidParameterError(
            f"estimator must be 'mc', 'exact', or 'auto', got {config.estimator!r}"
        )
    h, n = config.entry_count, config.server_count
    x = solve_x_from_budget(budget, n)
    point: Dict[str, float] = {}
    exact = {
        "fixed": float(min(x, h)),
        "round_robin": float(min(budget, h)),
        "hash": float(min(budget, h)),
        "random_server": expected_coverage_random_server(h, n, x),
    }
    for name in ("fixed", "random_server", "round_robin", "hash"):
        if config.estimator == "exact" or (
            config.estimator == "auto" and name != "random_server"
        ):
            # Closed forms (see module docstring).  Under "auto" the
            # random_server column stays measured: its closed form is
            # the *expected* coverage, not a per-instance value, and
            # the figure already carries it as the reference column.
            point[name] = exact[name]
            continue
        runs = 1 if name in ("fixed", "round_robin") else config.runs
        averaged = average_runs(
            partial(_coverage_point, config, budget, name),
            master_seed=config.seed + budget,
            runs=runs,
            executor=executor,
        )
        point[name] = averaged.mean
    point["random_server_expected"] = exact["random_server"]
    return point


def run(
    config: Fig6Config = Fig6Config(), *, jobs: Optional[int] = None
) -> ExperimentResult:
    """Regenerate Figure 6's coverage-vs-storage series."""
    result = ExperimentResult(
        name="Figure 6: coverage vs total storage",
        headers=[
            "budget",
            "round_robin",
            "hash",
            "fixed",
            "random_server",
            "random_server_expected",
        ],
        meta={
            "h": config.entry_count,
            "n": config.server_count,
            "runs": config.runs,
        },
    )
    if config.estimator != "mc":
        result.meta["estimator"] = config.estimator
    with make_executor(jobs) as executor:
        for budget in config.budgets:
            point = measure_budget(config, budget, executor)
            _append_coverage_row(result, budget, point)
    return result


def _append_coverage_row(
    result: ExperimentResult, budget: int, point: Dict[str, float]
) -> None:
    result.rows.append(
        {
            "budget": budget,
            "round_robin": round(point["round_robin"], 2),
            "hash": round(point["hash"], 2),
            "fixed": round(point["fixed"], 2),
            "random_server": round(point["random_server"], 2),
            "random_server_expected": round(point["random_server_expected"], 2),
        }
    )
