"""Chaos harness: drive placements through seeded fault schedules.

The paper's protocols are analysed under a fail-stop, perfect-network
model; this package is the adversarial complement.  A
:class:`ChaosHarness` runs a dynamic add/delete/lookup workload
against one strategy while a :class:`~repro.cluster.faults.FaultPlan`
drops, duplicates, and blacks out deliveries and crashes servers
mid-protocol, with periodic anti-entropy sweeps mending the placement
— then drains the faults, repairs, and checks the invariants every
scheme must uphold:

1. the placement verifies clean (zero structural violations);
2. no server store holds duplicate entries;
3. the §6.4 message books and the fault books both balance;
4. every post-quiescence lookup returns at least ``t`` entries or is
   *explicitly* degraded because fewer than ``t`` exist anywhere.

Everything is seeded; the same ``(seed, fault plan)`` pair produces an
identical :class:`ChaosReport`, so a chaos failure is a reproducible
test case, not an anecdote.

Beyond the simulated faults, :mod:`repro.chaos.shards` attacks the
real deployment: it SIGKILLs one shard of a live ``repro serve``
fleet and asserts lookups merely *degrade* (never error, hang, or
lie) until the shard rejoins.
"""

from repro.chaos.harness import ChaosHarness, ChaosReport, default_fault_plan
from repro.chaos.shards import ShardFleet, ScenarioError, run_kill_shard_scenario

__all__ = [
    "ChaosHarness",
    "ChaosReport",
    "ScenarioError",
    "ShardFleet",
    "default_fault_plan",
    "run_kill_shard_scenario",
]
