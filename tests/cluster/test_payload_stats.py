"""Unit tests for payload-entry accounting in the network stats."""

from repro.cluster.cluster import Cluster
from repro.cluster.messages import (
    FetchReplacement,
    LookupRequest,
    PlaceRequest,
    QueryCounters,
    SetCounters,
    StoreMessage,
    StoreSetMessage,
)
from repro.core.entry import Entry, make_entries
from repro.strategies.full_replication import FullReplication
from repro.strategies.hashing import HashY


class TestMessagePayloads:
    def test_single_entry_messages(self):
        assert StoreMessage(Entry("a")).payload_entries == 1

    def test_batch_messages(self):
        entries = tuple(make_entries(7))
        assert StoreSetMessage(entries).payload_entries == 7
        assert PlaceRequest(entries).payload_entries == 7

    def test_control_messages_carry_nothing(self):
        assert LookupRequest(5).payload_entries == 0
        assert SetCounters(1, 2).payload_entries == 0
        assert QueryCounters().payload_entries == 0

    def test_fetch_counts_exclusion_ids(self):
        assert FetchReplacement(("a", "b")).payload_entries == 2


class TestStatsAccumulation:
    def test_place_payload_full_replication(self):
        # Place: request (h entries) + broadcast of h to n servers.
        cluster = Cluster(4, seed=1)
        strategy = FullReplication(cluster)
        strategy.place(make_entries(10))
        assert cluster.network.stats.payload_entries == 10 * (4 + 1)

    def test_add_payload_hash(self):
        cluster = Cluster(10, seed=2)
        strategy = HashY(cluster, y=2)
        strategy.place(make_entries(5))
        before = cluster.network.stats.payload_entries
        entry = Entry("new")
        distinct = len(strategy.family.assign_distinct(entry))
        strategy.add(entry)
        # Request (1) + one store per distinct target (1 each).
        assert cluster.network.stats.payload_entries - before == 1 + distinct

    def test_undelivered_not_counted(self):
        cluster = Cluster(4, seed=3)
        strategy = FullReplication(cluster)
        strategy.place(make_entries(4))
        cluster.fail(2)
        before = cluster.network.stats.payload_entries
        strategy.add(Entry("x"))
        # Request + 3 alive broadcast recipients.
        assert cluster.network.stats.payload_entries - before == 1 + 3

    def test_reset_clears_payload(self):
        cluster = Cluster(4, seed=4)
        strategy = FullReplication(cluster)
        strategy.place(make_entries(4))
        cluster.reset_stats()
        assert cluster.network.stats.payload_entries == 0

    def test_snapshot_copies_payload(self):
        cluster = Cluster(4, seed=5)
        strategy = FullReplication(cluster)
        strategy.place(make_entries(4))
        snapshot = cluster.network.stats.snapshot()
        strategy.add(Entry("y"))
        assert snapshot.payload_entries < cluster.network.stats.payload_entries
