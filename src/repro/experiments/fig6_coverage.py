"""Figure 6: maximum coverage vs total storage budget.

Paper setup: 100 entries, 10 servers, total storage swept 10..200.
Expected shape: Round-y and Hash-y cover ``min(budget, h)`` (they keep
a subset when underfunded, everything once the budget affords one copy
each); Fixed-x covers exactly ``x = budget/n``; RandomServer-x covers
``h·(1 − (1 − x/h)^n)`` in expectation — proportional at first, then
saturating like an inverted exponential.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.analysis.formulas import (
    expected_coverage_random_server,
    solve_x_from_budget,
    solve_y_from_budget,
)
from repro.cluster.cluster import Cluster
from repro.core.entry import make_entries
from repro.experiments.runner import ExperimentResult, average_runs
from repro.strategies.fixed import FixedX
from repro.strategies.hashing import HashY
from repro.strategies.random_server import RandomServerX
from repro.strategies.round_robin import RoundRobinY


@dataclass(frozen=True)
class Fig6Config:
    entry_count: int = 100
    server_count: int = 10
    budgets: Tuple[int, ...] = (10, 20, 40, 60, 80, 100, 120, 140, 160, 180, 200)
    #: Runs per point for the stochastic schemes (paper averages 5000).
    runs: int = 30
    seed: int = 6


def _coverage(strategy_factory, config: Fig6Config, seed: int) -> float:
    cluster = Cluster(config.server_count, seed=seed)
    strategy = strategy_factory(cluster)
    strategy.place(make_entries(config.entry_count))
    return float(strategy.coverage())


def measure_budget(config: Fig6Config, budget: int) -> Dict[str, float]:
    """Average coverage of each scheme at one storage budget."""
    h, n = config.entry_count, config.server_count
    x = solve_x_from_budget(budget, n)
    factories = {
        "fixed": lambda c: FixedX(c, x=x),
        "random_server": lambda c: RandomServerX(c, x=x),
        "round_robin": lambda c: RoundRobinY.from_budget(c, budget, h),
        "hash": lambda c: HashY.from_budget(c, budget, h),
    }
    point: Dict[str, float] = {}
    for name, factory in factories.items():
        runs = 1 if name in ("fixed", "round_robin") else config.runs
        averaged = average_runs(
            lambda seed: _coverage(factory, config, seed),
            master_seed=config.seed + budget,
            runs=runs,
        )
        point[name] = averaged.mean
    point["random_server_expected"] = expected_coverage_random_server(h, n, x)
    return point


def run(config: Fig6Config = Fig6Config()) -> ExperimentResult:
    """Regenerate Figure 6's coverage-vs-storage series."""
    result = ExperimentResult(
        name="Figure 6: coverage vs total storage",
        headers=[
            "budget",
            "round_robin",
            "hash",
            "fixed",
            "random_server",
            "random_server_expected",
        ],
        meta={
            "h": config.entry_count,
            "n": config.server_count,
            "runs": config.runs,
        },
    )
    for budget in config.budgets:
        point = measure_budget(config, budget)
        result.rows.append(
            {
                "budget": budget,
                "round_robin": round(point["round_robin"], 2),
                "hash": round(point["hash"], 2),
                "fixed": round(point["fixed"], 2),
                "random_server": round(point["random_server"], 2),
                "random_server_expected": round(
                    point["random_server_expected"], 2
                ),
            }
        )
    return result
