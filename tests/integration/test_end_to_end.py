"""Integration tests: full stack from directory facade to metrics."""

import random

import pytest

from repro.cluster.cluster import Cluster
from repro.core.entry import Entry, make_entries
from repro.core.service import PartialLookupDirectory
from repro.metrics.collector import MetricsCollector
from repro.simulation.events import AddEvent, DeleteEvent
from repro.simulation.replay import TraceReplayer
from repro.strategies.registry import available_strategies, create_strategy
from repro.workload.generator import SteadyStateWorkload


class TestDirectoryOverMixedStrategies:
    """One cluster, many keys, each with a different scheme."""

    def test_mixed_strategy_directory(self):
        directory = PartialLookupDirectory(
            Cluster(10, seed=11), default_strategy="hash", default_params={"y": 2}
        )
        directory.configure_key("static-fair", "round_robin", y=2)
        directory.configure_key("hot-updates", "fixed", x=15)
        directory.configure_key("replicated", "full_replication")

        for key in ("static-fair", "hot-updates", "replicated", "defaulted"):
            directory.place(key, make_entries(60, prefix=f"{key}-"))

        # Each key's strategy governs its placement independently.
        assert directory.storage_cost("static-fair") == 120
        assert directory.storage_cost("hot-updates") == 150
        assert directory.storage_cost("replicated") == 600
        assert 60 <= directory.storage_cost("defaulted") <= 120

        for key in ("static-fair", "replicated", "defaulted"):
            result = directory.partial_lookup(key, 10)
            assert result.success
            assert all(e.entry_id.startswith(key) for e in result.entries)

    def test_update_one_key_leaves_others_untouched(self):
        directory = PartialLookupDirectory(
            Cluster(10, seed=12), default_strategy="round_robin",
            default_params={"y": 2},
        )
        directory.place("a", make_entries(20, prefix="a"))
        directory.place("b", make_entries(20, prefix="b"))
        before_b = directory.lookup("b")
        for entry in make_entries(20, prefix="a"):
            directory.delete("a", entry)
        assert directory.lookup("a") == set()
        assert directory.lookup("b") == before_b


class TestWorkloadThroughEveryStrategy:
    """Every scheme survives a full steady-state churn trace."""

    @pytest.mark.parametrize("name", available_strategies())
    def test_churn_preserves_service(self, name):
        params = {
            "full_replication": {},
            "fixed": {"x": 25},
            "random_server": {"x": 25},
            "round_robin": {"y": 2},
            "hash": {"y": 2},
            "key_partitioning": {},
        }[name]
        workload = SteadyStateWorkload(50, rng=random.Random(5))
        trace = workload.generate(600)
        strategy = create_strategy(name, Cluster(10, seed=6), **params)
        strategy.place(trace.initial_entries)

        live = {e.entry_id for e in trace.initial_entries}
        replayer = TraceReplayer(strategy)
        stats = replayer.replay(trace.events)
        for event in trace.events:
            if isinstance(event, AddEvent):
                live.add(event.entry.entry_id)
            else:
                live.discard(event.entry.entry_id)

        assert stats.adds + stats.deletes == 600
        # Whatever remains retrievable is live; nothing deleted leaks.
        retrievable = {e.entry_id for e in strategy.lookup_all()}
        assert retrievable <= live
        # Schemes that store every entry track the population exactly.
        if name in ("full_replication", "round_robin", "hash", "key_partitioning"):
            assert retrievable == live
        # A modest lookup works against the steady-state population.
        result = strategy.partial_lookup(5)
        assert result.success


class TestMetricsOverLiveSystem:
    def test_collector_after_churn(self):
        strategy = create_strategy("round_robin", Cluster(10, seed=7), y=2)
        workload = SteadyStateWorkload(80, rng=random.Random(8))
        trace = workload.generate(300)
        strategy.place(trace.initial_entries)
        live = {e.entry_id: e for e in trace.initial_entries}
        for event in trace.events:
            if isinstance(event, AddEvent):
                strategy.add(event.entry)
                live[event.entry.entry_id] = event.entry
            else:
                strategy.delete(event.entry)
                live.pop(event.entry.entry_id, None)
        collector = MetricsCollector(lookup_samples=100, unfairness_samples=400)
        snapshot = collector.collect(
            strategy, target=10, universe=list(live.values())
        )
        assert snapshot.coverage == len(live)
        assert snapshot.storage_cost == 2 * len(live)
        assert snapshot.lookup_failure_rate == 0.0
        assert snapshot.unfairness < 0.5


class TestFailureRecoveryScenario:
    def test_service_degrades_and_recovers(self):
        strategy = create_strategy("round_robin", Cluster(10, seed=9), y=2)
        strategy.place(make_entries(100))

        # Healthy: full coverage.
        assert strategy.partial_lookup(80).success

        # Heavy failure: 8 of 10 servers down -> at most ~40 entries.
        strategy.cluster.fail_many(range(8))
        degraded = strategy.partial_lookup(80)
        assert not degraded.success
        assert strategy.partial_lookup(10).success  # partial service holds

        # Recovery restores everything (state was retained).
        strategy.cluster.recover_all()
        assert strategy.partial_lookup(80).success
        assert strategy.coverage() == 100
