"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.cluster.cluster import Cluster
from repro.core.entry import make_entries


@pytest.fixture
def cluster():
    """A 10-server seeded cluster, the paper's canonical n."""
    return Cluster(10, seed=12345)


@pytest.fixture
def small_cluster():
    """A 4-server seeded cluster for exact/brute-force tests."""
    return Cluster(4, seed=999)


@pytest.fixture
def entries100():
    """The paper's canonical 100-entry population v1..v100."""
    return make_entries(100)


@pytest.fixture
def entries10():
    return make_entries(10)


@pytest.fixture
def rng():
    return random.Random(777)


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: long-running statistical test (deselect with -m 'not slow')"
    )
