"""Unit tests for the experiment runner and report renderer."""

import pytest

from repro.core.exceptions import InvalidParameterError
from repro.experiments.report import render_series, render_table
from repro.experiments.runner import (
    ExperimentResult,
    average_runs,
    average_runs_multi,
    seeded_runs,
)


class TestSeededRuns:
    def test_count(self):
        assert len(list(seeded_runs(1, 5))) == 5

    def test_deterministic(self):
        assert list(seeded_runs(1, 5)) == list(seeded_runs(1, 5))

    def test_distinct_seeds(self):
        seeds = list(seeded_runs(1, 50))
        assert len(set(seeds)) == 50

    def test_master_seed_matters(self):
        assert list(seeded_runs(1, 3)) != list(seeded_runs(2, 3))

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            list(seeded_runs(1, 0))


class TestAveraging:
    def test_average_runs(self):
        ci = average_runs(lambda seed: float(seed % 2), master_seed=1, runs=100)
        assert 0.2 < ci.mean < 0.8
        assert ci.samples == 100

    def test_average_runs_multi_pairs_series(self):
        def run_once(seed):
            return {"a": 1.0, "b": 2.0}

        result = average_runs_multi(run_once, master_seed=1, runs=5)
        assert result["a"].mean == 1.0
        assert result["b"].mean == 2.0
        assert result["a"].samples == 5


class TestExperimentResult:
    def _result(self):
        return ExperimentResult(
            name="demo",
            headers=["x", "y"],
            rows=[{"x": 1, "y": 10}, {"x": 2, "y": 20}],
        )

    def test_column(self):
        assert self._result().column("y") == [10, 20]

    def test_row_for(self):
        assert self._result().row_for(x=2)["y"] == 20

    def test_row_for_missing(self):
        with pytest.raises(KeyError):
            self._result().row_for(x=99)


class TestRendering:
    def test_render_table_alignment(self):
        text = render_table(["name", "v"], [{"name": "abc", "v": 1.23456}])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "1.235" in lines[2]  # 4 significant digits

    def test_render_table_title(self):
        text = render_table(["a"], [{"a": 1}], title="My Table")
        assert text.splitlines()[0] == "My Table"
        assert set(text.splitlines()[1]) == {"="}

    def test_render_table_missing_cell_blank(self):
        text = render_table(["a", "b"], [{"a": 1}])
        assert text.splitlines()[-1].strip() == "1"

    def test_render_series_union_of_x(self):
        text = render_series(
            "t",
            {"curve1": {1: 0.5, 2: 0.7}, "curve2": {2: 0.9, 3: 1.1}},
        )
        lines = text.splitlines()
        assert lines[0].split()[0] == "t"
        assert len(lines) == 2 + 3  # header + rule + 3 x values
