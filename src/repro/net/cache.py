"""Hot-key reply cache: packed lookup replies, epoch-invalidated.

Production lookup traffic is Zipf-shaped: a handful of hot keys absorb
most requests, and the service re-runs the same deterministic
per-server answer — and re-encodes the same reply bytes — for every
one of them.  :class:`ReplyCache` short-circuits that path: it is an
LRU keyed by ``(codec, opcode, scheme key, server id, options
fingerprint)`` whose values are the *fully materialised* reply
payloads — a :class:`~repro.net.codec.Prepacked` splice value on the
binary path (so a hit costs one memcpy when the frame is packed) or
the already-JSON-encoded value object on the JSON path (so a hit skips
``encode_value`` entirely).

Soundness comes from two rules enforced by the service, not here:

1. **Only deterministic replies are cached.**  A per-server lookup
   answer consumes the cluster RNG only when ``0 < target < |store|``
   (:meth:`EntryStore.sample <repro.cluster.server.EntryStore.sample>`
   short-circuits to the full local list otherwise).  The service only
   caches the RNG-free case, so a cache-enabled service draws exactly
   the same RNG stream as a cache-disabled one and every reply —
   cached or not — is byte-identical between the two.
2. **Mutations invalidate before they answer.**  The service keeps a
   per-scheme mutation epoch; every add/delete/place bumps it (and
   eagerly drops that scheme's entries here) *before* the mutating
   reply is sent.  Cached entries are stamped with the epoch they were
   filled under and :meth:`get` refuses a stale stamp, so a reader can
   never observe a pre-mutation answer after the mutation's reply.

The counters (hits / misses / evictions / invalidations) are plain
ints so the hot path stays cheap; :meth:`publish` mirrors them into a
:class:`~repro.obs.metrics.MetricsRegistry` with the same idempotent
``set_to`` ledger convention :class:`~repro.cluster.network
.MessageStats` uses, and :meth:`snapshot` returns them for the
``info.capabilities`` wire surface.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Hashable, Optional, Tuple

from repro.core.exceptions import InvalidParameterError

#: Default per-process capacity; small enough that a full cache of
#: ~kB replies stays in the tens of MB, large enough to cover a hot
#: set of (scheme x server x target) combinations many times over.
DEFAULT_CAPACITY = 1024


class ReplyCache:
    """A size-bounded LRU of packed lookup replies with epoch stamps.

    Parameters
    ----------
    capacity:
        Maximum resident entries; the least-recently-used entry is
        evicted on overflow.  Must be positive (a disabled cache is
        represented by *no* cache, not a zero-capacity one).
    """

    __slots__ = ("capacity", "hits", "misses", "evictions", "invalidations", "_entries")

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise InvalidParameterError(
                f"cache capacity must be >= 1, got {capacity}"
            )
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        #: key -> (epoch stamp, packed payload); insertion order is
        #: recency order (MRU at the end).
        self._entries: "OrderedDict[Hashable, Tuple[int, Any]]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Hashable, epoch: int) -> Optional[Any]:
        """The payload cached under ``key`` at ``epoch``, or None.

        An entry stamped with a different epoch is dropped on sight —
        the eager :meth:`invalidate` already counted its demise when
        the mutation ran, so a stale hit here only counts as a miss.
        """
        slot = self._entries.get(key)
        if slot is None:
            self.misses += 1
            return None
        stamped, payload = slot
        if stamped != epoch:
            del self._entries[key]
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return payload

    def put(self, key: Hashable, epoch: int, payload: Any) -> None:
        """Remember ``payload`` for ``key`` as of ``epoch`` (MRU)."""
        entries = self._entries
        if key in entries:
            entries.move_to_end(key)
        entries[key] = (epoch, payload)
        while len(entries) > self.capacity:
            entries.popitem(last=False)
            self.evictions += 1

    def invalidate(self, scheme_key: str) -> int:
        """Drop every cached reply for ``scheme_key``; returns the count.

        Cache keys carry the scheme key at index 2 (see the service's
        ``_cache_slot``); anything else shaped differently is left
        alone.  Called by the service on every mutation, *before* the
        mutating reply is sent.
        """
        doomed = [
            key
            for key in self._entries
            if isinstance(key, tuple) and len(key) > 2 and key[2] == scheme_key
        ]
        for key in doomed:
            del self._entries[key]
        self.invalidations += len(doomed)
        return len(doomed)

    def clear(self) -> int:
        """Drop everything (e.g. after a full store resync)."""
        dropped = len(self._entries)
        self._entries.clear()
        self.invalidations += dropped
        return dropped

    def snapshot(self) -> Dict[str, int]:
        """The counters + occupancy, as published in ``info.capabilities``."""
        return {
            "size": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
        }

    def publish(self, metrics: Any, prefix: str = "net.cache") -> None:
        """Mirror the counters into ``metrics`` (idempotent ``set_to``)."""
        metrics.counter(f"{prefix}.hits").set_to(self.hits)
        metrics.counter(f"{prefix}.misses").set_to(self.misses)
        metrics.counter(f"{prefix}.evictions").set_to(self.evictions)
        metrics.counter(f"{prefix}.invalidations").set_to(self.invalidations)
        metrics.gauge(f"{prefix}.size").set(len(self._entries))


__all__ = ["DEFAULT_CAPACITY", "ReplyCache"]
