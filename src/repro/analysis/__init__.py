"""Closed-form models and statistical helpers.

:mod:`~repro.analysis.formulas` collects every analytical expression
the paper states (Table 1 storage costs, expected coverage, Round-y
lookup cost and fault tolerance, budget → parameter solving);
:mod:`~repro.analysis.crossover` implements the §6.4 Fixed-x vs Hash-y
update-overhead analysis; :mod:`~repro.analysis.confidence` computes
the run-averaged means and confidence intervals the paper reports.
"""

from repro.analysis.formulas import (
    expected_coverage_random_server,
    expected_storage,
    fault_tolerance_round_robin,
    lookup_cost_round_robin,
    solve_x_from_budget,
    solve_y_from_budget,
)
from repro.analysis.crossover import (
    expected_update_cost_fixed,
    expected_update_cost_hash,
    find_crossovers,
    optimal_hash_y,
)
from repro.analysis.confidence import ConfidenceInterval, mean_confidence_interval
from repro.analysis.convergence import ConvergencePlan, plan_runs
from repro.analysis.planner import DeploymentSpec, SchemePlan, plan, plan_rows

__all__ = [
    "expected_storage",
    "expected_coverage_random_server",
    "lookup_cost_round_robin",
    "fault_tolerance_round_robin",
    "solve_x_from_budget",
    "solve_y_from_budget",
    "expected_update_cost_fixed",
    "expected_update_cost_hash",
    "optimal_hash_y",
    "find_crossovers",
    "ConfidenceInterval",
    "mean_confidence_interval",
    "ConvergencePlan",
    "plan_runs",
    "DeploymentSpec",
    "SchemePlan",
    "plan",
    "plan_rows",
]
