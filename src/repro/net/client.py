"""The asyncio lookup client: real timeouts driving the sans-IO session.

:class:`AsyncLookupClient` is the network twin of the simulated
:class:`~repro.cluster.client.Client`.  Both pump the same
:class:`~repro.protocol.lookup.LookupSession`; the differences are
purely in how effects are enacted:

- ``SendRequest`` becomes a framed envelope over the socket, awaited
  with a real timeout.  A timed-out request is reported to the session
  as ``ContactFailed(dropped=True)`` — from the protocol's viewpoint a
  timeout *is* a lost message, worth retrying — while an
  ``"unavailable"`` error reply (the addressed server is failed) is
  ``ContactFailed(dropped=False)``, matching the simulated transport's
  :data:`~repro.cluster.network.DROPPED` / UNDELIVERED distinction.
- ``Sleep`` becomes a real ``asyncio.sleep``, so a
  :class:`~repro.cluster.client.RetryPolicy`'s backoff schedule is
  enacted in wall-clock time instead of merely accounted.

After a timeout the connection is re-established: the stale reply may
still arrive on the old stream, and reconnecting is the simplest way
to keep request/reply framing in lockstep (the wire protocol has no
request ids by design — one in-flight request per connection).

Determinism: the session's RNG is supplied by the caller, so a seeded
run contacts servers in a reproducible order even over real sockets;
only timing (and therefore timeout-induced retries) is environmental.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass
from typing import Any, List, Optional

from repro.cluster.client import RetryPolicy
from repro.core.result import LookupResult
from repro.net.codec import decode_value, encode_message, read_frame, write_frame
from repro.protocol.effects import Complete, SendRequest, Sleep
from repro.protocol.events import SLEPT, ContactFailed, Event, ReplyReceived
from repro.protocol.lookup import LookupSession, random_order, stride_order


class ServiceError(ConnectionError):
    """The service rejected a request or broke the envelope protocol."""


@dataclass(frozen=True)
class SchemeInfo:
    """One hosted scheme, as reported by the ``info`` op."""

    name: str
    params: dict[str, Any]
    order: Any  # "random" | {"stride": y}
    max_servers: Optional[int]


@dataclass(frozen=True)
class ServiceInfo:
    """Topology summary from the ``info`` op."""

    servers: int
    entries: int
    seed: int
    schemes: dict[str, SchemeInfo]


class AsyncLookupClient:
    """An async client for one :class:`~repro.net.service.LookupService`.

    Parameters
    ----------
    host, port:
        The service's listening address.
    rng:
        Injected randomness for contact orders and the session's
        draws; defaults to a fresh unseeded generator.
    timeout:
        Per-request reply timeout in seconds.  Timeouts surface as
        dropped contacts (retryable under a retry policy), not
        exceptions.
    retry_policy:
        Optional :class:`~repro.cluster.client.RetryPolicy` applied to
        every lookup; backoffs are real sleeps.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        rng: Optional[random.Random] = None,
        timeout: float = 5.0,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retry_policy = retry_policy
        self._rng = rng if rng is not None else random.Random()
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._info: Optional[ServiceInfo] = None

    # -- connection management ----------------------------------------------

    async def connect(self) -> None:
        if self._writer is not None:
            return
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )

    async def close(self) -> None:
        if self._writer is None:
            return
        writer, self._reader, self._writer = self._writer, None, None
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    async def __aenter__(self) -> "AsyncLookupClient":
        await self.connect()
        return self

    async def __aexit__(self, *exc: Any) -> None:
        await self.close()

    async def _reconnect(self) -> None:
        await self.close()
        await self.connect()

    # -- raw envelope round-trips --------------------------------------------

    async def request(self, envelope: dict[str, Any]) -> dict[str, Any]:
        """One envelope round-trip, without a timeout.

        Raises :class:`ServiceError` if the connection drops before
        the reply arrives.  Used for the control ops; data-path sends
        go through the timeout-aware path inside :meth:`lookup`.
        """
        await self.connect()
        try:
            await write_frame(self._writer, envelope)
            reply = await read_frame(self._reader)
        except (ConnectionError, OSError):
            # A cached connection may be stale (peer restarted); drop
            # it so the next request dials fresh instead of failing
            # against the same dead stream forever.
            await self.close()
            raise
        if reply is None:
            await self.close()
            raise ServiceError("service closed the connection mid-request")
        return reply

    async def ping(self) -> bool:
        reply = await self.request({"op": "ping"})
        return bool(reply.get("ok"))

    async def info(self, refresh: bool = False) -> ServiceInfo:
        """Fetch (and cache) the service topology."""
        if self._info is not None and not refresh:
            return self._info
        reply = await self.request({"op": "info"})
        if not reply.get("ok"):
            raise ServiceError(f"info failed: {reply.get('detail')}")
        value = reply["value"]
        schemes = {
            name: SchemeInfo(
                name=name,
                params=dict(spec["params"]),
                order=spec["profile"]["order"],
                max_servers=spec["profile"]["max_servers"],
            )
            for name, spec in value["schemes"].items()
        }
        self._info = ServiceInfo(
            servers=value["servers"],
            entries=value["entries"],
            seed=value["seed"],
            schemes=schemes,
        )
        return self._info

    async def verify(self, scheme: str) -> dict[str, Any]:
        """The service's coverage/storage invariant report for ``scheme``."""
        reply = await self.request({"op": "verify", "key": scheme})
        if not reply.get("ok"):
            raise ServiceError(f"verify failed: {reply.get('detail')}")
        return reply["value"]

    # -- the lookup driver ----------------------------------------------------

    def _contact_order(self, scheme: SchemeInfo, servers: int) -> List[int]:
        """Materialize the scheme's declared contact order locally.

        Mirrors ``Client._resolve_order``: a stride draws its start
        first, then builds the walk, so seeded async and simulated
        clients agree on draw order.
        """
        order = scheme.order
        if isinstance(order, dict) and "stride" in order:
            start = self._rng.randrange(servers)
            return stride_order(servers, start, order["stride"], self._rng)
        return random_order(servers, self._rng)

    async def lookup(
        self,
        scheme: str,
        target: int,
        *,
        retry: Optional[RetryPolicy] = None,
    ) -> LookupResult:
        """One partial lookup for ``target`` entries under ``scheme``.

        Contacts real sockets but never raises on shortfall — like the
        simulated client, a short answer comes back as a labelled
        degraded :class:`~repro.core.result.LookupResult`.
        """
        info = await self.info()
        spec = info.schemes.get(scheme)
        if spec is None:
            raise ServiceError(
                f"service does not host scheme {scheme!r} "
                f"(hosts: {', '.join(sorted(info.schemes))})"
            )
        session = LookupSession(
            scheme,
            target,
            self._contact_order(spec, info.servers),
            max_servers=spec.max_servers,
            retry_policy=self.retry_policy if retry is None else retry,
            rng=self._rng,
        )
        effects = session.start()
        while True:
            event: Optional[Event] = None
            for effect in effects:
                if isinstance(effect, SendRequest):
                    event = await self._contact(effect)
                elif isinstance(effect, Sleep):
                    await asyncio.sleep(effect.delay)
                    event = SLEPT
                elif isinstance(effect, Complete):
                    return effect.result
            effects = session.on_event(event)

    async def _contact(self, effect: SendRequest) -> Event:
        """Enact one ``SendRequest`` over the socket."""
        return await self.contact_server(
            effect.server_id, effect.key, effect.request
        )

    async def contact_server(
        self,
        server: int,
        key: str,
        request: Any,
        *,
        event_server_id: Optional[int] = None,
    ) -> Event:
        """One timeout-bounded ``send`` to ``server``, as a session event.

        The public face of the data path, also pumped by the
        :class:`~repro.net.router.ShardRouter` whose sessions span
        several shards: ``event_server_id`` lets the caller stamp the
        returned event with the *session's* contact index when it
        differs from the wire-level server id.
        """
        sid = server if event_server_id is None else event_server_id
        envelope = {
            "op": "send",
            "server": server,
            "key": key,
            "message": encode_message(request),
        }
        try:
            reply = await asyncio.wait_for(self.request(envelope), self.timeout)
        except (asyncio.TimeoutError, ConnectionError, OSError):
            # A late reply on the old stream would desync framing;
            # start the next request on a fresh connection.
            try:
                await self._reconnect()
            except OSError:
                await self.close()
            return ContactFailed(sid, dropped=True)
        if reply.get("ok"):
            return ReplyReceived(sid, decode_value(reply["value"]))
        error = reply.get("error")
        if error == "unavailable":
            return ContactFailed(sid, dropped=False)
        if error == "dropped":
            return ContactFailed(sid, dropped=True)
        raise ServiceError(f"lookup send failed: {error}: {reply.get('detail')}")


__all__ = [
    "AsyncLookupClient",
    "SchemeInfo",
    "ServiceError",
    "ServiceInfo",
]
