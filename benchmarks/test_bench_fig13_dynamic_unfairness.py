"""Benchmark: regenerate Figure 13 (RandomServer unfairness under churn).

Paper shape: unfairness rises rapidly over the first ~1000 updates and
stabilizes — ending only a factor of ~2 better than Fixed-x's constant
2.0, versus the order-of-magnitude static advantage (§6.3).
"""

from _bench_utils import render_and_print

from repro.experiments.fig13_dynamic_unfairness import Fig13Config, run
from repro.metrics.unfairness import exact_unfairness_uniform_subset


def test_bench_fig13_dynamic_unfairness(benchmark):
    config = Fig13Config(runs=8, lookups=2000)
    result = benchmark.pedantic(lambda: run(config), rounds=1, iterations=1)
    render_and_print(result)

    values = result.column("random_server")
    # Rapid deterioration then stabilization.
    assert values[1] > values[0]
    late = values[-3:]
    assert max(late) - min(late) < 0.35  # plateaued

    # §6.3: "only a factor of 2 better than Fixed-x" (Fixed-x = 2.0).
    fixed_constant = exact_unfairness_uniform_subset(20, 100, config.target)
    assert fixed_constant == 2.0
    assert fixed_constant / 4 < values[-1] < fixed_constant
