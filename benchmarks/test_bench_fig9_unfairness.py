"""Benchmark: regenerate Figure 9 (unfairness vs total storage).

Paper shape: RandomServer-x decreases in two phases (coverage-bound
exponential decay, then a slow linear tail to ~0 at budget 1000);
Hash-y *rises* through phase 1 and only drifts down after; Fixed-x is
an order of magnitude worse than RandomServer-x (closed-form column).
Absolute scale follows equation (1) as printed — see EXPERIMENTS.md
for the reconciliation with Figure 9's printed axis.
"""

from _bench_utils import render_and_print

from repro.experiments.fig9_unfairness import Fig9Config, run


def test_bench_fig9_unfairness(benchmark):
    config = Fig9Config(runs=10, lookups_per_instance=4000)
    result = benchmark.pedantic(lambda: run(config), rounds=1, iterations=1)
    render_and_print(result)

    random_server = result.column("random_server")
    # Phase structure: big early drop, near-fair at full storage.
    assert random_server[0] > 2 * random_server[-3]
    assert random_server[-1] < 0.08

    # Hash rises in phase 1 then never exceeds its plateau much.
    hash_curve = result.column("hash")
    assert max(hash_curve[1:4]) > hash_curve[0]
    assert max(hash_curve) < 1.0

    # Fixed-x: order of magnitude worse at mid budgets.
    mid = result.row_for(budget=300)
    assert mid["fixed_exact"] > 3 * mid["random_server"]


def test_bench_fig9_exact_speedup(benchmark, bench_json_record):
    """Closed-form estimator vs Monte-Carlo on the deterministic schemes.

    Same grid, same placements; ``estimator="exact"`` replaces every
    10k-lookup MC loop with the closed form, so the whole figure costs
    little more than its placements.
    """
    import time

    mc_config = Fig9Config(
        runs=10,
        lookups_per_instance=4000,
        schemes=("fixed", "round_robin"),
        estimator="mc",
    )
    started = time.perf_counter()
    mc_result = run(mc_config)
    mc_elapsed = time.perf_counter() - started

    exact_config = Fig9Config(
        runs=10,
        lookups_per_instance=4000,
        schemes=("fixed", "round_robin"),
        estimator="exact",
    )
    started = time.perf_counter()
    exact_result = benchmark.pedantic(
        lambda: run(exact_config), rounds=1, iterations=1
    )
    exact_elapsed = time.perf_counter() - started

    speedup = mc_elapsed / exact_elapsed
    bench_json_record("fig9_exact_speedup", round(speedup, 1))
    print(
        f"\nfig9 exact-estimator speedup: {speedup:.1f}x "
        f"({mc_elapsed:.2f}s -> {exact_elapsed:.2f}s)"
    )
    assert speedup >= 20.0

    # The two estimators must agree: round_robin is exactly fair, and
    # fixed's MC estimate sits within sampling noise of the closed form.
    for mc_row, exact_row in zip(mc_result.rows, exact_result.rows):
        assert exact_row["round_robin"] == 0.0
        assert abs(mc_row["fixed"] - exact_row["fixed"]) < 0.05
        assert abs(mc_row["round_robin"]) < 0.05
