"""Failure injection for the fault-tolerance experiments.

Section 4.4 evaluates the *worst case*: an all-knowing adversary picks
which servers fail.  :class:`FailureInjector` applies failure patterns
to a cluster (and restores it afterwards), and provides the random and
adversarial pattern generators that the fault-tolerance metric and the
failure-resilience example build on.  The greedy adversarial heuristic
itself lives in :mod:`repro.metrics.fault_tolerance` since it is an
evaluation procedure, not a substrate feature.
"""

from __future__ import annotations

import random
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.core.exceptions import InvalidParameterError
from repro.cluster.cluster import Cluster


@dataclass(frozen=True)
class FailurePattern:
    """An ordered set of servers to fail, with a human-readable origin."""

    server_ids: Tuple[int, ...]
    origin: str = "manual"

    def __len__(self) -> int:
        return len(self.server_ids)

    def __iter__(self) -> Iterator[int]:
        return iter(self.server_ids)


class FailureInjector:
    """Applies and reverts failure patterns on a cluster."""

    def __init__(self, cluster: Cluster, rng: Optional[random.Random] = None) -> None:
        self._cluster = cluster
        self._rng = rng if rng is not None else cluster.rng

    def random_pattern(self, count: int) -> FailurePattern:
        """``count`` distinct uniformly random servers."""
        if not 0 <= count <= self._cluster.size:
            raise InvalidParameterError(
                f"cannot fail {count} of {self._cluster.size} servers"
            )
        ids = self._rng.sample(range(self._cluster.size), count)
        return FailurePattern(tuple(ids), origin="random")

    def apply(self, pattern: FailurePattern) -> None:
        for server_id in pattern:
            self._cluster.fail(server_id)

    def revert(self, pattern: FailurePattern) -> None:
        for server_id in pattern:
            self._cluster.recover(server_id)

    @contextmanager
    def injected(self, pattern: FailurePattern):
        """Context manager: servers are failed inside, restored after.

        Restores only the pattern's servers, so nested injections and
        pre-existing failures compose correctly.
        """
        self.apply(pattern)
        try:
            yield self._cluster
        finally:
            self.revert(pattern)

    def survives(self, key: str, target: int, pattern: FailurePattern) -> bool:
        """Whether coverage stays >= ``target`` under ``pattern``.

        This is the paper's lookup-failure criterion: a client lookup
        of size ``t`` fails exactly when fewer than ``t`` distinct
        entries remain retrievable from operational servers.
        """
        with self.injected(pattern):
            return self._cluster.coverage(key) >= target
