"""The asyncio lookup service: a cluster behind a listening socket.

One :class:`LookupService` hosts one in-process
:class:`~repro.cluster.cluster.Cluster` with all five paper schemes
installed side by side — each scheme under its own key (the scheme
name), which is exactly how the multi-key directory composes
strategies.  Client requests arrive as framed envelopes (see
:mod:`repro.net.codec`), are routed through
:meth:`Network.send <repro.cluster.network.Network.send>` to the
addressed server's :class:`~repro.protocol.server.ServerProtocol`, and
the reply is framed back.  Routing through the simulated network —
rather than calling the protocol directly — keeps the Section 6.4
message accounting and failed-server suppression identical to the
simulated driver, so a socket client observes the same error surface
(``"unavailable"`` for a failed server) a simulated client does.

Server-to-server choreography (Round-Robin's delete migration,
RandomServer's broadcasts) stays in-process on the hosted cluster; the
wire carries only client↔service traffic.  This mirrors the paper's
deployment picture, where the lookup servers are one administrative
system and clients reach it over the network.

Concurrency: handlers run on the event loop and the cluster is touched
only between awaits, so envelope processing is effectively serialized
per event-loop step; no locks are needed.  All state mutation happens
synchronously inside :meth:`LookupService.handle_envelope`.

Sharding: with ``shard_count > 1`` the process is one shard of a
fleet.  Key→shard placement comes from :mod:`repro.net.sharding`
(the primary holds a key's full placement, backups a partial
replica), and two extra envelope ops carry the membership plane:
``heartbeat`` (answered with this shard's own heartbeat, so one
round-trip refreshes both failure detectors) and ``membership`` (the
current peer view, consumed by :class:`~repro.net.router.ShardRouter`).
Both delegate to the attached :class:`~repro.net.membership
.MembershipPump`, keeping :meth:`LookupService.handle_envelope` pure
dispatch over injected state.
"""

from __future__ import annotations

import asyncio
import base64
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.cluster.cluster import Cluster
from repro.cluster.messages import LookupRequest, Message, MessageCategory
from repro.cluster.network import DROPPED, is_undelivered
from repro.core.entry import make_entries
from repro.core.exceptions import InvalidParameterError
from repro.net.cache import DEFAULT_CAPACITY, ReplyCache, SharedReplyCache
from repro.net.codec import (
    CODEC_BINARY,
    CODEC_JSON,
    SUPPORTED_CODECS,
    FrameError,
    Prepacked,
    WireError,
    decode_heartbeat,
    decode_message,
    encode_envelope_fragments,
    encode_message,
    encode_value,
    negotiate_codec,
    pack_send_reply,
    pack_value_bytes,
    read_frame,
    write_frame,
    write_frames,
)
from repro.net.sharding import ShardMap, partial_replica
from repro.obs.metrics import MetricsRegistry
from repro.strategies.base import LookupProfile, PlacementStrategy
from repro.strategies.registry import create_strategy

#: The five paper schemes the service hosts, with the parameters the
#: chaos soak gate exercises (one key per scheme on the shared cluster).
DEFAULT_SCHEMES: dict[str, dict[str, int]] = {
    "full_replication": {},
    "fixed": {"x": 10},
    "random_server": {"x": 10},
    "round_robin": {"y": 2},
    "hash": {"y": 2},
}

#: Upper bound on sub-requests per ``batch`` envelope.  Large enough
#: that a client never needs more than one frame per scheduling round,
#: small enough that one malicious frame cannot monopolize the loop.
MAX_BATCH = 1024


@dataclass(frozen=True)
class ServiceConfig:
    """Construction parameters for one :class:`LookupService`.

    The shard fields describe this process's place in a sharded
    fleet (``repro serve --shard i/N``).  The default
    ``shard_count=1`` is the unsharded deployment: one process,
    every key, full placement — byte-identical behaviour to before
    sharding existed.  In a fleet, every shard must be started with
    the same ``shard_count``/``replicas``/``backup_fraction``/
    ``probes`` (and the same topology fields), because routers
    recompute the placement from these values alone.
    """

    server_count: int = 16
    entry_count: int = 40
    seed: int = 0
    schemes: dict[str, dict[str, int]] = field(
        default_factory=lambda: dict(DEFAULT_SCHEMES)
    )
    shard_index: int = 0
    shard_count: int = 1
    replicas: int = 2
    backup_fraction: float = 0.25
    probes: int = 21
    #: Hot-key reply cache capacity (entries); 0 disables the cache.
    cache_size: int = DEFAULT_CAPACITY
    #: Whether a worker fleet backs its reply caches with one
    #: cross-process shared-memory segment (``serve --shared-cache``).
    #: Single-process deployments ignore it (there is nobody to share
    #: with); the fleet supervisor reads it before forking.
    shared_cache: bool = True
    #: Storage backend: ``"memory"`` (the historical default) or
    #: ``"log"`` (append-log durability; requires ``data_dir``).
    store: str = "memory"
    #: Directory for the append-log journal and snapshots.
    data_dir: Optional[str] = None
    #: Open the journal read-only: recover from it, never write to it.
    #: The worker fleet sets this on reader workers — the writer owns
    #: the journal, readers only replay it on (re)start.
    store_read_only: bool = False
    #: Auto-compact the journal after this many records since the last
    #: compaction; 0 disables auto-compaction.
    log_compact_records: int = 4096

    def __post_init__(self) -> None:
        if self.cache_size < 0:
            raise InvalidParameterError(
                f"cache_size must be >= 0, got {self.cache_size}"
            )
        if self.store not in ("memory", "log"):
            raise InvalidParameterError(
                f"store must be 'memory' or 'log', got {self.store!r}"
            )
        if self.store == "log" and not self.data_dir:
            raise InvalidParameterError("store 'log' requires a data_dir")
        if self.log_compact_records < 0:
            raise InvalidParameterError(
                f"log_compact_records must be >= 0, got {self.log_compact_records}"
            )
        if self.shard_count < 1:
            raise InvalidParameterError(
                f"shard_count must be >= 1, got {self.shard_count}"
            )
        if not 0 <= self.shard_index < self.shard_count:
            raise InvalidParameterError(
                f"shard_index must be in [0, {self.shard_count}), "
                f"got {self.shard_index}"
            )
        if self.shard_count > 1 and not 1 <= self.replicas <= self.shard_count:
            raise InvalidParameterError(
                f"replicas must be in [1, {self.shard_count}], got {self.replicas}"
            )


def shard_names(count: int) -> list[str]:
    """The canonical shard names for an ``N``-shard fleet: s0..s{N-1}."""
    return [f"s{i}" for i in range(count)]


def envelope_mutates(envelope: dict[str, Any]) -> bool:
    """Whether this request envelope can change cluster state.

    Only ``send`` envelopes carrying a non-lookup message mutate (all
    other ops are reads or control plane).  Works on both wire forms
    of the message — the JSON tagged dict and the live
    :class:`~repro.cluster.messages.Message` a binary frame decodes
    to — without paying for a full decode.  Malformed envelopes are
    classified as non-mutating so local dispatch produces the error.
    """
    if envelope.get("op") != "send":
        return False
    message = envelope.get("message")
    if isinstance(message, Message):
        return message.category is not MessageCategory.LOOKUP
    if isinstance(message, dict):
        return message.get("type") != "LookupRequest"
    return False


def _profile_wire(profile: Optional[LookupProfile]) -> dict[str, Any]:
    """A strategy's lookup profile in wire form (see ``docs/protocols.md``)."""
    if profile is None:
        return {"order": "random", "max_servers": None}
    order: Any = profile.order
    if not isinstance(order, str):
        order = {"stride": order.y}
    return {"order": order, "max_servers": profile.max_servers}


class LookupService:
    """The hosted cluster plus the envelope dispatch loop.

    Parameters
    ----------
    config:
        Topology and scheme selection; see :class:`ServiceConfig`.

    Each configured scheme is created under ``key == scheme name`` and
    immediately placed with the same ``entry_count`` entries, so the
    service is query-ready as soon as the socket is listening.
    """

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        self.config = config if config is not None else ServiceConfig()
        #: Append-log journal when ``store == "log"``; None on memory.
        self.journal: Optional[Any] = None
        #: True when this process rebuilt its stores from the journal
        #: instead of placing entries fresh.
        self.recovered = False
        #: Highest writer-bus epoch the journal knew at recovery; a
        #: reader's :class:`~repro.net.workers.DeltaApplier` starts
        #: here instead of zero, so it resyncs only the gap.
        self.recovered_epoch = 0
        store_factory = None
        if self.config.store == "log":
            from repro.storage.appendlog import AppendLogJournal, LogBackend

            journal = AppendLogJournal(
                self.config.data_dir,
                read_only=self.config.store_read_only,
                compact_every=self.config.log_compact_records,
            )
            self.journal = journal

            def store_factory(key, server_id, interner):
                return LogBackend(journal, key, server_id, interner)

        self.cluster = Cluster(
            self.config.server_count,
            seed=self.config.seed,
            store_factory=store_factory,
        )
        self.strategies: dict[str, PlacementStrategy] = {}
        self.shard_name = f"s{self.config.shard_index}"
        self.roles: dict[str, Optional[int]] = {}
        #: Attached by :class:`~repro.net.membership.MembershipPump`
        #: (or a sans-IO stand-in in tests); None in single-shard runs.
        self.membership: Optional[Any] = None
        self.metrics = MetricsRegistry()
        #: Hot-key reply cache (see :mod:`repro.net.cache`); None when
        #: disabled.  Per-scheme mutation epochs stamp its entries.
        self.reply_cache: Optional[ReplyCache] = (
            ReplyCache(self.config.cache_size) if self.config.cache_size else None
        )
        self._epochs: dict[str, int] = {}
        #: Cross-process shared reply cache (attached by the worker
        #: fleet; see :mod:`repro.net.workers`).  None everywhere else.
        self.shared_cache: Optional[SharedReplyCache] = None
        #: Per-scheme *bus-derived* epochs stamping shared-cache
        #: entries: the writer-bus epoch of the scheme's last applied
        #: delta.  Unlike ``_epochs`` (a process-local mutation count),
        #: these mean the same thing in every worker, which is what
        #: makes a cross-process stamp match a proof of identical
        #: store state.  Maintained by the bus/delta plumbing via
        #: :meth:`set_shared_epoch`.
        self._shared_epochs: dict[str, int] = {}
        #: Worker-fleet placement (set by :mod:`repro.net.workers`);
        #: the defaults describe a plain single-process serve.
        self.worker_index = 0
        self.worker_count = 1
        self.worker_role = "single"
        #: Reader workers forward mutating envelopes through this
        #: (a :class:`~repro.net.workers.WriteForwarder`); None means
        #: mutations are applied locally.
        self.forwarder: Optional[Any] = None
        entries = make_entries(self.config.entry_count)
        shard_map = (
            ShardMap(shard_names(self.config.shard_count), probes=self.config.probes)
            if self.config.shard_count > 1
            else None
        )
        # Crash recovery: replay the journal before any strategy is
        # constructed, so dense interner indices, store order, strategy
        # scratch state and the cluster RNG are all back to the crashed
        # process's values first.
        image = None
        if self.journal is not None and self.journal.has_data():
            from repro.storage.appendlog import apply_image

            loaded = self.journal.load()
            if not loaded.is_empty():
                apply_image(loaded, self.cluster, journal=self.journal)
                image = loaded
                self.recovered = True
                self.recovered_epoch = max(loaded.epochs.values(), default=0)
                self._shared_epochs.update(loaded.epochs)
        for name, params in self.config.schemes.items():
            # Every shard creates every strategy (so ``info`` reports a
            # homogeneous scheme catalogue fleet-wide) but places
            # entries only per its role: the primary holds the full
            # set, backups a deterministic partial replica, non-home
            # shards nothing (their servers truthfully answer empty).
            effective = dict(params)
            recovered_key = image is not None and (
                name in image.stores or name in image.params
            )
            if image is not None and name in image.params:
                # The journaled *effective* params (e.g. Hash-y's drawn
                # hash_seed) reconstruct the strategy without consuming
                # RNG, so recovery cannot perturb the random stream.
                effective = dict(image.params[name])
            strategy = create_strategy(name, self.cluster, key=name, **effective)
            role = (
                0
                if shard_map is None
                else shard_map.role(name, self.shard_name, self.config.replicas)
            )
            self.roles[name] = role
            if not recovered_key:
                if role == 0:
                    strategy.place(entries)
                elif role is not None:
                    strategy.place(
                        partial_replica(
                            name, entries, role, self.config.backup_fraction
                        )
                    )
            self.strategies[name] = strategy
        if self.journal is not None and not self.config.store_read_only:
            self._journal_boot_records()
        self._server: Optional[asyncio.base_events.Server] = None
        self._connections: set[asyncio.Task] = set()

    # -- envelope dispatch ---------------------------------------------------

    def handle_envelope(
        self, envelope: dict[str, Any], *, raw: bool = False
    ) -> dict[str, Any]:
        """Process one request envelope; returns the reply envelope.

        Pure dispatch — no I/O — so tests can drive the service
        without sockets exactly as the connection loop does.  A
        request ``id`` (int or str) is echoed verbatim on the reply —
        pipelining clients correlate out-of-order responses by it.

        ``raw=True`` leaves ``send`` reply values as live
        :class:`~repro.cluster.messages.Message` objects instead of
        JSON-tagged dicts — valid only when the reply goes out on a
        binary connection (whose packer encodes them natively) or
        stays in-process; the JSON encoder cannot carry them.
        """
        reply = self._dispatch(envelope, raw)
        return self._echo_id(envelope, reply)

    @staticmethod
    def _echo_id(envelope: dict[str, Any], reply: dict[str, Any]) -> dict[str, Any]:
        request_id = envelope.get("id")
        if isinstance(request_id, (int, str)) and not isinstance(request_id, bool):
            reply["id"] = request_id
        return reply

    async def handle_envelope_async(
        self, envelope: dict[str, Any], *, raw: bool = False
    ) -> dict[str, Any]:
        """:meth:`handle_envelope`, plus writer forwarding when attached.

        In a worker fleet, reader workers answer every read locally
        but must ship mutating ops to the single writer (worker 0);
        this is the dispatch point that splits the two.  With no
        forwarder attached (the single-process case, and the writer
        itself) it is exactly the synchronous path.
        """
        if self.forwarder is not None:
            if envelope_mutates(envelope):
                return self._echo_id(envelope, await self._forward(envelope))
            if envelope.get("op") == "batch":
                requests = envelope.get("requests")
                if isinstance(requests, list) and any(
                    isinstance(sub, dict) and envelope_mutates(sub)
                    for sub in requests
                ):
                    reply = await self._handle_batch_async(envelope, raw)
                    return self._echo_id(envelope, reply)
        return self.handle_envelope(envelope, raw=raw)

    async def _forward(self, envelope: dict[str, Any]) -> dict[str, Any]:
        """Ship one mutating envelope to the writer; returns its reply.

        The reply (and its value) is JSON-shaped regardless of the
        connection codec — the writer pipe speaks JSON — which is fine
        for mutation acks (they carry scalars, not entry lists).
        """
        try:
            return await self.forwarder.forward(envelope)
        except (ConnectionError, OSError, asyncio.TimeoutError) as exc:
            return {
                "ok": False,
                "error": "unavailable",
                "detail": f"writer worker unreachable: {exc}",
            }

    def _dispatch(self, envelope: dict[str, Any], raw: bool = False) -> dict[str, Any]:
        op = envelope.get("op")
        try:
            if op == "ping":
                return {"ok": True, "value": "pong"}
            if op == "info":
                return {"ok": True, "value": self.info()}
            if op == "send":
                return self._handle_send(envelope, raw)
            if op == "verify":
                return self._handle_verify(envelope)
            if op == "heartbeat":
                return self._handle_heartbeat(envelope)
            if op == "membership":
                return {"ok": True, "value": self.membership_view()}
            if op == "hello":
                return self._handle_hello(envelope)
            if op == "batch":
                return self._handle_batch(envelope, raw)
            return {
                "ok": False,
                "error": "bad-request",
                "detail": f"unknown op: {op!r}",
            }
        except (WireError, KeyError, TypeError, ValueError) as exc:
            return {"ok": False, "error": "bad-request", "detail": str(exc)}
        except Exception as exc:  # noqa: BLE001 - protocol error boundary
            return {"ok": False, "error": "internal", "detail": str(exc)}

    def capabilities(self) -> dict[str, Any]:
        """What this service speaks, as advertised by ``hello``/``info``.

        The ``cache`` block carries the live reply-cache counters (so
        one ``info`` call doubles as a cache-stats probe) and the
        ``workers`` block this process's place in the worker fleet —
        per-process values: each worker owns its own cache.
        """
        cache = self.reply_cache
        cache_caps: dict[str, Any] = {"enabled": cache is not None}
        if cache is not None:
            cache_caps.update(cache.snapshot())
            cache.publish(self.metrics)
        shared = self.shared_cache
        shared_caps: dict[str, Any] = {"enabled": shared is not None}
        if shared is not None:
            shared_caps.update(shared.snapshot())
            shared.publish(self.metrics)
        cache_caps["shared"] = shared_caps
        storage_caps: dict[str, Any] = {
            "kind": self.config.store,
            "recovered": self.recovered,
        }
        if self.journal is not None:
            storage_caps.update(self.journal.stats())
            self._publish_storage_metrics()
        return {
            "codecs": list(SUPPORTED_CODECS),
            "batch": True,
            "max_batch": MAX_BATCH,
            "cache": cache_caps,
            "storage": storage_caps,
            "workers": {
                "count": self.worker_count,
                "index": self.worker_index,
                "role": self.worker_role,
            },
        }

    def _publish_storage_metrics(self) -> None:
        """Mirror the journal's bookkeeping into the metrics registry."""
        stats = self.journal.stats()
        self.metrics.gauge("storage_log_records").set(stats["log_records"])
        self.metrics.gauge("storage_log_bytes").set(stats["log_bytes"])
        self.metrics.gauge("storage_compactions").set(stats["compactions"])
        self.metrics.gauge("storage_last_compaction_epoch").set(
            stats["last_compaction_epoch"]
        )
        self.metrics.gauge("storage_recovered").set(1 if self.recovered else 0)

    def _handle_hello(self, envelope: dict[str, Any]) -> dict[str, Any]:
        offered = envelope.get("codecs")
        if offered is not None and (
            not isinstance(offered, list)
            or not all(isinstance(c, str) for c in offered)
        ):
            return {
                "ok": False,
                "error": "bad-request",
                "detail": "codecs must be a list of codec names",
            }
        value = self.capabilities()
        value["codec"] = negotiate_codec(offered)
        return {"ok": True, "value": value}

    def _check_batch(self, envelope: dict[str, Any]) -> Optional[dict[str, Any]]:
        requests = envelope.get("requests")
        if not isinstance(requests, list):
            return {
                "ok": False,
                "error": "bad-request",
                "detail": "batch requests must be a list of envelopes",
            }
        if len(requests) > MAX_BATCH:
            return {
                "ok": False,
                "error": "bad-request",
                "detail": f"batch of {len(requests)} exceeds max_batch {MAX_BATCH}",
            }
        return None

    def _batch_sub(self, sub: Any, raw: bool) -> Any:
        """One batch item's reply (or prepacked bytes on the raw path)."""
        if not isinstance(sub, dict):
            return {
                "ok": False,
                "error": "bad-request",
                "detail": "batch item must be an envelope dict",
            }
        if sub.get("op") == "batch":
            return {
                "ok": False,
                "error": "bad-request",
                "detail": "batch envelopes do not nest",
            }
        if raw and sub.get("op") == "send":
            # The binary-connection hot path: an ok send reply is
            # packed to its final wire bytes right here, so the
            # frame encoder later splices it instead of walking
            # the reply dict again.
            reply = self._dispatch(sub, True)
            request_id = sub.get("id")
            has_id = isinstance(request_id, (int, str)) and not isinstance(
                request_id, bool
            )
            if (
                has_id
                and type(request_id) is int
                and request_id >= 0
                and reply.get("ok")
            ):
                return pack_send_reply(request_id, reply["value"])
            if has_id:
                reply["id"] = request_id
            return reply
        # handle_envelope (not _dispatch) so each sub-reply
        # echoes its own request id for correlation.
        return self.handle_envelope(sub, raw=raw)

    def _handle_batch(
        self, envelope: dict[str, Any], raw: bool = False
    ) -> dict[str, Any]:
        bad = self._check_batch(envelope)
        if bad is not None:
            return bad
        replies = [self._batch_sub(sub, raw) for sub in envelope["requests"]]
        return {"ok": True, "value": replies}

    async def _handle_batch_async(
        self, envelope: dict[str, Any], raw: bool
    ) -> dict[str, Any]:
        """The batch op with mutating items routed through the writer.

        Reads are answered locally (same prepacked fast path as the
        sync loop); mutating sends await the writer round-trip, which
        also applies the resulting delta here before the sub-reply is
        emitted — a client that mutates and reads in one batch sees
        its own write.
        """
        bad = self._check_batch(envelope)
        if bad is not None:
            return bad
        replies: list[Any] = []
        for sub in envelope["requests"]:
            if isinstance(sub, dict) and envelope_mutates(sub):
                replies.append(self._echo_id(sub, await self._forward(sub)))
            else:
                replies.append(self._batch_sub(sub, raw))
        return {"ok": True, "value": replies}

    def info(self) -> dict[str, Any]:
        """The ``info`` op: topology plus per-scheme lookup profiles."""
        schemes = {}
        for name, strategy in self.strategies.items():
            schemes[name] = {
                "params": dict(self.config.schemes[name]),
                "profile": _profile_wire(strategy.lookup_profile()),
            }
        return {
            "servers": self.cluster.size,
            "entries": self.config.entry_count,
            "seed": self.config.seed,
            "schemes": schemes,
            "capabilities": self.capabilities(),
            "shard": {
                "name": self.shard_name,
                "index": self.config.shard_index,
                "count": self.config.shard_count,
                "replicas": self.config.replicas,
                "backup_fraction": self.config.backup_fraction,
                "probes": self.config.probes,
                "roles": dict(self.roles),
            },
        }

    def membership_view(self) -> dict[str, Any]:
        """The ``membership`` op: this shard's current peer view.

        An unsharded service reports the one-row view of itself, so
        a :class:`~repro.net.router.ShardRouter` pointed at a single
        process still gets a well-formed answer.
        """
        if self.membership is None:
            return {
                "name": self.shard_name,
                "incarnation": 0,
                "view": [[self.shard_name, "alive", 0]],
            }
        return self.membership.view_wire()

    def _handle_heartbeat(self, envelope: dict[str, Any]) -> dict[str, Any]:
        if self.membership is None:
            return {
                "ok": False,
                "error": "bad-request",
                "detail": "service has no membership plane (not sharded)",
            }
        heartbeat = decode_heartbeat(envelope["message"])
        reply = self.membership.on_wire_heartbeat(heartbeat)
        return {"ok": True, "value": encode_message(reply)}

    # -- mutation epochs and the reply cache ---------------------------------

    def mutation_epoch(self, key: str) -> int:
        """The per-scheme mutation epoch cache entries are stamped with."""
        return self._epochs.get(key, 0)

    def note_mutation(self, key: str) -> None:
        """Record that ``key``'s stores are (about to be) changed.

        Bumps the scheme's epoch and eagerly drops its cached replies.
        Called *before* a mutating message is applied, so even a
        mutation that dies half-way can never leave a pre-mutation
        reply reachable; and called by the worker delta/resync path
        when an external mutation lands.
        """
        self._epochs[key] = self._epochs.get(key, 0) + 1
        if self.reply_cache is not None:
            self.reply_cache.invalidate(key)

    def flush_cache(self) -> None:
        """Drop every cached reply (e.g. after out-of-band store edits).

        Local only: shared-cache entries are epoch-stamped with
        bus-assigned values, so a resync makes this process's stamps
        move instead of clearing the segment other workers still use.
        """
        if self.reply_cache is not None:
            self.reply_cache.clear()

    # -- durable storage -----------------------------------------------------

    def _journal_boot_records(self) -> None:
        """Journal the non-store boot state: params, scratch, RNG.

        Store contents were already journaled record-by-record by the
        :class:`~repro.storage.appendlog.LogBackend` mutators as
        placement ran (or were replayed, on a recovery boot, in which
        case every record here dedupes to nothing).
        """
        journal = self.journal
        journal.record_params(
            {name: strategy.params() for name, strategy in self.strategies.items()}
        )
        for server in self.cluster.servers:
            for key in server.keys():
                journal.record_state(key, server.server_id, server.state(key))
        journal.record_rng(self.cluster.rng)

    def _journal_sync_point(self, key: str) -> None:
        """Re-journal ``key``'s volatile state after a mutation landed.

        The store delta itself was already appended synchronously by
        the backend; this adds what replay cannot re-derive — strategy
        scratch state (Round-Robin counters, reservoir estimates) and
        the cluster RNG position — then compacts if the log is due.
        Both record kinds dedupe, so an unchanged state costs nothing.
        """
        journal = self.journal
        if journal is None or journal.read_only:
            return
        for server in self.cluster.servers:
            if key in server.keys():
                journal.record_state(key, server.server_id, server.state(key))
        journal.record_rng(self.cluster.rng)
        if journal.should_compact():
            self.compact_journal()

    def compact_journal(self) -> None:
        """Fold the journal's live logs into one snapshot, now."""
        if self.journal is None or self.journal.read_only:
            return
        from repro.storage.appendlog import build_image

        image = build_image(
            self.cluster,
            epochs=dict(self._shared_epochs),
            params={
                name: strategy.params()
                for name, strategy in self.strategies.items()
            },
        )
        self.journal.compact(
            image, epoch=max(self._shared_epochs.values(), default=0)
        )

    def set_shared_epoch(self, key: str, epoch: int) -> None:
        """Adopt the writer-bus epoch of ``key``'s last applied delta.

        Called by the fleet plumbing (bus apply, delta apply, resync)
        — never by local mutation bookkeeping.  A shared-cache entry
        is served only when its stamp equals this value, so two
        workers agree on an entry exactly when they have applied the
        same delta prefix for the scheme.
        """
        self._shared_epochs[key] = epoch

    def shared_epoch(self, key: str) -> int:
        """The bus-derived epoch shared-cache entries stamp for ``key``."""
        return self._shared_epochs.get(key, 0)

    # -- warm handoff (worker fleet) -----------------------------------------

    def export_hot_set(self, limit: int = 256) -> list[dict[str, Any]]:
        """The local cache's live hot rows, wire-shaped for the writer bus.

        MRU-first, only rows still stamped with their scheme's current
        epoch (a stale row would be dropped on import anyway).  Binary
        bodies travel base64-wrapped — the bus speaks JSON.
        """
        if self.reply_cache is None:
            return []
        rows: list[dict[str, Any]] = []
        for key, stamp, payload in self.reply_cache.export_hot(limit):
            if not (isinstance(key, tuple) and len(key) == 5):
                continue
            scheme = key[2]
            if stamp != self._epochs.get(scheme, 0):
                continue
            body: Any
            if key[0] == CODEC_BINARY:
                raw_body = (
                    payload.data
                    if isinstance(payload, Prepacked)
                    else bytes(payload)
                )
                body = base64.b64encode(raw_body).decode("ascii")
            else:
                body = payload  # already JSON-shaped
            rows.append({"slot": list(key), "body": body})
        return rows

    def import_hot_set(self, rows: Any) -> int:
        """Adopt a warm-handoff hot set into the local cache; row count.

        The caller guarantees the rows describe this process's
        *current* store state (the fleet ships them in the same
        ``sync_reply`` as the snapshot and applies both without
        yielding), so entries are stamped with the current epochs.
        Malformed rows are skipped — the handoff is best-effort.
        """
        cache = self.reply_cache
        if cache is None or not isinstance(rows, list):
            return 0
        imported = 0
        for row in reversed(rows):  # hottest rows land most-recent
            if not isinstance(row, dict):
                continue
            slot = row.get("slot")
            if not (isinstance(slot, list) and len(slot) == 5):
                continue
            codec, op, scheme, server, target = slot
            if scheme not in self.strategies:
                continue
            body = row.get("body")
            payload: Any
            if codec == CODEC_BINARY:
                if not isinstance(body, str):
                    continue
                try:
                    payload = Prepacked(base64.b64decode(body.encode("ascii")))
                except ValueError:
                    continue
            else:
                payload = body
            cache.put(
                (codec, op, scheme, server, target),
                self._epochs.get(scheme, 0),
                payload,
            )
            imported += 1
        return imported

    def _cache_slot(
        self, server_id: int, key: str, message: Message, raw: bool
    ) -> Optional[tuple]:
        """The cache key for this lookup, or None when not cacheable.

        Only the RNG-free lookup shape is cacheable (see
        :mod:`repro.net.cache`): a plain :class:`LookupRequest` whose
        target is zero/negative or covers the server's whole store, on
        a live server, with no fault plan installed (fault injection
        consumes RNG and may drop/duplicate — never short-circuit it).
        """
        if type(message) is not LookupRequest:
            return None
        if self.cluster.network.fault_injector is not None:
            return None
        server = self.cluster.servers[server_id]
        if not server.alive:
            return None
        if 0 < message.target < server.stored_entry_count(key):
            return None  # RNG-sampled answer: not deterministic
        codec = CODEC_BINARY if raw else CODEC_JSON
        return (codec, "send", key, server_id, message.target)

    def _handle_send(
        self, envelope: dict[str, Any], raw: bool = False
    ) -> dict[str, Any]:
        server_id = envelope["server"]
        key = envelope["key"]
        if not isinstance(server_id, int) or not 0 <= server_id < self.cluster.size:
            return {
                "ok": False,
                "error": "bad-request",
                "detail": f"server id out of range: {server_id!r}",
            }
        if key not in self.strategies:
            return {
                "ok": False,
                "error": "bad-request",
                "detail": f"unknown scheme key: {key!r}",
            }
        message = decode_message(envelope["message"])
        network = self.cluster.network
        cache = self.reply_cache
        # The shared segment holds packed binary bodies only; a JSON
        # connection keeps the per-process cache to itself.
        shared = self.shared_cache if raw else None
        slot = None
        if message.category is not MessageCategory.LOOKUP:
            # Invalidate-before-apply: no post-mutation request may
            # ever see a pre-mutation cached reply, even if the
            # handler raises half-way through.
            self.note_mutation(key)
        elif cache is not None or shared is not None:
            slot = self._cache_slot(server_id, key, message, raw)
            if slot is not None:
                if cache is not None:
                    epoch = self._epochs.get(key, 0)
                    payload = cache.get(slot, epoch)
                    if payload is not None:
                        self._book_cached_send(network, server_id, message)
                        return {"ok": True, "value": payload}
                if shared is not None:
                    body = shared.get(slot, self._shared_epochs.get(key, 0))
                    if body is not None:
                        payload = Prepacked(body)
                        if cache is not None:
                            # Promote: later hits on this worker skip
                            # the segment probe and body copy.
                            cache.put(slot, self._epochs.get(key, 0), payload)
                        self._book_cached_send(network, server_id, message)
                        return {"ok": True, "value": payload}
        reply = network.send(server_id, key, message)
        if message.category is not MessageCategory.LOOKUP:
            # The store mutations are already on disk (the backend
            # journals inline); persist the strategy counters and the
            # RNG position they advanced to.
            self._journal_sync_point(key)
        if is_undelivered(reply):
            code = "dropped" if reply is DROPPED else "unavailable"
            return {
                "ok": False,
                "error": code,
                "detail": f"server {server_id} did not process the message",
            }
        if slot is not None:
            # Pack once, serve many: the cached payload is already in
            # its wire form, so later hits are splice/memcpy-only.
            payload = Prepacked(pack_value_bytes(reply)) if raw else encode_value(reply)
            if cache is not None:
                cache.put(slot, self._epochs.get(key, 0), payload)
            if shared is not None:
                # No awaits separate the send above from this fill, so
                # the stamp still matches the state the reply saw.
                shared.put(slot, self._shared_epochs.get(key, 0), payload.data)
            return {"ok": True, "value": payload}
        return {"ok": True, "value": reply if raw else encode_value(reply)}

    @staticmethod
    def _book_cached_send(
        network: Any, server_id: int, message: Message
    ) -> None:
        # A cache hit must keep the Section 6.4 books identical to the
        # uncached path: the message *was* served.
        network.stats.record(server_id, message)
        if network._message_log is not None:
            network._message_log.append((server_id, type(message).__name__))

    def _handle_verify(self, envelope: dict[str, Any]) -> dict[str, Any]:
        key = envelope["key"]
        strategy = self.strategies.get(key)
        if strategy is None:
            return {
                "ok": False,
                "error": "bad-request",
                "detail": f"unknown scheme key: {key!r}",
            }
        return {
            "ok": True,
            "value": {
                "coverage": strategy.coverage(),
                "storage_cost": strategy.storage_cost(),
                "entry_count": self.config.entry_count,
                "operational": sum(1 for s in self.cluster.servers if s.alive),
            },
        }

    # -- the socket face -----------------------------------------------------

    async def handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Serve one client connection: a frame in, a frame out, repeat.

        Replies start out JSON-framed; after a successful ``hello``
        negotiation this connection's replies switch to the agreed
        codec (the hello reply itself is still sent in the codec the
        connection was using, so the client knows the switch point).
        """
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        codec = CODEC_JSON
        try:
            while True:
                try:
                    envelope = await read_frame(reader)
                except WireError:
                    # The frame was well-formed but its content was
                    # not decodable (unknown message type, bad tag
                    # payload): the stream is still in sync, so answer
                    # and keep serving.
                    await write_frame(
                        writer,
                        {
                            "ok": False,
                            "error": "bad-request",
                            "detail": "undecodable frame body",
                        },
                        codec=codec,
                    )
                    continue
                except FrameError:
                    break
                if envelope is None:
                    break
                reply = await self.handle_envelope_async(
                    envelope, raw=codec == CODEC_BINARY
                )
                if codec == CODEC_BINARY:
                    # Zero-copy path: cached/prepacked bodies are
                    # spliced into the frame's buffer list and the
                    # whole reply goes out in one writelines+drain.
                    await write_frames(
                        writer, (encode_envelope_fragments(reply),)
                    )
                else:
                    await write_frame(writer, reply, codec=codec)
                if envelope.get("op") == "hello" and reply.get("ok"):
                    codec = reply["value"]["codec"]
        except (ConnectionError, OSError):
            pass
        except asyncio.CancelledError:
            # Absorb the stop()-issued cancel and finish normally:
            # 3.11's stream done-callback calls task.exception() on a
            # cancelled handler and logs spurious noise otherwise.
            pass
        finally:
            if task is not None:
                self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def start(
        self, host: str = "127.0.0.1", port: int = 0, *, sock: Any = None
    ) -> tuple[str, int]:
        """Bind and begin serving; returns the bound (host, port).

        ``port=0`` binds an ephemeral port — the CI smoke job and the
        benchmarks use this to avoid port collisions, reading the real
        port from the return value (or the ``--ready-file`` at the CLI).
        ``sock`` serves an already-bound listening socket instead —
        the worker fleet uses this to put every worker's acceptor on
        one ``SO_REUSEPORT`` port (see :mod:`repro.net.workers`).
        """
        if self._server is not None:
            raise RuntimeError("service already started")
        if sock is not None:
            self._server = await asyncio.start_server(
                self.handle_connection, sock=sock
            )
        else:
            self._server = await asyncio.start_server(
                self.handle_connection, host=host, port=port
            )
        sockname = self._server.sockets[0].getsockname()
        return sockname[0], sockname[1]

    async def serve_forever(self) -> None:
        if self._server is None:
            raise RuntimeError("service not started")
        await self._server.serve_forever()

    async def stop(self) -> None:
        """Stop listening and tear down any live connections."""
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        self._server = None
        # start_server's handler tasks are not awaited by wait_closed
        # (until 3.12's close_clients); cancel and reap them here so a
        # stopped service leaves no dangling tasks behind.
        connections = list(self._connections)
        self._connections.clear()
        for task in connections:
            task.cancel()
        await asyncio.gather(*connections, return_exceptions=True)


__all__ = [
    "DEFAULT_SCHEMES",
    "MAX_BATCH",
    "LookupService",
    "ServiceConfig",
    "envelope_mutates",
    "shard_names",
]
