"""Kill-a-shard chaos: a real fleet, a real SIGKILL, a real rejoin.

The in-process chaos harness (:mod:`repro.chaos.harness`) attacks one
placement with simulated faults; this module attacks the *deployment*:
it boots N ``repro serve --shard i/N`` subprocesses, drives routed
lookups through a :class:`~repro.net.router.ShardRouter`, SIGKILLs one
shard mid-traffic, and asserts the failover contract end to end:

1. **During the outage** every lookup whose primary died comes back
   *degraded* — short but non-empty and correctly labelled — never an
   exception, never a hang (all contacts are timeout-bounded), and
   never wrong (entries always come from the placed universe).
2. Keys whose primary survived are **unaffected**: full answers,
   before, during, and after.
3. After the shard restarts (higher incarnation), the failure
   detectors move it dead → quarantined → alive, and once re-admitted
   the fleet serves **full answers for every key** again.

Everything observable is returned in a report dict so the CI smoke
(``scripts/shard_chaos_smoke.py``) can both assert and archive it.
Ports are pre-allocated in the parent so every shard can be told its
peers' addresses at boot; the window between probing and binding is
the usual ephemeral-port race, acceptable for a test harness.
"""

from __future__ import annotations

import asyncio
import os
import random
import signal
import socket
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import contextlib

from repro.cluster.messages import AddRequest, LookupRequest
from repro.core.entry import Entry
from repro.net.client import AsyncLookupClient
from repro.net.codec import decode_value, encode_message, read_frame, write_frame
from repro.net.router import ShardRouter
from repro.net.sharding import ShardMap

#: Fast failure-detection timings for the scenario (seconds).  Small
#: enough that the whole kill/detect/rejoin cycle fits in a CI smoke,
#: large enough to be robust on a loaded runner.
FAST_TIMINGS = {
    "heartbeat_interval": 0.1,
    "suspect_after": 0.6,
    "dead_after": 1.2,
    "quarantine": 0.8,
}


class ScenarioError(AssertionError):
    """A kill-a-shard invariant was violated."""


def free_ports(count: int) -> List[int]:
    """Reserve ``count`` distinct ephemeral ports, then release them."""
    sockets = []
    try:
        for _ in range(count):
            sock = socket.socket()
            sock.bind(("127.0.0.1", 0))
            sockets.append(sock)
        return [sock.getsockname()[1] for sock in sockets]
    finally:
        for sock in sockets:
            sock.close()


@dataclass
class ShardFleet:
    """N ``repro serve`` shard subprocesses with a shared peer map.

    Parameters mirror the service defaults; ``timings`` feeds the
    failure-detection flags.  The fleet object is synchronous (plain
    subprocess management); only the router traffic is async.
    """

    shard_count: int = 3
    servers: int = 12
    entries: int = 30
    seed: int = 5
    replicas: int = 2
    backup_fraction: float = 0.25
    timings: Dict[str, float] = field(default_factory=lambda: dict(FAST_TIMINGS))
    host: str = "127.0.0.1"
    #: Worker processes per shard (``serve --workers N``).  The CLI
    #: rejects ``--workers`` + ``--peers``, so a multi-worker fleet is
    #: only valid with ``shard_count == 1`` (one fleet, no membership
    #: plane) — that is the shape ``run_kill_worker_scenario`` attacks.
    workers: int = 1
    #: Storage backend (``serve --store``): ``"memory"`` (default) or
    #: ``"log"``.  With ``"log"`` each shard gets a stable per-name
    #: data directory under the fleet tmpdir, so a restarted shard
    #: replays its own journal — the surface
    #: ``run_fleet_restart_scenario`` attacks.
    store: str = "memory"
    #: Override for the journal root; ``None`` uses the fleet tmpdir.
    data_dir: Optional[str] = None

    def __post_init__(self) -> None:
        ports = free_ports(self.shard_count)
        self.addresses: Dict[str, Tuple[str, int]] = {
            f"s{i}": (self.host, ports[i]) for i in range(self.shard_count)
        }
        self.processes: Dict[str, subprocess.Popen] = {}
        self.incarnations: Dict[str, int] = {
            name: 1 for name in self.addresses
        }
        self._tmpdir = tempfile.TemporaryDirectory(prefix="shard-fleet-")

    # -- process management --------------------------------------------------

    def shard_data_dir(self, name: str) -> str:
        """Stable journal directory for shard ``name`` (survives restarts)."""
        root = self.data_dir or self._tmpdir.name
        path = os.path.join(root, f"{name}-data")
        os.makedirs(path, exist_ok=True)
        return path

    def _peer_flag(self, name: str) -> str:
        return ",".join(
            f"{peer}={host}:{port}"
            for peer, (host, port) in sorted(self.addresses.items())
            if peer != name
        )

    def spawn(self, name: str) -> subprocess.Popen:
        index = int(name[1:])
        host, port = self.addresses[name]
        ready = os.path.join(self._tmpdir.name, f"{name}.ready")
        if os.path.exists(ready):
            os.unlink(ready)
        command = [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--host", host,
            "--port", str(port),
            "--servers", str(self.servers),
            "--entries", str(self.entries),
            "--seed", str(self.seed),
            "--shard", f"{index}/{self.shard_count}",
            "--replicas", str(self.replicas),
            "--backup-fraction", str(self.backup_fraction),
            "--ready-file", ready,
        ]
        if self.workers > 1:
            command += ["--workers", str(self.workers)]
        if self.store != "memory":
            command += ["--store", self.store, "--data-dir", self.shard_data_dir(name)]
        if self.shard_count > 1:
            # The membership plane is one process per shard; a worker
            # fleet (workers > 1) runs without it (the CLI enforces
            # the combination is rejected).
            command += [
                "--peers", self._peer_flag(name),
                "--incarnation", str(self.incarnations[name]),
                "--heartbeat-interval", str(self.timings["heartbeat_interval"]),
                "--suspect-after", str(self.timings["suspect_after"]),
                "--dead-after", str(self.timings["dead_after"]),
                "--quarantine", str(self.timings["quarantine"]),
            ]
        process = subprocess.Popen(
            command,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        self.processes[name] = process
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            if process.poll() is not None:
                output = process.stdout.read() if process.stdout else ""
                raise ScenarioError(
                    f"shard {name} exited {process.returncode} at boot:\n{output}"
                )
            if os.path.exists(ready) and os.path.getsize(ready) > 0:
                return process
            time.sleep(0.05)
        raise ScenarioError(f"shard {name} never became ready")

    def start(self) -> None:
        for name in sorted(self.addresses):
            self.spawn(name)

    def kill(self, name: str) -> None:
        """SIGKILL — no goodbye, exactly what a failure detector is for."""
        process = self.processes[name]
        process.kill()
        process.wait()

    def restart(self, name: str) -> None:
        """Boot a fresh incarnation of a killed shard on the same port."""
        self.incarnations[name] += 1
        self.spawn(name)

    def worker_manifest(self, name: str) -> Dict[int, int]:
        """The worker pid manifest (``index -> pid``) for shard ``name``.

        ``serve --workers N`` maintains ``<ready-file>.workers`` with
        one ``index pid`` line per live worker and rewrites it on
        every respawn; this is how an external supervisor (or a chaos
        scenario) finds a specific worker to kill and observes its
        replacement arrive.
        """
        path = os.path.join(self._tmpdir.name, f"{name}.ready.workers")
        pids: Dict[int, int] = {}
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                index_text, pid_text = line.split()
                pids[int(index_text)] = int(pid_text)
        return pids

    def stop_all(self) -> None:
        for process in self.processes.values():
            if process.poll() is None:
                process.send_signal(signal.SIGTERM)
        for process in self.processes.values():
            try:
                process.wait(timeout=10)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait()
        self._tmpdir.cleanup()


# --------------------------------------------------------------------------
# The scenario
# --------------------------------------------------------------------------


async def _sweep(
    router: ShardRouter, keys: List[str], target: int
) -> Dict[str, Dict[str, object]]:
    """One routed lookup per key, as report rows."""
    rows: Dict[str, Dict[str, object]] = {}
    for key in keys:
        routed = await router.lookup(key, target)
        rows[key] = {
            "found": len(routed.entries),
            "target": target,
            "success": routed.success,
            "degraded": routed.degraded,
            "home": list(routed.home),
            "routed": list(routed.routed),
            "failover": routed.failover,
            "entries": sorted(e.entry_id for e in routed.entries),
        }
    return rows


async def _await_state(
    router: ShardRouter, shard: str, want: str, deadline: float
) -> None:
    while time.monotonic() < deadline:
        view = await router.membership_view(refresh=True)
        if view.get(shard) == want:
            return
        await asyncio.sleep(0.05)
    raise ScenarioError(f"shard {shard} never reached state {want!r}")


def _check_universe(rows: Dict[str, Dict[str, object]], entries: int) -> None:
    universe = {f"v{i}" for i in range(1, entries + 1)}
    for key, row in rows.items():
        ids = row["entries"]
        if len(ids) != len(set(ids)):
            raise ScenarioError(f"{key}: duplicate entries in one answer: {ids}")
        stray = set(ids) - universe
        if stray:
            raise ScenarioError(f"{key}: entries outside the universe: {stray}")


async def run_kill_shard_scenario(
    fleet: ShardFleet,
    *,
    target: int = 10,
    victim: Optional[str] = None,
    rng_seed: int = 11,
) -> Dict[str, object]:
    """Drive the kill → degrade → rejoin → recover cycle; returns a report.

    Raises :class:`ScenarioError` on any invariant violation.  The
    fleet must already be started; it is not stopped here (callers own
    teardown, so a failing scenario can still archive process output).
    """
    from repro.net.service import DEFAULT_SCHEMES

    keys = sorted(DEFAULT_SCHEMES)
    shard_map = ShardMap(list(fleet.addresses))
    primaries = {
        key: shard_map.home(key, fleet.replicas)[0] for key in keys
    }
    if victim is None:
        # Pick the shard that is primary for the most keys: maximal
        # blast radius makes the degraded assertions meaningful.
        by_load = sorted(
            fleet.addresses,
            key=lambda s: -sum(1 for p in primaries.values() if p == s),
        )
        victim = by_load[0]
    victim_keys = sorted(k for k, p in primaries.items() if p == victim)
    spared_keys = sorted(k for k, p in primaries.items() if p != victim)
    if not victim_keys or not spared_keys:
        raise ScenarioError(
            f"victim {victim} must be primary for some but not all keys "
            f"(primaries: {primaries})"
        )

    router = ShardRouter(
        fleet.addresses,
        replicas=fleet.replicas,
        rng=random.Random(rng_seed),
        timeout=2.0,
        view_ttl=0.2,
    )
    report: Dict[str, object] = {
        "victim": victim,
        "victim_keys": victim_keys,
        "spared_keys": spared_keys,
        "primaries": primaries,
    }
    try:
        detect_budget = (
            fleet.timings["dead_after"] + 10 * fleet.timings["heartbeat_interval"]
        )

        # Phase 1: healthy fleet, every key meets its target.
        await _await_state(
            router, victim, "alive", time.monotonic() + detect_budget + 10
        )
        healthy = await _sweep(router, keys, target)
        report["healthy"] = healthy
        _check_universe(healthy, fleet.entries)
        for key, row in healthy.items():
            if not row["success"]:
                raise ScenarioError(f"healthy fleet missed target for {key}: {row}")

        # Phase 2: SIGKILL the victim; survivors must condemn it.
        fleet.kill(victim)
        await _await_state(
            router, victim, "dead", time.monotonic() + detect_budget + 10
        )

        # Phase 3: outage traffic — degraded for the victim's keys,
        # full answers for everyone else's, zero errors or hangs.
        outage = await _sweep(router, keys, target)
        report["outage"] = outage
        _check_universe(outage, fleet.entries)
        for key in victim_keys:
            row = outage[key]
            if row["success"]:
                raise ScenarioError(
                    f"{key}: primary {victim} is dead but the lookup was full: {row}"
                )
            if not row["degraded"] or row["found"] == 0:
                raise ScenarioError(
                    f"{key}: outage lookup must be degraded-but-non-empty: {row}"
                )
            if victim in row["routed"]:
                raise ScenarioError(
                    f"{key}: router sent traffic to the dead shard: {row}"
                )
        for key in spared_keys:
            row = outage[key]
            if not row["success"]:
                raise ScenarioError(
                    f"{key}: primary {primaries[key]} survived but the "
                    f"lookup was short: {row}"
                )

        # Phase 4: restart (new incarnation) → quarantine → alive.
        fleet.restart(victim)
        rejoin_budget = detect_budget + fleet.timings["quarantine"] + 10
        await _await_state(
            router, victim, "alive", time.monotonic() + rejoin_budget
        )

        # Phase 5: recovered fleet serves full answers again.
        recovered = await _sweep(router, keys, target)
        report["recovered"] = recovered
        _check_universe(recovered, fleet.entries)
        for key, row in recovered.items():
            if not row["success"]:
                raise ScenarioError(
                    f"{key}: fleet recovered but the lookup is still short: {row}"
                )
    finally:
        await router.close()
    return report


# --------------------------------------------------------------------------
# Kill-a-worker: attack the multi-core fleet instead of the shard plane
# --------------------------------------------------------------------------


async def _worker_sweep(
    host: str,
    port: int,
    keys: List[str],
    target: int,
    *,
    rng_seed: int,
    attempts: int = 4,
) -> Dict[str, Dict[str, object]]:
    """One lookup per key, each on a *fresh* connection.

    Fresh connections matter: SO_REUSEPORT distributes connections
    across workers, so a sweep exercises more than one process.  A
    connection refused/reset during a kill window is retried (the
    kernel stops routing to a dead worker as soon as its listening
    socket closes); a *reply* that is short is never retried — that
    would hide a correctness bug behind the chaos.
    """
    rows: Dict[str, Dict[str, object]] = {}
    for attempt_key in keys:
        last: Optional[BaseException] = None
        for attempt in range(attempts):
            try:
                async with AsyncLookupClient(
                    host, port, rng=random.Random(rng_seed), timeout=5.0
                ) as client:
                    result = await client.lookup(attempt_key, target)
                break
            except (ConnectionError, OSError, asyncio.TimeoutError) as exc:
                last = exc
                await asyncio.sleep(0.25)
        else:
            raise ScenarioError(
                f"{attempt_key}: fleet unreachable after {attempts} attempts: {last}"
            )
        rows[attempt_key] = {
            "found": len(result.entries),
            "target": target,
            "success": result.success,
            "degraded": result.degraded,
            "entries": sorted(e.entry_id for e in result.entries),
        }
    return rows


async def _raw_send(
    host: str, port: int, server: int, key: str, message: object
) -> Dict[str, object]:
    """One ``send`` envelope on a throwaway JSON connection."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        await write_frame(
            writer,
            {
                "op": "send",
                "server": server,
                "key": key,
                "message": encode_message(message),
            },
        )
        reply = await asyncio.wait_for(read_frame(reader), 5.0)
    finally:
        writer.close()
        with contextlib.suppress(OSError):
            await writer.wait_closed()
    if not (isinstance(reply, dict) and reply.get("ok")):
        raise ScenarioError(f"send({key}, server {server}) failed: {reply!r}")
    return reply


async def _entry_visible(
    host: str, port: int, entry_id: str, *, key: str, server: int
) -> bool:
    reply = await _raw_send(host, port, server, key, LookupRequest(0))
    entries = decode_value(reply["value"])
    return entry_id in {entry.entry_id for entry in entries}


async def _await_entry_everywhere(
    host: str,
    port: int,
    entry_id: str,
    *,
    key: str,
    server: int,
    connections: int,
    deadline: float,
) -> int:
    """Wait until ``connections`` fresh connections in a row all see the entry.

    Each probe connection may land on any worker, so a full round of
    unanimous sightings is strong evidence the writer's delta reached
    every reader — and a single miss restarts the round (a reader may
    lag by one delta in flight, never serve a *stale cached* answer).
    """
    probes = 0
    while time.monotonic() < deadline:
        seen = 0
        for _ in range(connections):
            probes += 1
            if not await _entry_visible(
                host, port, entry_id, key=key, server=server
            ):
                break
            seen += 1
        if seen == connections:
            return probes
        await asyncio.sleep(0.1)
    raise ScenarioError(
        f"entry {entry_id!r} never became visible on {connections} "
        f"consecutive fresh connections"
    )


async def _hot_probe(
    host: str, port: int, key: str
) -> Tuple[int, Dict[str, object]]:
    """One fresh connection: a cacheable hot lookup, then an info probe.

    Returns ``(worker index, cache capabilities)`` for whichever fleet
    worker the connection landed on — the lookup goes first, so the
    returned counters include it.
    """
    reader, writer = await asyncio.open_connection(host, port)
    try:
        await write_frame(
            writer,
            {
                "op": "send",
                "server": 0,
                "key": key,
                "message": encode_message(LookupRequest(0)),
            },
        )
        reply = await asyncio.wait_for(read_frame(reader), 5.0)
        if not (isinstance(reply, dict) and reply.get("ok")):
            raise ScenarioError(f"hot-key probe lookup failed: {reply!r}")
        await write_frame(writer, {"op": "info"})
        info = await asyncio.wait_for(read_frame(reader), 5.0)
    finally:
        writer.close()
        with contextlib.suppress(OSError):
            await writer.wait_closed()
    caps = (info.get("value") or {}).get("capabilities") or {}
    index = (caps.get("workers") or {}).get("index")
    if not isinstance(index, int):
        raise ScenarioError(f"info probe reported no worker index: {caps}")
    return index, dict(caps.get("cache") or {})


async def _warm_hot_key(
    host: str, port: int, workers: int, key: str, deadline: float
) -> Dict[str, int]:
    """Probe fresh connections until every worker served the hot key twice.

    Twice per worker guarantees every process holds a *current-stamped*
    cache row (first contact fills, second hits) — in particular the
    writer, whose hot set is what a respawned reader will be handed.
    """
    served: Dict[str, int] = {str(index): 0 for index in range(workers)}
    while time.monotonic() < deadline:
        if all(count >= 2 for count in served.values()):
            return served
        index, _cache = await _hot_probe(host, port, key)
        served[str(index)] = served.get(str(index), 0) + 1
    raise ScenarioError(f"could not warm every worker's hot key: {served}")


async def _assert_warm_respawn(
    host: str, port: int, index: int, key: str, deadline: float
) -> Dict[str, object]:
    """The respawned reader's first hot lookup must be a warm hit."""
    while time.monotonic() < deadline:
        answered, cache = await _hot_probe(host, port, key)
        if answered != index:
            continue
        if not cache.get("hits"):
            raise ScenarioError(
                f"respawned worker {index} answered the previously-hot "
                f"key cold: {cache}"
            )
        return {
            "index": index,
            "hits": cache.get("hits"),
            "misses": cache.get("misses"),
            "hit_rate": cache.get("hit_rate"),
        }
    raise ScenarioError(
        f"fresh connections never reached respawned worker {index}"
    )


def _await_respawn(
    fleet: ShardFleet, name: str, index: int, old_pid: int, deadline: float
) -> int:
    while time.monotonic() < deadline:
        try:
            manifest = fleet.worker_manifest(name)
        except (OSError, ValueError):
            manifest = {}
        fresh = manifest.get(index)
        if fresh is not None and fresh != old_pid:
            return fresh
        time.sleep(0.05)
    raise ScenarioError(
        f"worker {index} (pid {old_pid}) was never respawned"
    )


async def run_kill_worker_scenario(
    fleet: ShardFleet,
    *,
    target: int = 10,
    rng_seed: int = 17,
    probe_connections: int = 6,
) -> Dict[str, object]:
    """Kill a reader worker (fleet survives), then the writer (fails loud).

    The fleet must be a single-shard ``workers >= 2`` deployment,
    already started.  Phases:

    1. healthy sweep — every scheme key meets its target through the
       worker fleet;
    2. a mutation sent over one connection becomes visible on fresh
       connections (i.e. on *other* workers: the single-writer delta
       fan-out works end to end);
    3. SIGKILL a reader worker — the fleet keeps answering in full and
       the supervisor respawns the reader (observed via the pid
       manifest);
    4. SIGKILL worker 0 (the writer) — the supervisor refuses to limp
       along without a mutation path and the whole ``serve`` process
       exits non-zero (fail loud, never fail stale).

    Returns a report dict; raises :class:`ScenarioError` on any
    violation.  After this scenario the fleet process has exited — the
    caller's ``stop_all`` becomes a no-op cleanup.
    """
    from repro.net.service import DEFAULT_SCHEMES

    if fleet.shard_count != 1 or fleet.workers < 2:
        raise ScenarioError(
            "run_kill_worker_scenario wants shard_count=1 and workers>=2, "
            f"got {fleet.shard_count}/{fleet.workers}"
        )
    (name,) = fleet.addresses
    host, port = fleet.addresses[name]
    process = fleet.processes[name]
    keys = sorted(DEFAULT_SCHEMES)
    manifest = fleet.worker_manifest(name)
    if sorted(manifest) != list(range(fleet.workers)):
        raise ScenarioError(f"unexpected worker manifest: {manifest}")
    report: Dict[str, object] = {"workers": dict(manifest)}

    # Phase 1: healthy sweep through the fleet.
    healthy = await _worker_sweep(host, port, keys, target, rng_seed=rng_seed)
    report["healthy"] = healthy
    for key, row in healthy.items():
        if not row["success"]:
            raise ScenarioError(f"healthy fleet missed target for {key}: {row}")

    # Phase 2: a mutation fans out to every worker.  ``w1`` is outside
    # the seeded v1..vN universe, so a sighting can only come from the
    # mutation itself.
    mutation_key = "full_replication"
    await _raw_send(host, port, 0, mutation_key, AddRequest(Entry("w1")))
    probes = await _await_entry_everywhere(
        host,
        port,
        "w1",
        key=mutation_key,
        server=0,
        connections=probe_connections,
        deadline=time.monotonic() + 15,
    )
    report["mutation"] = {"entry": "w1", "key": mutation_key, "probes": probes}

    # Warm the post-mutation hot key on *every* worker before the kill:
    # the writer's hot set (shipped to the respawn over the writer bus)
    # must hold a current-stamped row for the warm-handoff check below.
    report["warm"] = await _warm_hot_key(
        host, port, fleet.workers, mutation_key, time.monotonic() + 15
    )

    # Phase 3: SIGKILL the highest-index reader; the fleet keeps
    # answering and the supervisor brings a replacement up.
    reader_index = max(manifest)
    reader_pid = manifest[reader_index]
    os.kill(reader_pid, signal.SIGKILL)
    during = await _worker_sweep(host, port, keys, target, rng_seed=rng_seed + 1)
    report["during_reader_kill"] = during
    for key, row in during.items():
        if not row["success"]:
            raise ScenarioError(
                f"{key}: lookup went short while a reader was down: {row}"
            )
    respawned_pid = _await_respawn(
        fleet, name, reader_index, reader_pid, time.monotonic() + 20
    )
    report["reader_respawn"] = {
        "index": reader_index,
        "killed_pid": reader_pid,
        "respawned_pid": respawned_pid,
    }
    # The replacement must answer the previously-hot key warm — the
    # writer handed it the hot set during the bus sync, before it
    # accepted its first connection.
    report["warm_respawn"] = await _assert_warm_respawn(
        host, port, reader_index, mutation_key, time.monotonic() + 20
    )
    recovered = await _worker_sweep(host, port, keys, target, rng_seed=rng_seed + 2)
    report["after_respawn"] = recovered
    for key, row in recovered.items():
        if not row["success"]:
            raise ScenarioError(f"{key}: short lookup after reader respawn: {row}")

    # Phase 4: SIGKILL the writer; the whole fleet must fail loud.
    writer_pid = fleet.worker_manifest(name)[0]
    os.kill(writer_pid, signal.SIGKILL)
    try:
        returncode = process.wait(timeout=20)
    except subprocess.TimeoutExpired:
        raise ScenarioError(
            "fleet parent kept running after the writer worker died"
        ) from None
    if returncode == 0:
        raise ScenarioError(
            "fleet parent exited 0 after losing the writer — a mutation "
            "blackout must be loud"
        )
    report["writer_kill"] = {"pid": writer_pid, "parent_exit": returncode}
    return report


# --------------------------------------------------------------------------
# Kill-the-whole-fleet: durability, not availability
# --------------------------------------------------------------------------


async def _info_caps(host: str, port: int) -> Dict[str, object]:
    """One ``info`` probe on a throwaway connection; returns capabilities."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        await write_frame(writer, {"op": "info"})
        info = await asyncio.wait_for(read_frame(reader), 5.0)
    finally:
        writer.close()
        with contextlib.suppress(OSError):
            await writer.wait_closed()
    return dict((info.get("value") or {}).get("capabilities") or {})


async def _full_store_replies(
    fleet: ShardFleet, host: str, port: int, keys: List[str]
) -> Dict[str, List[object]]:
    """The raw wire value of every (key, server) full-store lookup.

    ``LookupRequest(target=0)`` returns the contacted server's whole
    ordered entry list without consuming RNG, so the reply value is a
    pure function of durable state — the right thing to demand
    byte-for-byte equality on across a crash/recover cycle.
    """
    replies: Dict[str, List[object]] = {}
    for key in keys:
        replies[key] = [
            (await _raw_send(host, port, server, key, LookupRequest(0)))["value"]
            for server in range(fleet.servers)
        ]
    return replies


async def run_fleet_restart_scenario(
    fleet: ShardFleet,
    *,
    rng_seed: int = 23,
    probe_connections: int = 4,
) -> Dict[str, object]:
    """SIGKILL the *entire* fleet mid-workload, restart it, verify recovery.

    The kill-a-shard and kill-a-worker scenarios attack availability —
    some process always survives to answer.  This scenario attacks
    durability: with ``--store log`` nothing survives the kill except
    the append-log journal on disk, so a correct restart must rebuild
    every server's ordered entry list and coverage bitmask from replay
    alone.  The fleet must be a single-shard ``store == "log"``
    deployment, already started.  Phases:

    1. healthy sweep — every scheme key meets its target;
    2. a mutation (``w1``, outside the seeded universe) lands and fans
       out to every worker, so the journal holds post-boot writes;
    3. capture the full-store reply value of every (scheme, server)
       pair — the uncrashed control;
    4. SIGKILL the parent *and* every worker simultaneously (no
       goodbye, no flush window beyond the per-record flush);
    5. restart on the same data directory; the service must report
       ``storage.recovered`` and serve reply values identical to the
       control, with the mutation intact.

    Returns a report dict; raises :class:`ScenarioError` on violation.
    """
    from repro.net.service import DEFAULT_SCHEMES

    if fleet.shard_count != 1 or fleet.store != "log":
        raise ScenarioError(
            "run_fleet_restart_scenario wants shard_count=1 and store='log', "
            f"got {fleet.shard_count}/{fleet.store!r}"
        )
    (name,) = fleet.addresses
    host, port = fleet.addresses[name]
    keys = sorted(DEFAULT_SCHEMES)
    report: Dict[str, object] = {"workers": fleet.workers, "store": fleet.store}

    # Phase 1: healthy sweep.
    healthy = await _worker_sweep(host, port, keys, 10, rng_seed=rng_seed)
    report["healthy"] = healthy
    for key, row in healthy.items():
        if not row["success"]:
            raise ScenarioError(f"healthy fleet missed target for {key}: {row}")

    # Phase 2: a post-boot mutation the journal must not lose.
    mutation_key = "full_replication"
    await _raw_send(host, port, 0, mutation_key, AddRequest(Entry("w1")))
    if fleet.workers > 1:
        await _await_entry_everywhere(
            host,
            port,
            "w1",
            key=mutation_key,
            server=0,
            connections=probe_connections,
            deadline=time.monotonic() + 15,
        )

    # Phase 3: the uncrashed control — every (scheme, server) reply.
    control = await _full_store_replies(fleet, host, port, keys)
    report["control_replies"] = sum(len(v) for v in control.values())

    # Phase 4: SIGKILL everything at once.  The parent dies first so
    # its supervisor cannot respawn or fail-loud; orphaned workers are
    # then killed directly via the pid manifest.
    process = fleet.processes[name]
    worker_pids: Dict[int, int] = {}
    if fleet.workers > 1:
        worker_pids = fleet.worker_manifest(name)
    process.kill()
    for pid in worker_pids.values():
        with contextlib.suppress(ProcessLookupError):
            os.kill(pid, signal.SIGKILL)
    process.wait()
    report["killed"] = {"parent": process.pid, "workers": dict(worker_pids)}

    # Phase 5: restart on the same data directory and verify recovery.
    fleet.restart(name)
    caps = await _info_caps(host, port)
    storage = dict(caps.get("storage") or {})
    report["storage"] = storage
    if storage.get("kind") != "log" or not storage.get("recovered"):
        raise ScenarioError(
            f"restarted fleet did not recover from its journal: {storage}"
        )
    recovered = await _full_store_replies(fleet, host, port, keys)
    for key in keys:
        if recovered[key] != control[key]:
            raise ScenarioError(
                f"{key}: post-restart replies differ from the uncrashed control"
            )
    survivor = decode_value(
        (await _raw_send(host, port, 0, mutation_key, LookupRequest(0)))["value"]
    )
    if "w1" not in {entry.entry_id for entry in survivor}:
        raise ScenarioError("mutation w1 did not survive the fleet restart")
    after = await _worker_sweep(host, port, keys, 10, rng_seed=rng_seed + 1)
    report["after_restart"] = after
    for key, row in after.items():
        if not row["success"]:
            raise ScenarioError(f"{key}: short lookup after fleet restart: {row}")
    report["recovered_replies"] = report["control_replies"]
    return report


__all__ = [
    "FAST_TIMINGS",
    "ScenarioError",
    "ShardFleet",
    "free_ports",
    "run_fleet_restart_scenario",
    "run_kill_shard_scenario",
    "run_kill_worker_scenario",
]
