"""Net-service throughput: concurrent partial lookups over real sockets.

Boots one in-process :class:`~repro.net.service.LookupService` on an
ephemeral loopback port and measures sustained lookups/second with a
small fleet of concurrent async clients — the socket path's end-to-end
cost (framing, codec, event-loop scheduling, protocol pump) on top of
the simulator work the other benches already measure.  Three metrics
go into the ``--bench-json`` artifact:

- ``net_lookups_per_sec`` — the original workload: sequential
  single lookups (one request/response round trip each) over the
  JSON codec, from a small fleet of concurrent clients.
- ``net_batched_lookups_per_sec`` — the pipelined path: one client,
  binary codec, ``lookup_many`` packing many lookups per write with
  out-of-order response correlation.  Uses ``full_replication`` (one
  contact per lookup) so the metric isolates wire + dispatch cost
  rather than multiplying it by a scheme's retry chain.
- ``net_multiclient_lookups_per_sec`` — several concurrent binary
  clients each running batched ``lookup_many``, sharing one server
  event loop: the contended aggregate throughput.

Recorded numbers are machine-relative.  The committed baselines were
taken on a 1-core CI-class container; absolute values on other
hardware differ (the pre-batching ``net_lookups_per_sec`` baseline of
4,021.6 came from a ~1.3x faster box than the one that recorded the
batched numbers — compare ratios within one artifact, not across
machines).  Per-lookup cost on the batched path is dominated by the
protocol's pinned RNG draws (client probe-order shuffle + server
sampling) and the event-loop floor, not the codec, which is why the
batched speedup saturates around 6-8x the sequential path on one core.
"""

import asyncio
import random
import time

from repro.net.client import AsyncLookupClient
from repro.net.service import LookupService, ServiceConfig

CLIENTS = 4
LOOKUPS_PER_CLIENT = 75
TARGET = 8
SCHEME = "round_robin"


async def _drive(host, port, seed):
    async with AsyncLookupClient(host, port, rng=random.Random(seed)) as client:
        await client.info()  # warm the topology cache before timing
        for _ in range(LOOKUPS_PER_CLIENT):
            result = await client.lookup(SCHEME, TARGET)
            assert result.success
    return LOOKUPS_PER_CLIENT


async def _throughput():
    service = LookupService(ServiceConfig(server_count=16, entry_count=40, seed=3))
    host, port = await service.start(port=0)
    try:
        started = time.perf_counter()
        counts = await asyncio.gather(
            *(_drive(host, port, seed) for seed in range(CLIENTS))
        )
        elapsed = time.perf_counter() - started
    finally:
        await service.stop()
    return sum(counts) / elapsed


def test_bench_net_service_throughput(bench_json_record):
    lookups_per_sec = asyncio.run(asyncio.wait_for(_throughput(), timeout=120))
    print(
        f"\nnet service: {CLIENTS} clients x {LOOKUPS_PER_CLIENT} lookups "
        f"(target {TARGET}, {SCHEME}) -> {lookups_per_sec:,.0f} lookups/s"
    )
    bench_json_record("net_lookups_per_sec", round(lookups_per_sec, 1))
    # Sanity floor, far below any plausible loopback result: catches a
    # pathological regression (e.g. an accidental per-lookup reconnect)
    # without being machine-sensitive.
    assert lookups_per_sec > 50


BATCH_SCHEME = "full_replication"
BATCH_WARMUP = 50
BATCH_LOOKUPS = 4000
BATCH_CLIENTS = 3
BATCH_LOOKUPS_PER_CLIENT = 1200


async def _drive_batched(host, port, seed, count):
    async with AsyncLookupClient(
        host, port, rng=random.Random(seed), codec="binary"
    ) as client:
        await client.lookup_many(BATCH_SCHEME, [TARGET] * BATCH_WARMUP)
        started = time.perf_counter()
        report = await client.lookup_many(BATCH_SCHEME, [TARGET] * count)
        elapsed = time.perf_counter() - started
    assert len(report) == count and report.all_success
    return count, elapsed


async def _batched_throughput():
    service = LookupService(ServiceConfig(server_count=16, entry_count=40, seed=3))
    host, port = await service.start(port=0)
    try:
        count, elapsed = await _drive_batched(host, port, 7, BATCH_LOOKUPS)
    finally:
        await service.stop()
    return count / elapsed


async def _multiclient_throughput():
    service = LookupService(ServiceConfig(server_count=16, entry_count=40, seed=3))
    host, port = await service.start(port=0)
    try:
        started = time.perf_counter()
        results = await asyncio.gather(
            *(
                _drive_batched(host, port, seed, BATCH_LOOKUPS_PER_CLIENT)
                for seed in range(BATCH_CLIENTS)
            )
        )
        elapsed = time.perf_counter() - started
    finally:
        await service.stop()
    return sum(count for count, _ in results) / elapsed


def test_bench_net_batched_throughput(bench_json_record):
    lookups_per_sec = asyncio.run(asyncio.wait_for(_batched_throughput(), timeout=120))
    print(
        f"\nnet service batched: 1 client x {BATCH_LOOKUPS} lookups "
        f"(target {TARGET}, {BATCH_SCHEME}, binary codec, pipelined) "
        f"-> {lookups_per_sec:,.0f} lookups/s"
    )
    bench_json_record("net_batched_lookups_per_sec", round(lookups_per_sec, 1))
    # The pipelined binary path must stay well clear of the sequential
    # JSON path; the committed-baseline ratio is gated separately by
    # scripts/check_bench_regression.py.
    assert lookups_per_sec > 500


def test_bench_net_multiclient_throughput(bench_json_record):
    lookups_per_sec = asyncio.run(
        asyncio.wait_for(_multiclient_throughput(), timeout=120)
    )
    print(
        f"\nnet service multiclient: {BATCH_CLIENTS} clients x "
        f"{BATCH_LOOKUPS_PER_CLIENT} lookups "
        f"(target {TARGET}, {BATCH_SCHEME}, binary codec, pipelined) "
        f"-> {lookups_per_sec:,.0f} lookups/s"
    )
    bench_json_record("net_multiclient_lookups_per_sec", round(lookups_per_sec, 1))
    assert lookups_per_sec > 500
