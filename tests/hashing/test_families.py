"""Unit tests for the hash-function families."""

import pytest

from repro.core.entry import Entry, make_entries
from repro.core.exceptions import InvalidParameterError
from repro.hashing.families import HashFamily, HashFunction, fnv1a_64


class TestFnv:
    def test_deterministic(self):
        assert fnv1a_64("hello") == fnv1a_64("hello")

    def test_str_and_bytes_agree(self):
        assert fnv1a_64("abc") == fnv1a_64(b"abc")

    def test_distinct_inputs_differ(self):
        assert fnv1a_64("a") != fnv1a_64("b")

    def test_64_bit_range(self):
        assert 0 <= fnv1a_64("x" * 100) < 2**64

    def test_known_vector(self):
        # FNV-1a 64 of empty input is the offset basis.
        assert fnv1a_64(b"") == 0xCBF29CE484222325


class TestHashFunction:
    def test_maps_to_bucket_range(self):
        function = HashFunction(a=12345, b=678, buckets=10)
        for entry in make_entries(200):
            assert 0 <= function(entry) < 10

    def test_accepts_entry_and_string(self):
        function = HashFunction(a=3, b=5, buckets=7)
        assert function(Entry("v1")) == function("v1")

    def test_parameter_validation(self):
        with pytest.raises(InvalidParameterError):
            HashFunction(a=0, b=0, buckets=10)
        with pytest.raises(InvalidParameterError):
            HashFunction(a=1, b=0, buckets=0)


class TestHashFamily:
    def test_family_size(self):
        family = HashFamily(count=3, buckets=10, seed=1)
        assert len(family) == 3

    def test_seeded_families_identical(self):
        a = HashFamily(3, 10, seed=42)
        b = HashFamily(3, 10, seed=42)
        for entry in make_entries(50):
            assert a.assign(entry) == b.assign(entry)

    def test_different_seeds_differ(self):
        a = HashFamily(2, 10, seed=1)
        b = HashFamily(2, 10, seed=2)
        assignments_a = [tuple(a.assign(e)) for e in make_entries(50)]
        assignments_b = [tuple(b.assign(e)) for e in make_entries(50)]
        assert assignments_a != assignments_b

    def test_assign_length(self):
        family = HashFamily(4, 10, seed=7)
        assert len(family.assign(Entry("v1"))) == 4

    def test_assign_distinct_dedupes(self):
        family = HashFamily(8, 2, seed=7)  # heavy collisions with 2 buckets
        distinct = family.assign_distinct(Entry("v1"))
        assert len(distinct) == len(set(distinct))
        assert set(distinct) <= {0, 1}

    def test_roughly_uniform_buckets(self):
        family = HashFamily(1, 10, seed=3)
        counts = [0] * 10
        trials = 5000
        for entry in make_entries(trials):
            counts[family[0](entry)] += 1
        for count in counts:
            assert abs(count / trials - 0.1) < 0.03

    def test_functions_approximately_independent(self):
        # P(f1(v) == f2(v)) should be ~1/n for random entries.
        family = HashFamily(2, 10, seed=11)
        trials = 4000
        collisions = sum(
            1
            for entry in make_entries(trials)
            if family[0](entry) == family[1](entry)
        )
        assert abs(collisions / trials - 0.1) < 0.03

    def test_invalid_count(self):
        with pytest.raises(InvalidParameterError):
            HashFamily(0, 10)
