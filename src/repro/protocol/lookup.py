"""The sans-IO client-side lookup state machine.

:class:`LookupSession` is the paper's ``partial_lookup(k, t)`` client
skeleton — contact servers in some order, merge the distinct entries
from each reply, stop once the target is met — extracted from the
transport so one implementation serves both the simulated network and
the asyncio socket service.  It also owns this reproduction's failure
handling: bounded retry passes over unanswered servers (dropped
contacts first) under a :class:`~repro.cluster.client.RetryPolicy`,
with every short answer explicitly labelled degraded.

The machine is event/effect driven (see :mod:`repro.protocol.events`
and :mod:`repro.protocol.effects`): the driver calls :meth:`start`,
enacts the returned effects, and feeds exactly one event per
responding effect into :meth:`on_event` until a
:class:`~repro.protocol.effects.Complete` effect carries the final
:class:`~repro.core.result.LookupResult`.

Determinism: all randomness is injected via ``rng``.  The session
draws from it in exactly the sequence the pre-refactor
``Client.collect`` did — an overshoot ``sample`` per final delivered
contact, then per retry pass a jitter draw followed by a ``shuffle``
of the failed-contact list — so seeded runs are bit-for-bit identical
whichever driver pumps the machine.  Trace effects are emitted only
when ``trace=True``; an untraced session allocates nothing for
observability, matching the old client's "no tracer, no cost" rule.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Iterable, List, Optional

from repro.cluster.messages import LookupRequest
from repro.core.result import LookupResult
from repro.protocol.effects import (
    Complete,
    Effect,
    SendRequest,
    Sleep,
    SpanEnd,
    SpanEvent,
    SpanStart,
)
from repro.protocol.events import ContactFailed, Event, ReplyReceived, Slept

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.client import RetryPolicy
    from repro.core.entry import Entry


class ProtocolStateError(RuntimeError):
    """A state machine was driven out of order (driver bug)."""


def random_order(n: int, rng: random.Random) -> List[int]:
    """All ``n`` server ids in a fresh uniformly random order."""
    order = list(range(n))
    rng.shuffle(order)
    return order


def stride_order(n: int, start: int, stride: int, rng: random.Random) -> List[int]:
    """The Round-Robin-y contact sequence ``start, start+stride, ...``.

    Walks all ``n`` servers modulo ``n``; when ``gcd(stride, n) > 1``
    the walk revisits ids, so remaining ids are appended in random
    order to preserve the "contact every server at most once" client
    behaviour.
    """
    order: List[int] = []
    seen: set[int] = set()
    current = start % n
    for _ in range(n):
        if current in seen:
            break
        order.append(current)
        seen.add(current)
        current = (current + stride) % n
    leftovers = [i for i in range(n) if i not in seen]
    rng.shuffle(leftovers)
    order.extend(leftovers)
    return order


#: Session lifecycle states.
_IDLE = 0
_WALKING = 1
_SLEEPING = 2
_DONE = 3


class LookupSession:
    """One partial lookup as a pure state machine.

    Parameters
    ----------
    key:
        The key being looked up.
    target:
        Required number of distinct entries; ``0`` means "collect
        everything" (contact every server in the order).
    order:
        Server ids to try, in order (see :func:`random_order` /
        :func:`stride_order` for the two paper orders).
    max_servers:
        Optional cap on answering servers contacted.
    per_server_target:
        Entries to request from each server; defaults to ``target``.
    retry_policy:
        Optional :class:`~repro.cluster.client.RetryPolicy`; ``None``
        is the paper's single-pass client.
    rng:
        Injected randomness for overshoot sampling, retry shuffles,
        and backoff jitter.  Required — the session never creates its
        own generator, so determinism is entirely the caller's.
    trace:
        When True, the session emits ``SpanStart`` / ``SpanEvent`` /
        ``SpanEnd`` effects describing the lookup, which drivers
        forward to a :class:`~repro.obs.tracer.Tracer`.
    trace_label:
        The ``order`` field on the emitted lookup span.
    """

    __slots__ = (
        "_key",
        "_target",
        "_ask",
        "_max_servers",
        "_policy",
        "_rng",
        "_trace",
        "_trace_label",
        "_pass_order",
        "_pass_index",
        "_merged",
        "_merged_ids",
        "_contacted",
        "_failed",
        "_dropped",
        "_retries",
        "_backoff",
        "_state",
        "_awaiting",
        "_result",
    )

    def __init__(
        self,
        key: str,
        target: int,
        order: Iterable[int],
        *,
        max_servers: Optional[int] = None,
        per_server_target: Optional[int] = None,
        retry_policy: Optional["RetryPolicy"] = None,
        rng: random.Random,
        trace: bool = False,
        trace_label: Optional[str] = None,
    ) -> None:
        self._key = key
        self._target = target
        self._ask = target if per_server_target is None else per_server_target
        self._max_servers = max_servers
        self._policy = retry_policy
        self._rng = rng
        self._trace = trace
        self._trace_label = trace_label
        self._pass_order = list(order)
        self._pass_index = 0
        self._merged: List["Entry"] = []
        self._merged_ids: set[str] = set()
        self._contacted: List[int] = []
        self._failed: List[int] = []
        self._dropped: List[int] = []
        self._retries = 0
        self._backoff = 0.0
        self._state = _IDLE
        self._awaiting: Optional[int] = None
        self._result: Optional[LookupResult] = None

    # -- public surface ------------------------------------------------------

    @property
    def done(self) -> bool:
        return self._state == _DONE

    @property
    def result(self) -> Optional[LookupResult]:
        """The final LookupResult once :attr:`done`, else None."""
        return self._result

    def start(self) -> List[Effect]:
        """Begin the walk; returns the first effect batch."""
        if self._state != _IDLE:
            raise ProtocolStateError("LookupSession.start called twice")
        self._state = _WALKING
        effects: List[Effect] = []
        if self._trace:
            effects.append(
                SpanStart(
                    "lookup",
                    {
                        "key": self._key,
                        "target": self._target,
                        "order": (
                            self._trace_label
                            if self._trace_label is not None
                            else "explicit"
                        ),
                    },
                )
            )
        self._continue(effects)
        return effects

    def on_event(self, event: Event) -> List[Effect]:
        """Feed one event; returns the next effect batch."""
        effects: List[Effect] = []
        if isinstance(event, ReplyReceived):
            self._expect_contact(event.server_id)
            self._absorb_reply(event, effects)
        elif isinstance(event, ContactFailed):
            self._expect_contact(event.server_id)
            self._absorb_failure(event, effects)
        elif isinstance(event, Slept):
            if self._state != _SLEEPING:
                raise ProtocolStateError("Slept event outside a backoff sleep")
            self._state = _WALKING
        else:
            raise ProtocolStateError(
                f"LookupSession cannot consume {type(event).__name__}"
            )
        self._continue(effects)
        return effects

    # -- internals -----------------------------------------------------------

    def _expect_contact(self, server_id: int) -> None:
        if self._state != _WALKING or self._awaiting != server_id:
            raise ProtocolStateError(
                f"unexpected contact outcome for server {server_id} "
                f"(awaiting {self._awaiting})"
            )
        self._awaiting = None

    def _absorb_reply(self, event: ReplyReceived, effects: List[Effect]) -> None:
        self._contacted.append(event.server_id)
        fresh = [e for e in event.entries if e.entry_id not in self._merged_ids]
        # The client wants exactly ``target`` entries; when the final
        # server's reply overshoots, keep a uniformly random subset of
        # its fresh contribution so no entry of that server is
        # privileged (this is what makes Round-Robin's answers exactly
        # fair, §4.5).
        if self._target > 0 and len(self._merged) + len(fresh) > self._target:
            fresh = self._rng.sample(fresh, self._target - len(self._merged))
        if self._trace:
            effects.append(
                SpanEvent(
                    "contact",
                    {
                        "server": event.server_id,
                        "outcome": "delivered",
                        "returned": len(event.entries),
                        "fresh": len(fresh),
                    },
                )
            )
        self._merged.extend(fresh)
        self._merged_ids.update(e.entry_id for e in fresh)

    def _absorb_failure(self, event: ContactFailed, effects: List[Effect]) -> None:
        (self._dropped if event.dropped else self._failed).append(event.server_id)
        if self._trace:
            effects.append(
                SpanEvent(
                    "contact",
                    {
                        "server": event.server_id,
                        "outcome": "dropped" if event.dropped else "failed",
                        "returned": 0,
                        "fresh": 0,
                    },
                )
            )

    def _next_server(self) -> Optional[int]:
        """The next server of the current pass, honouring stop rules."""
        while self._pass_index < len(self._pass_order):
            if self._target > 0 and len(self._merged) >= self._target:
                return None
            if (
                self._max_servers is not None
                and len(self._contacted) >= self._max_servers
            ):
                return None
            server_id = self._pass_order[self._pass_index]
            self._pass_index += 1
            return server_id
        return None

    def _continue(self, effects: List[Effect]) -> None:
        if self._state == _SLEEPING:
            # The retry pass starts when the driver reports Slept.
            return
        server_id = self._next_server()
        if server_id is not None:
            self._awaiting = server_id
            effects.append(
                SendRequest(server_id, self._key, LookupRequest(self._ask))
            )
            return
        self._end_pass(effects)

    def _end_pass(self, effects: List[Effect]) -> None:
        """Decide between another retry pass and completion."""
        policy = self._policy
        if (
            policy is not None
            and self._target > 0
            and len(self._merged) < self._target
            and self._retries + 1 < policy.max_attempts
            and (self._dropped or self._failed)
            and (
                self._max_servers is None
                or len(self._contacted) < self._max_servers
            )
        ):
            delay = policy.delay(self._retries, self._rng)
            if self._backoff + delay <= policy.backoff_budget:
                self._backoff += delay
                self._retries += 1
                # Dropped contacts are retried before failed ones: a
                # drop means the server is (probably) alive and the
                # message was lost, whereas a failed server stays
                # failed until something recovers it.
                retry_failed = list(self._failed)
                self._rng.shuffle(retry_failed)
                retry_order = self._dropped + retry_failed
                if self._trace:
                    effects.append(
                        SpanEvent(
                            "retry",
                            {
                                "attempt": self._retries,
                                "delay": delay,
                                "backoff": self._backoff,
                                "pending": len(retry_order),
                            },
                        )
                    )
                self._dropped = []
                self._failed = []
                self._pass_order = retry_order
                self._pass_index = 0
                self._state = _SLEEPING
                effects.append(Sleep(delay))
                return
        self._complete(effects)

    def _complete(self, effects: List[Effect]) -> None:
        self._state = _DONE
        result = LookupResult(
            entries=tuple(self._merged),
            target=self._target,
            servers_contacted=tuple(self._contacted),
            failed_contacts=tuple(self._failed) + tuple(self._dropped),
            messages=len(self._contacted),
            retries=self._retries,
            backoff=self._backoff,
        )
        self._result = result
        if self._trace:
            effects.append(
                SpanEnd(
                    {
                        "entries": len(result.entries),
                        "messages": result.messages,
                        "retries": result.retries,
                        "backoff": result.backoff,
                        "success": result.success,
                        "degraded": result.degraded,
                    }
                )
            )
        effects.append(Complete(result))
