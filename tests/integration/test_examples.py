"""Every example script must run cleanly end to end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=[p.stem for p in EXAMPLES])
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout.strip(), "examples must narrate their results"


def test_examples_exist():
    # The deliverable requires a quickstart plus domain scenarios.
    names = {p.stem for p in EXAMPLES}
    assert "quickstart" in names
    assert len(names) >= 3
