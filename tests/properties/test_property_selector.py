"""Property-based tests for the scheme recommender."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.strategies.selector import WorkloadProfile, recommend


@st.composite
def profiles(draw):
    h = draw(st.integers(min_value=1, max_value=2000))
    n = draw(st.integers(min_value=1, max_value=100))
    t = draw(st.integers(min_value=1, max_value=h))
    return WorkloadProfile(
        entry_count=h,
        server_count=n,
        target_answer_size=t,
        update_rate=draw(st.floats(min_value=0.0, max_value=100.0)),
        needs_complete_coverage=draw(st.booleans()),
        needs_fairness=draw(st.booleans()),
        storage_is_fixed=draw(st.booleans()),
    )


@given(profiles())
@settings(max_examples=80, deadline=None)
def test_recommendation_structure(profile):
    ranked = recommend(profile)
    names = [r.name for r in ranked]
    # Always ranks all five schemes, each exactly once, sorted.
    assert sorted(names) == [
        "fixed", "full_replication", "hash", "random_server", "round_robin",
    ]
    scores = [r.score for r in ranked]
    assert scores == sorted(scores, reverse=True)
    # Deterministic.
    assert names == [r.name for r in recommend(profile)]


@given(profiles())
@settings(max_examples=80, deadline=None)
def test_coverage_requirement_never_helps_fixed(profile):
    """Needing complete coverage can only push Fixed-x down the ranking."""
    if profile.needs_complete_coverage:
        return
    without = {r.name: r.score for r in recommend(profile)}
    with_coverage = WorkloadProfile(
        entry_count=profile.entry_count,
        server_count=profile.server_count,
        target_answer_size=profile.target_answer_size,
        update_rate=profile.update_rate,
        needs_complete_coverage=True,
        needs_fairness=profile.needs_fairness,
        storage_is_fixed=profile.storage_is_fixed,
    )
    scored = {r.name: r.score for r in recommend(with_coverage)}
    assert scored["fixed"] <= without["fixed"]
    assert scored["round_robin"] >= without["round_robin"]


@given(profiles())
@settings(max_examples=80, deadline=None)
def test_every_nonzero_score_has_reasons(profile):
    for recommendation in recommend(profile):
        if recommendation.score != 0:
            assert recommendation.reasons
        for reason in recommendation.reasons:
            assert "§" in reason  # every rule cites its paper section
