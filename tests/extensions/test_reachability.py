"""Unit tests for the §7.2 limited-reachability extension."""

import random

import networkx as nx
import pytest

from repro.core.exceptions import InvalidParameterError
from repro.extensions.reachability import (
    OverlayNetwork,
    ReachabilityPlacement,
    ReachabilityReport,
)


def _path_overlay(length=10):
    return OverlayNetwork(nx.path_graph(length))


class TestOverlayNetwork:
    def test_within_hops_includes_self(self):
        overlay = _path_overlay()
        assert overlay.within_hops(3, 0) == {3}

    def test_within_hops_radius(self):
        overlay = _path_overlay()
        assert overlay.within_hops(5, 2) == {3, 4, 5, 6, 7}

    def test_random_overlay_connected(self):
        overlay = OverlayNetwork.random(50, mean_degree=3, rng=random.Random(1))
        assert nx.is_connected(overlay.graph)
        assert overlay.graph.number_of_nodes() == 50

    def test_random_overlay_reproducible(self):
        a = OverlayNetwork.random(30, rng=random.Random(2))
        b = OverlayNetwork.random(30, rng=random.Random(2))
        assert sorted(a.graph.edges) == sorted(b.graph.edges)

    def test_empty_overlay_rejected(self):
        with pytest.raises(InvalidParameterError):
            OverlayNetwork(nx.Graph())

    def test_negative_hops_rejected(self):
        with pytest.raises(InvalidParameterError):
            _path_overlay().within_hops(0, -1)


class TestPlacement:
    def test_hop_zero_needs_server_everywhere(self):
        placement = ReachabilityPlacement(_path_overlay(6))
        report = placement.place_servers(0)
        assert report.update_fanout == 6
        assert report.fully_covered

    def test_path_graph_hop_one_needs_every_third(self):
        placement = ReachabilityPlacement(_path_overlay(9))
        report = placement.place_servers(1)
        assert report.fully_covered
        assert report.update_fanout == 3  # optimal: nodes 1, 4, 7

    def test_large_hop_bound_one_server_suffices(self):
        placement = ReachabilityPlacement(_path_overlay(9))
        report = placement.place_servers(8)
        assert report.fully_covered
        assert report.update_fanout == 1

    def test_every_client_within_bound_of_some_server(self):
        overlay = OverlayNetwork.random(60, mean_degree=3, rng=random.Random(3))
        placement = ReachabilityPlacement(overlay)
        report = placement.place_servers(2)
        assert report.fully_covered
        for client in overlay.nodes():
            assert any(
                client in overlay.within_hops(server, 2)
                for server in report.server_nodes
            )

    def test_candidate_restriction(self):
        placement = ReachabilityPlacement(_path_overlay(6))
        report = placement.place_servers(1, candidates=[0, 5])
        # Nodes 2 and 3 are unreachable from candidates within 1 hop.
        assert not report.fully_covered
        assert report.clients_covered == 4
        assert report.coverage_fraction == pytest.approx(4 / 6)

    def test_tradeoff_curve_monotone(self):
        # §7.2: smaller d -> more servers -> bigger update fanout.
        overlay = OverlayNetwork.random(80, mean_degree=3, rng=random.Random(4))
        placement = ReachabilityPlacement(overlay)
        curve = placement.tradeoff_curve([0, 1, 2, 3, 4])
        fanouts = [report.update_fanout for report in curve]
        assert fanouts == sorted(fanouts, reverse=True)
        assert all(report.fully_covered for report in curve)

    def test_negative_bound_rejected(self):
        with pytest.raises(InvalidParameterError):
            ReachabilityPlacement(_path_overlay()).place_servers(-1)
