"""A simulated lookup server: local entry store plus strategy logic.

A :class:`Server` is deliberately thin.  It owns, per key, an ordered
local entry store and an opaque per-strategy state dict; everything
that happens when a message *arrives* — delivery dedupe and dispatch
to the :class:`ServerLogic` the active placement strategy installed
for that key — lives in the server's sans-IO
:class:`~repro.protocol.server.ServerProtocol` core, which this class
merely hosts.  All protocol decisions (broadcast or not, keep a random
subset, plug a round-robin hole, ...) live in the strategy's logic,
mirroring the paper's framing where the *scheme* defines what each
server does upon receiving a message.

:meth:`Server.receive` / :meth:`Server.receive_dedup` are thin drivers
over the protocol core, kept so the simulated transport (and tests)
address the server directly; the asyncio socket service drives the
same :class:`~repro.protocol.server.ServerProtocol` instances instead.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.core.interning import EntryInterner
from repro.core.storage import EntryStore, MemoryBackend, StorageBackend
from repro.cluster.messages import Message
from repro.protocol.server import ServerProtocol

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.cluster.network import Network
    from repro.obs.tracer import Tracer

#: Builds the storage backend for one ``(key, server_id, interner)``
#: triple.  ``None`` means the default: a plain :class:`MemoryBackend`.
StoreFactory = Callable[[str, int, EntryInterner], StorageBackend]


class ServerLogic(ABC):
    """Per-strategy message handler installed on every server.

    One logic instance may be shared across all servers (strategies
    keep per-server state in ``server.state``), so implementations must
    not store per-server mutable state on ``self``.
    """

    @abstractmethod
    def handle(self, server: "Server", message: Message, network: "Network") -> Any:
        """Process ``message`` at ``server``; return the reply, if any."""


class Server:
    """One simulated lookup server.

    Attributes
    ----------
    server_id:
        Zero-based identifier; the paper's "server 1" (the Round-Robin
        counter host) is ``server_id == 0`` here.
    alive:
        False while the server is failed; a failed server processes no
        messages (the network suppresses delivery).
    """

    #: Dedupe window size, re-exported from the protocol core (the
    #: dedupe cache itself lives in :class:`ServerProtocol`).
    DEDUP_WINDOW = ServerProtocol.DEDUP_WINDOW

    def __init__(
        self,
        server_id: int,
        interners: Optional[dict[str, EntryInterner]] = None,
        store_factory: Optional[StoreFactory] = None,
    ) -> None:
        self.server_id = server_id
        self.alive = True
        #: Per-key entry interners.  A cluster passes one shared dict
        #: to all its servers so every store for a key uses the same
        #: dense index space (the bitset kernel's requirement); a
        #: standalone server gets a private dict.
        self._interners: dict[str, EntryInterner] = (
            interners if interners is not None else {}
        )
        #: Builds a backend per key on first access; ``None`` keeps the
        #: historical default of an in-memory :class:`EntryStore`.
        self._store_factory: Optional[StoreFactory] = store_factory
        self._stores: dict[str, StorageBackend] = {}
        self._state: dict[str, dict[str, Any]] = {}
        self._logics: dict[str, ServerLogic] = {}
        #: The sans-IO request core: delivery dedupe + logic dispatch.
        #: Transports (simulated network, asyncio service) drive this.
        self.protocol = ServerProtocol(self)
        #: Optional structured tracer (see
        #: :meth:`repro.cluster.cluster.Cluster.install_tracer`); when
        #: set, lifecycle *transitions* emit ``server.fail`` /
        #: ``server.recover`` events.
        self.tracer: Optional["Tracer"] = None

    # -- store access ------------------------------------------------------

    def store(self, key: str) -> StorageBackend:
        """The local entry store for ``key``, created on first access."""
        if key not in self._stores:
            if key not in self._interners:
                self._interners[key] = EntryInterner()
            interner = self._interners[key]
            if self._store_factory is not None:
                self._stores[key] = self._store_factory(
                    key, self.server_id, interner
                )
            else:
                self._stores[key] = EntryStore(interner=interner)
        return self._stores[key]

    def state(self, key: str) -> dict[str, Any]:
        """Per-key strategy scratch state (counters, migration maps)."""
        if key not in self._state:
            self._state[key] = {}
        return self._state[key]

    def stored_entry_count(self, key: str) -> int:
        return len(self._stores.get(key, ()))

    def keys(self) -> list[str]:
        return list(self._stores)

    # -- logic installation and dispatch -----------------------------------

    def install_logic(self, key: str, logic: ServerLogic) -> None:
        """Bind ``logic`` as the handler for messages about ``key``."""
        self._logics[key] = logic

    def logic_for(self, key: str) -> Optional[ServerLogic]:
        return self._logics.get(key)

    def receive(self, key: str, message: Message, network: "Network") -> Any:
        """Thin driver: route a delivered message through the protocol core."""
        return self.protocol.dispatch(key, message, network)

    def receive_dedup(
        self, key: str, message: Message, network: "Network", delivery_id: int
    ) -> Any:
        """Thin driver: idempotent receive via the protocol core's dedupe.

        The at-least-once transport (a fault plan with duplication)
        may deliver the same logical message twice; see
        :meth:`~repro.protocol.server.ServerProtocol.dispatch_dedup`.
        """
        return self.protocol.dispatch_dedup(key, message, network, delivery_id)

    # -- lifecycle ----------------------------------------------------------

    def fail(self) -> None:
        """Mark the server failed; its state is retained for recovery."""
        if self.tracer is not None and self.alive:
            # Transition-guarded: re-failing a failed server (e.g. a
            # sweep's blanket fail_many) emits nothing.
            self.tracer.event("server.fail", server=self.server_id)
        self.alive = False

    def recover(self) -> None:
        """Bring a failed server back with its pre-failure state intact."""
        if self.tracer is not None and not self.alive:
            self.tracer.event("server.recover", server=self.server_id)
        self.alive = True

    def wipe(self) -> None:
        """Erase all stores and state, as if freshly provisioned."""
        self._stores.clear()
        self._state.clear()
        self.protocol.forget_deliveries()

    def __repr__(self) -> str:
        status = "up" if self.alive else "DOWN"
        sizes = {k: len(s) for k, s in self._stores.items()}
        return f"Server({self.server_id}, {status}, stores={sizes})"
