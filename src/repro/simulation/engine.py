"""A minimal, deterministic discrete-event engine.

The engine keeps a priority queue of events ordered by
``(time, sequence)``; ties in time break in insertion order so replays
are exactly reproducible.  Handlers are registered per event type and
may schedule further events (e.g. an add handler scheduling the entry's
delete at the end of its sampled lifetime).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Dict, Iterable, List, Optional, Tuple, Type

from typing import TYPE_CHECKING

from repro.core.exceptions import InvalidParameterError
from repro.simulation.events import CallbackEvent, Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.tracer import Tracer

Handler = Callable[[Event], None]


class SimulationEngine:
    """Priority-queue discrete-event simulator with a virtual clock."""

    def __init__(self) -> None:
        self._queue: List[Tuple[float, int, Event]] = []
        self._sequence = itertools.count()
        self._handlers: Dict[Type[Event], Handler] = {}
        self._now = 0.0
        self._processed = 0
        self._tracing: Optional[List[str]] = None

    # -- clock and introspection -------------------------------------------------

    @property
    def now(self) -> float:
        """Current virtual time: the timestamp of the last event run."""
        return self._now

    @property
    def processed(self) -> int:
        """Number of events executed so far."""
        return self._processed

    @property
    def pending(self) -> int:
        """Number of events still queued."""
        return len(self._queue)

    def enable_tracing(self) -> List[str]:
        """Record a describe() line per executed event; returns the log."""
        self._tracing = []
        return self._tracing

    def attach_tracer(self, tracer: "Tracer") -> "Tracer":
        """Stamp a structured tracer's records with this engine's clock.

        Binds the :class:`~repro.obs.tracer.Tracer` to the virtual
        clock so every span/event it records carries simulated time,
        not record order.  The engine itself emits no records — event
        volume would drown the interesting spans — it only provides
        the clock; instrumented components (client, network, sweeps)
        do the emitting.  Returns the tracer for chaining.
        """
        tracer.bind_clock(lambda: self._now)
        return tracer

    # -- scheduling ------------------------------------------------------------------

    def schedule(self, event: Event) -> None:
        """Queue ``event``; its time must not be in the past."""
        if event.time < self._now:
            raise InvalidParameterError(
                f"cannot schedule {event.describe()} before current time {self._now:g}"
            )
        heapq.heappush(self._queue, (event.time, next(self._sequence), event))

    def schedule_all(self, events: Iterable[Event]) -> None:
        for event in events:
            self.schedule(event)

    def on(self, event_type: Type[Event], handler: Handler) -> None:
        """Register ``handler`` for events of exactly ``event_type``."""
        self._handlers[event_type] = handler

    # -- execution ----------------------------------------------------------------------

    def step(self) -> Optional[Event]:
        """Run the earliest pending event; return it, or None if empty."""
        if not self._queue:
            return None
        time, _, event = heapq.heappop(self._queue)
        self._now = time
        handler = self._handlers.get(type(event))
        if handler is not None:
            handler(event)
        elif isinstance(event, CallbackEvent):
            # Self-dispatching: periodic maintenance tasks attach to
            # any engine without registering in its handler table.
            if event.callback is not None:
                event.callback(time)
        else:
            raise InvalidParameterError(
                f"no handler registered for {type(event).__name__}"
            )
        self._processed += 1
        if self._tracing is not None:
            self._tracing.append(event.describe())
        return event

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Drain the queue; return the number of events executed.

        Parameters
        ----------
        until:
            Stop before executing any event with ``time > until``
            (that event stays queued).
        max_events:
            Stop after executing this many events in this call.
        """
        executed = 0
        while self._queue:
            if max_events is not None and executed >= max_events:
                break
            next_time = self._queue[0][0]
            if until is not None and next_time > until:
                break
            self.step()
            executed += 1
        if until is not None and until > self._now:
            # Advance the clock through any trailing event-free gap so
            # time-weighted measurements see the full horizon.
            self._now = until
        return executed
