"""Compose full simulation scenarios from workload building blocks.

The dynamic experiments each assemble the same pieces — an initial
population, steady-state churn, lookup traffic, crash/repair noise —
by hand.  :class:`ScenarioBuilder` composes them declaratively with
independent named RNG streams, producing one sorted trace ready for
:class:`~repro.simulation.replay.TraceReplayer`.

>>> import random
>>> scenario = (
...     ScenarioBuilder(seed=7)
...     .with_steady_state_churn(entry_count=50, updates=200)
...     .with_lookups(count=40, target=5)
...     .with_failures(availability=0.9, mean_time_to_repair=30.0,
...                    server_count=10)
...     .build()
... )
>>> len(scenario.initial_entries)
50
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.entry import Entry
from repro.core.exceptions import InvalidParameterError
from repro.simulation.events import Event
from repro.simulation.rng import RngStreams
from repro.workload.failures import FailureProcess, FailureProcessConfig
from repro.workload.generator import SteadyStateWorkload
from repro.workload.lifetimes import LifetimeDistribution
from repro.workload.lookups import LookupWorkload


@dataclass(frozen=True)
class Scenario:
    """A composed trace: initial placement plus a sorted event stream."""

    initial_entries: Tuple[Entry, ...]
    events: Tuple[Event, ...]

    @property
    def horizon(self) -> float:
        return self.events[-1].time if self.events else 0.0


def merge_event_streams(*streams: List[Event]) -> List[Event]:
    """Merge pre-sorted event lists into one time-ordered list.

    Ties keep the stream-argument order (churn before lookups before
    failures if passed in that order), which the engine then preserves
    by insertion-order tie-breaking.
    """
    merged: List[Event] = []
    for stream in streams:
        merged.extend(stream)
    merged.sort(key=lambda event: event.time)
    return merged


class ScenarioBuilder:
    """Fluent assembly of churn + lookups + failures into one trace.

    Each ingredient draws from its own named RNG stream derived from
    the builder's master seed, so adding lookup traffic never perturbs
    the churn sequence — the same isolation discipline the experiments
    use.
    """

    def __init__(self, seed: int = 0) -> None:
        self._streams = RngStreams(seed)
        self._initial: Tuple[Entry, ...] = ()
        self._churn_events: List[Event] = []
        self._lookup_events: List[Event] = []
        self._failure_events: List[Event] = []
        self._horizon: Optional[float] = None

    def with_steady_state_churn(
        self,
        entry_count: int,
        updates: int,
        arrival_gap: float = 10.0,
        lifetime: Optional[LifetimeDistribution] = None,
    ) -> "ScenarioBuilder":
        """Initial population of ``entry_count`` plus ``updates`` churn."""
        workload = SteadyStateWorkload(
            entry_count,
            arrival_gap=arrival_gap,
            lifetime=lifetime,
            rng=self._streams.get("churn"),
        )
        trace = workload.generate(updates)
        self._initial = trace.initial_entries
        self._churn_events = list(trace.events)
        if self._churn_events:
            last = self._churn_events[-1].time
            self._horizon = max(self._horizon or 0.0, last)
        return self

    def with_lookups(
        self,
        count: int,
        target: Optional[int] = None,
        target_range: Optional[Tuple[int, int]] = None,
        start: float = 0.0,
        end: Optional[float] = None,
    ) -> "ScenarioBuilder":
        """``count`` lookups uniformly spread over [start, end]."""
        workload = LookupWorkload(
            target=target,
            target_range=target_range,
            rng=self._streams.get("lookups"),
        )
        horizon = end if end is not None else self._horizon
        if horizon is None:
            raise InvalidParameterError(
                "with_lookups needs an explicit end, or churn added "
                "first to define the horizon"
            )
        self._lookup_events = list(
            workload.events_uniform(count, start, horizon)
        )
        self._horizon = max(self._horizon or 0.0, horizon)
        return self

    def with_failures(
        self,
        availability: float,
        mean_time_to_repair: float,
        server_count: int,
        horizon: Optional[float] = None,
    ) -> "ScenarioBuilder":
        """Independent crash/repair streams for every server."""
        if not 0.0 < availability < 1.0:
            raise InvalidParameterError("availability must be in (0, 1)")
        effective = horizon if horizon is not None else self._horizon
        if effective is None:
            raise InvalidParameterError(
                "with_failures needs an explicit horizon, or churn "
                "added first to define one"
            )
        mtbf = availability * mean_time_to_repair / (1.0 - availability)
        process = FailureProcess(
            FailureProcessConfig(mtbf, mean_time_to_repair),
            rng=self._streams.get("failures"),
        )
        self._failure_events = process.events_for_fleet(server_count, effective)
        return self

    def build(self) -> Scenario:
        """The composed, time-sorted scenario."""
        events = merge_event_streams(
            self._churn_events, self._lookup_events, self._failure_events
        )
        return Scenario(initial_entries=self._initial, events=tuple(events))
