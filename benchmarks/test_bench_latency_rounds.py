"""Benchmark: §3.5's predictability observation as latency rounds.

"While a Round-y client can tell, in advance, how many servers it
needs to contact for a lookup, a Hash-y client cannot."  Under a
parallel-fan-out latency model that knowledge is worth real round
trips: Round-Robin answers any target in one round while the adaptive
schemes pay one round per contacted server.
"""

from _bench_utils import render_and_print

from repro.cluster.cluster import Cluster
from repro.core.entry import make_entries
from repro.experiments.runner import ExperimentResult
from repro.metrics.latency import estimate_lookup_latency
from repro.strategies.fixed import FixedX
from repro.strategies.hashing import HashY
from repro.strategies.random_server import RandomServerX
from repro.strategies.round_robin import RoundRobinY


def _run_latency() -> ExperimentResult:
    result = ExperimentResult(
        name="Latency rounds vs target (h=100, n=10, budget 200)",
        headers=["target", "round_robin_2", "random_server_20", "hash_2",
                 "fixed_20"],
    )
    cluster = Cluster(10, seed=61)
    schemes = {
        "round_robin_2": RoundRobinY(cluster, y=2, key="rr"),
        "random_server_20": RandomServerX(cluster, x=20, key="rs"),
        "hash_2": HashY(cluster, y=2, key="h"),
        "fixed_20": FixedX(cluster, x=20, key="f"),
    }
    entries = make_entries(100)
    for strategy in schemes.values():
        strategy.place(entries)
    for target in (10, 20, 40, 60, 80):
        row = {"target": target}
        for label, strategy in schemes.items():
            estimate = estimate_lookup_latency(strategy, target, lookups=300)
            row[label] = round(estimate.mean_rounds, 3)
        result.rows.append(row)
    return result


def test_bench_latency_rounds(benchmark):
    result = benchmark.pedantic(_run_latency, rounds=1, iterations=1)
    render_and_print(result)

    for row in result.rows:
        # Round-Robin's precomputable fan-out: always one round.
        assert row["round_robin_2"] == 1.0
        assert row["fixed_20"] == 1.0  # single contact (fails above x)
    # Adaptive schemes pay per contact, growing with the target.
    assert result.row_for(target=80)["hash_2"] >= 4.0
    assert result.row_for(target=80)["random_server_20"] >= 4.0
    assert result.row_for(target=10)["hash_2"] < 1.5
