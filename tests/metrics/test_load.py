"""Unit tests for the server-load metric and hot-spot behaviour."""

import pytest

from repro.baselines.key_partitioning import KeyPartitioning
from repro.cluster.cluster import Cluster
from repro.core.entry import make_entries
from repro.core.exceptions import InvalidParameterError
from repro.metrics.load import LoadProfile, measure_lookup_load
from repro.strategies.full_replication import FullReplication
from repro.strategies.round_robin import RoundRobinY


class TestLoadProfile:
    def test_peak_share(self):
        profile = LoadProfile({0: 80, 1: 10, 2: 10}, total_requests=100, lookups=100)
        assert profile.peak_load == 80
        assert profile.peak_share == pytest.approx(0.8)
        assert profile.busy_servers == 3

    def test_imbalance_even_load(self):
        profile = LoadProfile({0: 10, 1: 10}, total_requests=20, lookups=20)
        assert profile.imbalance() == pytest.approx(1.0)

    def test_imbalance_hot_spot(self):
        profile = LoadProfile({0: 20, 1: 0}, total_requests=20, lookups=20)
        assert profile.imbalance() == pytest.approx(2.0)

    def test_empty(self):
        profile = LoadProfile({}, total_requests=0, lookups=0)
        assert profile.peak_share == 0.0
        assert profile.imbalance() == 0.0


class TestMeasuredLoad:
    def test_partitioning_is_a_perfect_hot_spot(self, cluster):
        baseline = KeyPartitioning(cluster)
        baseline.place(make_entries(50))
        profile = measure_lookup_load(baseline, target=5, lookups=300)
        assert profile.peak_share == 1.0
        assert profile.busy_servers == 1

    def test_full_replication_spreads_load(self, cluster):
        strategy = FullReplication(cluster)
        strategy.place(make_entries(50))
        profile = measure_lookup_load(strategy, target=5, lookups=500)
        assert profile.peak_share < 0.25  # ideal 0.1, noise allowed
        assert profile.busy_servers >= 9

    def test_round_robin_spreads_load(self):
        strategy = RoundRobinY(Cluster(10, seed=5), y=2)
        strategy.place(make_entries(100))
        profile = measure_lookup_load(strategy, target=5, lookups=500)
        assert profile.peak_share < 0.25
        assert profile.total_requests == 500  # one server per lookup

    def test_updates_not_charged_to_load(self, cluster):
        strategy = FullReplication(cluster)
        strategy.place(make_entries(10))
        profile = measure_lookup_load(strategy, target=2, lookups=100)
        assert profile.total_requests == 100

    def test_validation(self, cluster):
        strategy = FullReplication(cluster)
        strategy.place(make_entries(10))
        with pytest.raises(InvalidParameterError):
            measure_lookup_load(strategy, target=2, lookups=0)


class TestHotspotExperiment:
    def test_experiment_shapes(self):
        from repro.experiments.hotspot import HotspotConfig, run

        result = run(HotspotConfig(runs=2, lookups=400))
        partitioning = result.row_for(architecture="key_partitioning")
        assert partitioning["peak_share"] == 1.0
        assert partitioning["survives_owner_failure"] == 0.0
        for name in ("full_replication", "round_robin", "random_server"):
            row = result.row_for(architecture=name)
            assert row["peak_share"] < 0.3
            assert row["survives_owner_failure"] == 1.0
