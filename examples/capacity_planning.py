"""Capacity planning: size a partial lookup deployment on paper first.

Given what an operator knows up front — expected entries, server
count, storage budget, target answer size, update intensity — the
planner evaluates every closed form from the paper at once, marks the
quantities that genuinely need simulation, and the selector explains
which scheme the paper's rules of thumb favour.  Then we *check the
plan against reality* by running the simulator at the same parameters.

Run:  python examples/capacity_planning.py
"""

from repro import Cluster
from repro.analysis.planner import DeploymentSpec, cheapest_for_updates, plan_rows
from repro.core.entry import make_entries
from repro.experiments.report import render_table
from repro.metrics.collector import MetricsCollector
from repro.strategies.registry import create_strategy
from repro.strategies.selector import WorkloadProfile, recommend

SPEC = DeploymentSpec(
    entry_count=150,
    server_count=10,
    storage_budget=300,
    target_answer_size=20,
    updates_per_lookup=0.5,
)


def main() -> None:
    rows = plan_rows(SPEC)
    print(render_table(
        ["scheme", "params", "storage", "lookup_cost", "coverage",
         "fault_tol", "update_msgs", "notes"],
        rows,
        title=(
            f"Analytic plan: h={SPEC.entry_count}, n={SPEC.server_count}, "
            f"budget={SPEC.storage_budget}, t={SPEC.target_answer_size}"
        ),
    ))
    print(f"\ncheapest for updates (closed-form head-to-head, §6.4): "
          f"{cheapest_for_updates(SPEC)}")

    profile = WorkloadProfile(
        entry_count=SPEC.entry_count,
        server_count=SPEC.server_count,
        target_answer_size=SPEC.target_answer_size,
        update_rate=SPEC.updates_per_lookup,
        needs_complete_coverage=True,
    )
    best = recommend(profile)[0]
    print(f"rules-of-thumb pick: {best.name}")
    for reason in best.reasons:
        print(f"   {reason}")

    # Check the plan against a real placement of the winning scheme.
    params = {"hash": {"y": 2}, "fixed": {"x": 30},
              "round_robin": {"y": 2}, "random_server": {"x": 30},
              "full_replication": {}}[best.name]
    cluster = Cluster(SPEC.server_count, seed=2024)
    strategy = create_strategy(best.name, cluster, **params)
    entries = make_entries(SPEC.entry_count)
    strategy.place(entries)
    snapshot = MetricsCollector(
        lookup_samples=300, unfairness_samples=1000
    ).collect(strategy, SPEC.target_answer_size, entries)
    print(f"\nsimulated check of {best.name}: "
          f"storage={snapshot.storage_cost}, "
          f"lookup_cost={snapshot.mean_lookup_cost:.2f}, "
          f"coverage={snapshot.coverage}, "
          f"fault_tolerance={snapshot.fault_tolerance}")


if __name__ == "__main__":
    main()
