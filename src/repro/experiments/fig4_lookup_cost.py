"""Figure 4: lookup cost vs target answer size at a fixed storage budget.

Paper setup: 100 entries, 10 servers, a 200-entry storage budget
(hence Fixed-20, RandomServer-20, Round-2, Hash-2), target answer
sizes 10..50; 5000 runs of 5000 lookups per data point.  Fixed-20 is
omitted from the figure because it cannot answer targets above 20; we
include it as a column with its failure rate so the omission is
visible in the data.

Expected shape: Round-2 is a step curve (+1 server per 20 of target),
RandomServer-20 tracks it from above (overlapping subsets waste
contacts), Hash-2 is above 1 even for small targets but can beat the
others just past multiples of 20.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Dict, List, Optional, Tuple

from repro.analysis.formulas import solve_x_from_budget, solve_y_from_budget
from repro.cluster.cluster import Cluster
from repro.core.entry import make_entries
from repro.experiments.parallel import make_executor
from repro.experiments.runner import ExperimentResult, average_runs_multi
from repro.metrics.lookup_cost import estimate_lookup_cost
from repro.strategies.fixed import FixedX
from repro.strategies.hashing import HashY
from repro.strategies.random_server import RandomServerX
from repro.strategies.round_robin import RoundRobinY


@dataclass(frozen=True)
class Fig4Config:
    """Paper parameters, with scaled-down default run counts."""

    entry_count: int = 100
    server_count: int = 10
    storage_budget: int = 200
    targets: Tuple[int, ...] = (10, 15, 20, 25, 30, 35, 40, 45, 50)
    #: Placements per data point (paper: 5000).
    runs: int = 30
    #: Lookups per placement (paper: 5000).
    lookups_per_run: int = 200
    seed: int = 4


def _strategies(config: Fig4Config, cluster: Cluster):
    x = solve_x_from_budget(config.storage_budget, config.server_count)
    y = solve_y_from_budget(config.storage_budget, config.entry_count)
    return {
        f"round_robin_{y}": RoundRobinY(cluster, y=y, key="rr"),
        f"random_server_{x}": RandomServerX(cluster, x=x, key="rs"),
        f"hash_{y}": HashY(cluster, y=y, key="h"),
        f"fixed_{x}": FixedX(cluster, x=x, key="f"),
    }


def measure_point(config: Fig4Config, target: int, seed: int) -> Dict[str, float]:
    """One run: place each strategy fresh, average lookup cost at ``target``.

    All four strategies share one cluster (under different keys) so
    they see the same seeds, pairing the comparison.
    """
    cluster = Cluster(config.server_count, seed=seed)
    entries = make_entries(config.entry_count)
    samples: Dict[str, float] = {}
    for label, strategy in _strategies(config, cluster).items():
        strategy.place(entries)
        estimate = estimate_lookup_cost(strategy, target, config.lookups_per_run)
        samples[label] = estimate.mean_cost
        samples[label + "_fail"] = estimate.failure_rate
    return samples


def run(
    config: Fig4Config = Fig4Config(), *, jobs: Optional[int] = None
) -> ExperimentResult:
    """Regenerate Figure 4's series (plus Fixed-x's failure column)."""
    x = solve_x_from_budget(config.storage_budget, config.server_count)
    y = solve_y_from_budget(config.storage_budget, config.entry_count)
    labels = [f"round_robin_{y}", f"random_server_{x}", f"hash_{y}", f"fixed_{x}"]
    result = ExperimentResult(
        name="Figure 4: lookup cost vs target answer size",
        headers=["target"] + labels + [f"fixed_{x}_fail"],
        meta={
            "h": config.entry_count,
            "n": config.server_count,
            "budget": config.storage_budget,
            "runs": config.runs,
            "lookups_per_run": config.lookups_per_run,
        },
    )
    with make_executor(jobs) as executor:
        for target in config.targets:
            averaged = average_runs_multi(
                partial(measure_point, config, target),
                master_seed=config.seed + target,
                runs=config.runs,
                executor=executor,
            )
            row: Dict[str, object] = {"target": target}
            for label in labels:
                row[label] = round(averaged[label].mean, 3)
            row[f"fixed_{x}_fail"] = round(averaged[f"fixed_{x}_fail"].mean, 3)
            result.rows.append(row)
    return result
