"""Ablation: Fixed-x's selective broadcast vs always-broadcast updates.

Fixed-x only broadcasts an add while the shared subset is not full,
and a delete only when the victim is tracked (§5.2) — the source of
its ``1 + (x/h)·n`` update cost.  Disabling the check (broadcasting
every update, as full replication does) costs ``1 + n`` per update.
This bench measures the saving across the t/h ratio sweep of Fig 14.
"""

import random

from _bench_utils import render_and_print

from repro.cluster.cluster import Cluster
from repro.experiments.runner import ExperimentResult
from repro.simulation.replay import TraceReplayer
from repro.strategies.fixed import FixedX
from repro.strategies.full_replication import FullReplication
from repro.workload.generator import SteadyStateWorkload


def _messages_per_update(build, entry_count: int, seed: int) -> float:
    rng = random.Random(seed)
    workload = SteadyStateWorkload(entry_count, rng=rng)
    trace = workload.generate(1500)
    cluster = Cluster(10, seed=seed)
    strategy = build(cluster)
    strategy.place(trace.initial_entries)
    cluster.reset_stats()
    stats = TraceReplayer(strategy).replay(trace.events)
    return stats.update_messages / trace.update_count


def _run_ablation() -> ExperimentResult:
    result = ExperimentResult(
        name="Ablation: Fixed-x selective broadcast (x=50)",
        headers=["entry_count", "selective", "always_broadcast", "saving_pct"],
    )
    for h in (100, 200, 400):
        selective = _messages_per_update(
            lambda c: FixedX(c, x=50), entry_count=h, seed=h
        )
        # Full replication is exactly "Fixed-x without the check":
        # every update broadcasts unconditionally.
        always = _messages_per_update(
            lambda c: FullReplication(c), entry_count=h, seed=h
        )
        result.rows.append(
            {
                "entry_count": h,
                "selective": round(selective, 2),
                "always_broadcast": round(always, 2),
                "saving_pct": round(100 * (1 - selective / always), 1),
            }
        )
    return result


def test_bench_ablation_selective_broadcast(benchmark):
    result = benchmark.pedantic(_run_ablation, rounds=1, iterations=1)
    render_and_print(result)
    for row in result.rows:
        assert row["always_broadcast"] > 10.5  # ~1 + n
        assert row["selective"] < row["always_broadcast"]
    # The saving grows as the tracked fraction x/h shrinks.
    savings = result.column("saving_pct")
    assert savings == sorted(savings)
    assert savings[-1] > 60
