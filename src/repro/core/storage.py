"""The storage backend interface and the default in-memory backend.

Every simulated server keeps one local entry store per key.  The store
used to be a single concrete class (``EntryStore`` in
:mod:`repro.cluster.server`); it is now a *backend* behind the
:class:`StorageBackend` interface so a deployment can choose where the
entries live:

- :class:`MemoryBackend` — the original bitset-backed in-memory store,
  still the default everywhere.  ``EntryStore`` remains as an alias so
  existing imports and type references keep working.
- ``repro.storage.appendlog.LogBackend`` — the same in-memory
  representation with every mutation journaled to an append log, so a
  crashed process rebuilds its stores bit-identically on restart.

The interface is exactly the store surface the rest of the codebase
already depends on, made explicit.  Four layers are load-bearing and
pin the contract:

- **Seeded RNG sampling order** — :meth:`StorageBackend.sample` and
  :meth:`StorageBackend.pop_random` must draw from the *insertion
  ordered* entry list, so seeded runs replay identically whichever
  backend holds the entries.
- **The bitset kernel** — :meth:`StorageBackend.mask` and the parallel
  dense-index list must stay consistent with the shared per-key
  :class:`~repro.core.interning.EntryInterner`; coverage questions
  reduce to ``int.__or__`` + ``bit_count()``.
- **Writer-bus delta fan-out** — deltas are bitmask diffs, so two
  backends that report equal masks after the same mutation sequence
  are interchangeable mid-fleet.
- **Reply-cache epoch stamps** — a cached reply is valid exactly when
  the store state it was computed from is current; backends must make
  every mutation observable through the public mutators (no
  out-of-band state changes).

Backends are constructed per ``(key, server)`` by a *store factory*
(see :data:`StoreFactory`) threaded through
:class:`~repro.cluster.cluster.Cluster` and
:class:`~repro.cluster.server.Server`; the default factory is plain
:class:`MemoryBackend`.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Callable, Iterable, Iterator, Optional

from repro.core.entry import Entry
from repro.core.interning import EntryInterner

if TYPE_CHECKING:  # pragma: no cover - typing only
    StoreFactory = Callable[[str, int, EntryInterner], "StorageBackend"]


class StorageBackend(ABC):
    """The per-(key, server) entry store contract.

    An insertion-ordered set of entries with O(1) membership, dense
    interned indices, and a bitmask mirror.  Implementations must keep
    three views in lock-step after every mutation:

    - the ordered entry list (``as_list``/``__iter__`` order == the
      order entries were added; removal preserves the relative order
      of survivors),
    - the parallel dense-index list (``indices()``),
    - the bitmask over the interner's index space (``mask``).

    Recovery invariant (what "bit-identical" means for a durable
    backend): after a crash and replay, ``as_list()``, ``indices()``
    and ``mask`` must equal the never-crashed store's, entry for entry
    and bit for bit — so sampling the recovered store with an equal
    RNG state yields the same answer bytes.
    """

    __slots__ = ()

    @property
    @abstractmethod
    def mask(self) -> int:
        """Bitmask over the interner's dense index space."""

    @property
    @abstractmethod
    def interner(self) -> EntryInterner:
        """The shared per-key interner this store's indices live in."""

    @abstractmethod
    def indices(self) -> list[int]:
        """Dense indices of the held entries, in insertion order."""

    @abstractmethod
    def add(self, entry: Entry) -> bool:
        """Insert ``entry``; return True if it was not already present."""

    @abstractmethod
    def discard(self, entry: Entry) -> bool:
        """Remove ``entry`` if present; return True if it was removed."""

    @abstractmethod
    def replace(self, old: Entry, new: Entry) -> bool:
        """Swap ``old`` for ``new`` in place, preserving position."""

    @abstractmethod
    def sample(self, count: int, rng: random.Random) -> list[Entry]:
        """``min(count, len(self))`` uniform samples; ``<= 0`` = all."""

    @abstractmethod
    def pop_random(self, rng: random.Random) -> Entry:
        """Remove and return one uniformly random entry."""

    @abstractmethod
    def clear(self) -> None:
        """Drop every entry."""

    @abstractmethod
    def __contains__(self, entry: Entry) -> bool: ...

    @abstractmethod
    def __len__(self) -> int: ...

    @abstractmethod
    def __iter__(self) -> Iterator[Entry]: ...

    @abstractmethod
    def as_list(self) -> list[Entry]:
        """The held entries in insertion order."""

    @abstractmethod
    def as_set(self) -> set[Entry]: ...

    def restore(self, entries: Iterable[Entry]) -> None:
        """Replace the whole contents with ``entries``, in order.

        The snapshot/resync surface: one logical operation, so a
        durable backend can journal it as a single record instead of a
        clear plus N adds.  The default is exactly clear-then-add.
        """
        self.clear()
        for entry in entries:
            self.add(entry)


class MemoryBackend(StorageBackend):
    """An insertion-ordered set of entries with O(1) membership.

    Servers need three things from their local store: membership tests
    (Fixed-x's "do I already hold v?"), uniform random sampling (every
    strategy's per-server lookup answer), and deterministic iteration
    order so seeded runs are reproducible.

    Internally the store is backed by the bitset placement kernel's
    representation: entries are interned into a dense, stable index
    space (shared cluster-wide per key via an
    :class:`~repro.core.interning.EntryInterner`) and the store keeps,
    alongside the ordered entry list, a parallel list of dense indices
    plus an integer bitmask with one bit per held entry.  Membership is
    a bit test, and coverage/union questions over many stores reduce to
    ``int.__or__`` + ``bit_count()`` (see ``Cluster.coverage``).
    Sampling still draws from the ordered list, so seeded RNG streams
    are identical to the pre-bitset representation.
    """

    __slots__ = ("_entries", "_indices", "_mask", "_interner")

    def __init__(
        self,
        entries: Iterable[Entry] = (),
        interner: Optional[EntryInterner] = None,
    ) -> None:
        self._interner = interner if interner is not None else EntryInterner()
        self._entries: list[Entry] = []
        self._indices: list[int] = []
        self._mask: int = 0
        for entry in entries:
            self.add(entry)

    @property
    def mask(self) -> int:
        """Bitmask over the interner's dense index space (one bit per entry)."""
        return self._mask

    @property
    def interner(self) -> EntryInterner:
        return self._interner

    def indices(self) -> list[int]:
        """Dense indices of the held entries, in insertion order."""
        return list(self._indices)

    def add(self, entry: Entry) -> bool:
        """Insert ``entry``; return True if it was not already present."""
        index = self._interner.intern(entry)
        bit = 1 << index
        if self._mask & bit:
            return False
        self._mask |= bit
        self._entries.append(entry)
        self._indices.append(index)
        return True

    def discard(self, entry: Entry) -> bool:
        """Remove ``entry`` if present; return True if it was removed."""
        index = self._interner.index_of(entry.entry_id)
        if index is None or not (self._mask >> index) & 1:
            return False
        position = self._indices.index(index)
        self._entries.pop(position)
        self._indices.pop(position)
        self._mask ^= 1 << index
        return True

    def replace(self, old: Entry, new: Entry) -> bool:
        """Swap ``old`` for ``new`` in place, preserving position."""
        old_index = self._interner.index_of(old.entry_id)
        if old_index is None or not (self._mask >> old_index) & 1:
            return False
        new_index = self._interner.intern(new)
        if (self._mask >> new_index) & 1:
            return False
        position = self._indices.index(old_index)
        self._entries[position] = new
        self._indices[position] = new_index
        self._mask ^= (1 << old_index) | (1 << new_index)
        return True

    def sample(self, count: int, rng: random.Random) -> list[Entry]:
        """Return ``min(count, len(self))`` uniformly sampled entries.

        This implements the per-server lookup answer the paper
        specifies for every strategy: "returns t randomly selected
        entries stored on the server or all the entries if the total
        is less than t".  ``count <= 0`` means "everything".
        """
        if count <= 0 or count >= len(self._entries):
            return list(self._entries)
        return rng.sample(self._entries, count)

    def pop_random(self, rng: random.Random) -> Entry:
        """Remove and return one uniformly random entry."""
        if not self._entries:
            raise KeyError("pop_random from an empty store")
        position = rng.randrange(len(self._entries))
        entry = self._entries.pop(position)
        self._mask ^= 1 << self._indices.pop(position)
        return entry

    def clear(self) -> None:
        self._entries.clear()
        self._indices.clear()
        self._mask = 0

    def __contains__(self, entry: Entry) -> bool:
        index = self._interner.index_of(entry.entry_id)
        return index is not None and bool((self._mask >> index) & 1)

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[Entry]:
        return iter(self._entries)

    def as_list(self) -> list[Entry]:
        return list(self._entries)

    def as_set(self) -> set[Entry]:
        return set(self._entries)


#: Backwards-compatible name: the store every server used before the
#: backend split.  Kept as a real alias (not a subclass) so instance
#: checks and constructed objects are indistinguishable from before.
EntryStore = MemoryBackend


__all__ = ["EntryStore", "MemoryBackend", "StorageBackend"]
