"""Unit tests for the Cluster substrate."""

import pytest

from repro.cluster.cluster import Cluster
from repro.core.entry import Entry, make_entries
from repro.core.exceptions import InvalidParameterError, NoOperationalServerError


class TestTopology:
    def test_size(self, cluster):
        assert cluster.size == 10
        assert len(cluster.servers) == 10

    def test_minimum_size_enforced(self):
        with pytest.raises(InvalidParameterError):
            Cluster(0)

    def test_server_ids_sequential(self, cluster):
        assert [s.server_id for s in cluster.servers] == list(range(10))

    def test_server_lookup_wraps(self, cluster):
        assert cluster.server(13).server_id == 3

    def test_seeded_clusters_replay(self):
        a = Cluster(5, seed=1)
        b = Cluster(5, seed=1)
        assert [a.random_server_id() for _ in range(20)] == [
            b.random_server_id() for _ in range(20)
        ]


class TestFailures:
    def test_fail_and_recover(self, cluster):
        cluster.fail(3)
        assert not cluster.server(3).alive
        assert cluster.failed_count == 1
        cluster.recover(3)
        assert cluster.failed_count == 0

    def test_alive_ids_excludes_failed(self, cluster):
        cluster.fail_many([1, 4])
        assert 1 not in cluster.alive_ids()
        assert len(cluster.alive_ids()) == 8

    def test_random_alive_avoids_failed(self, cluster):
        cluster.fail_many(range(9))  # only server 9 alive
        for _ in range(20):
            assert cluster.random_alive_server_id() == 9

    def test_all_failed_raises(self, cluster):
        cluster.fail_many(range(10))
        with pytest.raises(NoOperationalServerError):
            cluster.random_alive_server_id()

    def test_recover_all(self, cluster):
        cluster.fail_many(range(10))
        cluster.recover_all()
        assert cluster.failed_count == 0


class TestObservations:
    def _populate(self, cluster):
        cluster.server(0).store("k").add(Entry("a"))
        cluster.server(0).store("k").add(Entry("b"))
        cluster.server(1).store("k").add(Entry("b"))

    def test_storage_cost_counts_copies(self, cluster):
        self._populate(cluster)
        assert cluster.storage_cost("k") == 3

    def test_storage_cost_includes_failed_servers(self, cluster):
        self._populate(cluster)
        cluster.fail(0)
        assert cluster.storage_cost("k") == 3

    def test_store_sizes(self, cluster):
        self._populate(cluster)
        sizes = cluster.store_sizes("k")
        assert sizes[0] == 2 and sizes[1] == 1 and sum(sizes) == 3

    def test_coverage_distinct(self, cluster):
        self._populate(cluster)
        assert cluster.coverage("k") == 2

    def test_coverage_alive_only(self, cluster):
        self._populate(cluster)
        cluster.fail(0)
        assert cluster.coverage("k") == 1  # only b survives on server 1

    def test_coverage_can_include_failed(self, cluster):
        self._populate(cluster)
        cluster.fail(0)
        assert cluster.coverage("k", alive_only=False) == 2

    def test_replica_counts(self, cluster):
        self._populate(cluster)
        counts = cluster.replica_counts("k")
        assert counts[Entry("a")] == 1
        assert counts[Entry("b")] == 2

    def test_placement_map(self, cluster):
        self._populate(cluster)
        placement = cluster.placement("k")
        assert placement[0] == {Entry("a"), Entry("b")}
        assert placement[2] == set()

    def test_wipe(self, cluster):
        self._populate(cluster)
        cluster.wipe()
        assert cluster.storage_cost("k") == 0
