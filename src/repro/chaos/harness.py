"""The chaos soak loop: workload + fault plan + sweeps + invariants.

The harness wraps one strategy and stage-manages a full soak:

1. **place** the initial entries on a healthy cluster;
2. **arm** — swap in a retrying client and install the fault plan;
3. **soak** — replay the timed add/delete/lookup trace while an
   :class:`~repro.maintenance.anti_entropy.AntiEntropySweep` runs on
   the same engine, restarting crashed servers and repairing what it
   can;
4. **quiesce** — uninstall the plan, recover everyone, repair until
   the placement verifies clean;
5. **audit** — check the invariants and issue a few fault-free
   lookups that must each succeed or be explicitly degraded.

The report separates the three traffic ledgers the run produces: the
workload's §6.4 update/lookup messages, the sweeps' repair messages,
and the fault layer's own delivery accounting — mixing them would
make the paper's cost numbers meaningless under faults.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.cluster.client import Client, RetryPolicy
from repro.cluster.faults import Blackout, CrashPoint, FaultPlan
from repro.core import columns
from repro.core.entry import Entry
from repro.core.exceptions import InvalidParameterError
from repro.maintenance.anti_entropy import AntiEntropySweep
from repro.maintenance.repair import repair
from repro.maintenance.verify import verify_placement
from repro.simulation.events import Event
from repro.simulation.replay import TraceReplayer
from repro.strategies.base import PlacementStrategy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.tracer import Tracer


def default_fault_plan(
    seed: int,
    drop_probability: float = 0.05,
    duplicate_probability: float = 0.02,
    server_count: int = 10,
) -> FaultPlan:
    """The standard soak schedule: loss + duplication + a blackout +
    crash points at the protocol steps every scheme family exercises.

    Crash points name concrete message types, so on a scheme that
    never sends that type the point simply never fires; the mix below
    guarantees at least the lookup-step crashes fire everywhere.
    """
    if server_count < 6:
        raise InvalidParameterError(
            f"default plan needs >= 6 servers, got {server_count}"
        )
    return FaultPlan(
        seed=seed,
        drop_probability=drop_probability,
        duplicate_probability=duplicate_probability,
        blackouts=(Blackout(server_count - 1, 20, 60),),
        crash_points=(
            CrashPoint(1, "LookupRequest", after=40),
            CrashPoint(2, "StoreMessage", after=10),
            CrashPoint(3, "RemoveMessage", after=5),
            CrashPoint(4, "StorePositioned", after=5),
            CrashPoint(5, "LookupRequest", after=150),
        ),
    )


@dataclass(frozen=True)
class ChaosReport:
    """Everything one soak observed, plus the invariant verdicts."""

    strategy: str
    #: Trace events replayed (adds + deletes + lookups).
    events: int
    lookups: int
    successes: int
    degraded: int
    retries: int
    refused_updates: int
    #: §6.4 traffic attributed to the workload itself.
    workload_messages: int
    #: Fault-layer ledger (FaultStats.as_row()).
    faults: Dict[str, int]
    #: Crash points that actually fired: (server, step, nth).
    crashes: Tuple[Tuple[int, str, int], ...]
    #: Anti-entropy activity during the soak.
    sweeps: int
    sweep_recoveries: int
    sweep_repairs: int
    sweep_repair_messages: int
    #: Repair passes needed after quiescence, and their traffic.
    final_repairs: int
    final_repair_messages: int
    violations_after: int
    #: Post-quiescence audit lookups: all must succeed or be
    #: explicitly degraded with genuinely insufficient coverage.
    audit_lookups: int
    audit_failures: int
    #: Human-readable invariant violations; empty means PASS.
    invariant_failures: Tuple[str, ...] = ()

    @property
    def passed(self) -> bool:
        return not self.invariant_failures

    @property
    def success_rate(self) -> float:
        if not self.lookups:
            return 1.0
        return self.successes / self.lookups

    def as_row(self) -> Dict[str, object]:
        """A flat dict keyed by :data:`repro.core.columns.CHAOS_SOAK_COLUMNS`."""
        return {
            columns.STRATEGY: self.strategy,
            columns.LOOKUPS: self.lookups,
            columns.SUCCESS_RATE: round(self.success_rate, 4),
            columns.DEGRADED: self.degraded,
            columns.RETRIES: self.retries,
            columns.REFUSED: self.refused_updates,
            columns.DROPPED: self.faults.get("dropped", 0),
            columns.DUPLICATED: self.faults.get("duplicated", 0),
            columns.CRASHES: len(self.crashes),
            columns.SWEEPS: self.sweeps,
            columns.REPAIR_MSGS: self.sweep_repair_messages
            + self.final_repair_messages,
            columns.VIOLATIONS_AFTER: self.violations_after,
            columns.VERDICT: "PASS" if self.passed else "FAIL",
        }


class ChaosHarness:
    """Soak one strategy under a fault plan and audit the aftermath.

    Parameters
    ----------
    strategy:
        A freshly built strategy (the harness places the entries).
    plan:
        The fault schedule; installed only for the soak phase.
    retry_policy:
        Retry behaviour for the client during (and after) the soak;
        defaults to a 3-attempt exponential policy.  Pass None to keep
        the paper's single-pass client.
    sweep_period:
        Virtual time between anti-entropy sweeps.
    repair_mode:
        Passed to :func:`~repro.maintenance.repair.repair`.
    tracer:
        Optional :class:`~repro.obs.tracer.Tracer`.  When set, the
        soak emits the full structured trace: a ``"phase"`` event per
        lifecycle stage, per-lookup spans (via the client), update
        delivery and server fail/recover events (via the cluster), and
        ``"repair_sweep"`` spans (via the anti-entropy task), all
        stamped with the replay engine's virtual clock.
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`.  When
        set, the client publishes per-lookup counters during the run
        and the harness publishes the closing ``MessageStats`` /
        ``FaultStats`` / sweep ledgers before returning.
    """

    #: Safety valve on the post-quiescence repair loop; naive repair
    #: converges in one pass, targeted in two (stores first, then the
    #: removals expose missing copies) — 5 is generous.
    MAX_FINAL_REPAIRS = 5

    def __init__(
        self,
        strategy: PlacementStrategy,
        plan: FaultPlan,
        retry_policy: Optional[RetryPolicy] = RetryPolicy(),
        sweep_period: float = 250.0,
        repair_mode: str = "auto",
        tracer: Optional["Tracer"] = None,
        metrics: Optional["MetricsRegistry"] = None,
    ) -> None:
        self.strategy = strategy
        self.plan = plan
        self.retry_policy = retry_policy
        self.sweep_period = sweep_period
        self.repair_mode = repair_mode
        self.tracer = tracer
        self.metrics = metrics

    def _phase(self, phase: str) -> None:
        if self.tracer is not None:
            self.tracer.event("phase", phase=phase)

    def soak(
        self,
        initial_entries: Sequence[Entry],
        events: Sequence[Event],
        target: int,
        audit_lookups: int = 25,
    ) -> ChaosReport:
        """Run the full place → soak → quiesce → audit cycle."""
        strategy = self.strategy
        cluster = strategy.cluster
        network = cluster.network
        if self.tracer is not None:
            cluster.install_tracer(self.tracer)

        self._phase("place")
        strategy.place(initial_entries)
        if (
            self.retry_policy is not None
            or self.tracer is not None
            or self.metrics is not None
        ):
            # The traced/retrying client must be in place for the soak
            # AND the audit, so its per-lookup spans account for every
            # LookupRequest the run sends — that is what lets a trace's
            # span sums reconcile against MessageStats.lookup_messages.
            strategy.client = Client(
                cluster,
                retry_policy=self.retry_policy,
                tracer=self.tracer,
                metrics=self.metrics,
            )

        self._phase("arm")
        horizon = max((event.time for event in events), default=0.0)
        injector = network.install_fault_plan(self.plan)
        sweep = AntiEntropySweep(
            strategy,
            period=self.sweep_period,
            restart_failed=True,
            repair_mode=self.repair_mode,
            horizon=horizon,
            tracer=self.tracer,
        )
        replayer = TraceReplayer(strategy)
        if self.tracer is not None:
            replayer.engine.attach_tracer(self.tracer)
        sweep.start(replayer.engine, first_at=self.sweep_period)
        self._phase("soak")
        workload_before = network.stats.snapshot()
        trace_stats = replayer.replay(events)
        workload_traffic = network.stats.diff(workload_before)

        # Quiescence: faults off, everyone back, placement mended.
        self._phase("quiesce")
        sweep.stop()
        network.uninstall_fault_plan()
        cluster.recover_all()
        final_repairs = 0
        final_repair_messages = 0
        violations = verify_placement(strategy)
        while violations and final_repairs < self.MAX_FINAL_REPAIRS:
            report = repair(strategy, mode=self.repair_mode)
            final_repairs += 1
            final_repair_messages += report.messages
            violations = verify_placement(strategy)

        failures: List[str] = []
        if violations:
            failures.append(
                f"placement still broken after {final_repairs} repairs: "
                f"{len(violations)} violations, first: {violations[0]}"
            )
        for server in cluster.servers:
            stored = server.store(strategy.key).as_list()
            ids = {entry.entry_id for entry in stored}
            if len(ids) != len(stored):
                failures.append(
                    f"server {server.server_id} holds duplicate entries"
                )
        if not network.stats.balanced:
            failures.append("message books do not balance")
        if not injector.stats.balanced:
            failures.append(
                f"fault books do not balance: {injector.stats.as_row()}"
            )

        self._phase("audit")
        audit_failures = 0
        for _ in range(audit_lookups):
            result = strategy.partial_lookup(target)
            if result.success:
                continue
            if result.degraded and strategy.coverage() < target:
                # Honest shortfall: fewer than t entries exist at all.
                continue
            audit_failures += 1
        if audit_failures:
            failures.append(
                f"{audit_failures}/{audit_lookups} audit lookups came up "
                f"short despite coverage >= {target}"
            )

        if self.metrics is not None:
            # Scope the ledgers by scheme so several harnesses can
            # publish into one shared registry (the chaos-soak
            # experiment soaks five schemes) without the ledger
            # counters appearing to run backwards between schemes.
            scheme = type(strategy).name or type(strategy).__name__
            network.stats.publish(self.metrics, prefix=f"{scheme}.net")
            injector.stats.publish(self.metrics, prefix=f"{scheme}.faults")
            self.metrics.counter(f"{scheme}.sweep.sweeps").set_to(
                sweep.stats.sweeps
            )
            self.metrics.counter(f"{scheme}.sweep.recoveries").set_to(
                sweep.stats.recoveries
            )
            self.metrics.counter(f"{scheme}.sweep.repair_messages").set_to(
                sweep.stats.repair_messages
            )
        if self.tracer is not None:
            cluster.uninstall_tracer()

        return ChaosReport(
            strategy=type(strategy).name or type(strategy).__name__,
            events=len(events),
            lookups=trace_stats.lookups,
            successes=trace_stats.lookups - trace_stats.failed_lookups,
            degraded=replayer.log.degraded_lookups,
            retries=replayer.log.total_retries,
            refused_updates=trace_stats.refused_updates,
            workload_messages=workload_traffic.total,
            faults=injector.stats.as_row(),
            crashes=tuple(injector.stats.crashes),
            sweeps=sweep.stats.sweeps,
            sweep_recoveries=sweep.stats.recoveries,
            sweep_repairs=sweep.stats.repairs,
            sweep_repair_messages=sweep.stats.repair_messages,
            final_repairs=final_repairs,
            final_repair_messages=final_repair_messages,
            violations_after=len(violations),
            audit_lookups=audit_lookups,
            audit_failures=audit_failures,
            invariant_failures=tuple(failures),
        )
