"""Benchmark: lookup availability under random crash/repair.

The average-case companion to Figure 7's adversarial analysis: the
introduction's claim that "even if S2 is down, partial lookups can
continue", quantified.  Key partitioning's failure rate tracks its
owner's unavailability; the multi-copy partial schemes drive failures
toward zero as availability rises; Fixed-x's coverage cap shows up as
permanent failure for targets above x.
"""

from _bench_utils import render_and_print

from repro.experiments.availability import AvailabilityConfig, run


def test_bench_availability(benchmark):
    config = AvailabilityConfig(runs=5, lookups_per_run=400)
    result = benchmark.pedantic(lambda: run(config), rounds=1, iterations=1)
    render_and_print(result)

    for row in result.rows:
        assert row["fixed"] == 1.0  # t=35 > coverage 20, always
    best = result.row_for(availability=0.95)
    worst = result.row_for(availability=0.2)
    for label in ("random_server", "round_robin", "hash"):
        assert best[label] < 0.01
        assert worst[label] > 0.2  # harsh regimes do hurt
    # Partitioning ~ owner unavailability, the hot-spot fragility.
    assert best["key_partitioning"] > 0.02
    assert worst["key_partitioning"] > 0.6
