"""Client lookup cost: expected servers contacted per lookup (§4.2).

Computed by Monte-Carlo: drive the strategy through a batch of real
``partial_lookup`` calls (no failures injected, per the paper's cost
definition) and average the contact counts.  Figure 4 uses 5000
lookups per run over 5000 independent placements; the estimator takes
both knobs.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean
from typing import List

from repro.core.exceptions import InvalidParameterError
from repro.strategies.base import PlacementStrategy


@dataclass(frozen=True)
class LookupCostEstimate:
    """The result of a lookup-cost measurement."""

    target: int
    lookups: int
    mean_cost: float
    max_cost: int
    failures: int

    @property
    def failure_rate(self) -> float:
        return self.failures / self.lookups if self.lookups else 0.0


def estimate_lookup_cost(
    strategy: PlacementStrategy,
    target: int,
    lookups: int = 1000,
) -> LookupCostEstimate:
    """Average servers contacted over ``lookups`` random lookups.

    A lookup that exhausts every server without reaching the target
    still contributes its contact count (it contacted all ``n``) and
    is tallied as a failure; Fixed-x with ``t > x`` is the
    paper's "undefined" lookup-cost case and shows up here as a 100%
    failure rate rather than an exception.
    """
    if lookups < 1:
        raise InvalidParameterError(f"lookups must be >= 1, got {lookups}")
    costs: List[int] = []
    failures = 0
    for _ in range(lookups):
        result = strategy.partial_lookup(target)
        costs.append(result.lookup_cost)
        if not result.success:
            failures += 1
    return LookupCostEstimate(
        target=target,
        lookups=lookups,
        mean_cost=mean(costs),
        max_cost=max(costs),
        failures=failures,
    )
