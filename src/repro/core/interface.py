"""Abstract lookup-service interfaces (paper Section 2).

The paper defines a *traditional lookup service* over a set
``S = {(k_i, V_i)}`` with operations ``place``, ``lookup``, ``add`` and
``delete``, and a *partial lookup service* that replaces ``lookup(k)``
with ``partial_lookup(k, t)`` returning any subset of at least ``t``
entries.  These abstract base classes pin down those contracts; the
concrete multi-key implementation is
:class:`repro.core.service.PartialLookupDirectory` and the single-key
strategy implementations live in :mod:`repro.strategies`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, Set

from repro.core.entry import Entry
from repro.core.result import LookupResult


class TraditionalLookupService(ABC):
    """A key → entry-set service where lookups return every entry.

    Semantics (Section 2):

    - ``place(k, V)`` sets the entry set of ``k`` to ``V``, replacing
      any previous set.
    - ``lookup(k)`` returns the current entry set of ``k``, or the
      empty set for unknown keys.
    - ``add(k, v)`` inserts ``v`` into ``k``'s set, creating the key if
      needed.
    - ``delete(k, v)`` removes ``v`` from ``k``'s set if present.
    """

    @abstractmethod
    def place(self, key: str, entries: Iterable[Entry]) -> None:
        """Set the full entry set for ``key`` in one batch."""

    @abstractmethod
    def lookup(self, key: str) -> Set[Entry]:
        """Return every entry currently associated with ``key``."""

    @abstractmethod
    def add(self, key: str, entry: Entry) -> None:
        """Incrementally associate ``entry`` with ``key``."""

    @abstractmethod
    def delete(self, key: str, entry: Entry) -> None:
        """Incrementally dissociate ``entry`` from ``key``."""


class PartialLookupService(TraditionalLookupService):
    """A lookup service that supports bounded-size partial lookups.

    ``partial_lookup(k, t)`` may return *any* subset ``V' ⊆ V_k`` with
    ``|V'| >= t`` — the client does not care which ``t`` entries it
    gets (assumption 1, Section 2).  Implementations report how many
    servers were contacted so the client lookup cost metric can be
    computed.
    """

    @abstractmethod
    def partial_lookup(self, key: str, target: int) -> LookupResult:
        """Return at least ``target`` distinct entries for ``key``.

        Implementations must not raise when fewer than ``target``
        entries are retrievable; they return a result whose
        ``success`` flag is false, because lookup failure is an
        expected, measured event in the paper's evaluation.
        """

    def lookup(self, key: str) -> Set[Entry]:
        """Traditional full lookup expressed as a maximal partial lookup.

        Subclasses that can enumerate coverage cheaply may override;
        the default asks for every entry by passing an unbounded
        target, which drives the client to contact all servers.
        """
        result = self.partial_lookup(key, target=0)
        return set(result.entries)
