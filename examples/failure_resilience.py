"""Failure resilience: how each scheme degrades as servers die.

Section 4.4 evaluates worst-case fault tolerance with an adversarial
greedy heuristic (Appendix A).  This example makes that concrete: it
places the same 100 entries under four schemes at the same 200-entry
storage budget, then kills servers one at a time *in the adversary's
order* and tracks what a client can still retrieve after each failure.

Run:  python examples/failure_resilience.py
"""

from repro import Cluster
from repro.core.entry import make_entries
from repro.experiments.report import render_table
from repro.metrics.fault_tolerance import greedy_fault_tolerance
from repro.strategies.fixed import FixedX
from repro.strategies.hashing import HashY
from repro.strategies.random_server import RandomServerX
from repro.strategies.round_robin import RoundRobinY

ENTRIES = 100
TARGET = 20  # the lookup size whose survival we care about


def degradation_profile(strategy):
    """Coverage after each adversarial failure, worst-first."""
    tolerated, order = greedy_fault_tolerance(
        strategy, TARGET, return_order=True
    )
    profile = [strategy.coverage()]
    # Extend the adversary's order to all n-1 failures for the table.
    _, full_order = greedy_fault_tolerance(strategy, 0, return_order=True)
    for server_id in full_order:
        strategy.cluster.fail(server_id)
        profile.append(strategy.coverage())
    strategy.cluster.recover_all()
    return tolerated, profile


def main() -> None:
    cluster = Cluster(10, seed=404)
    entries = make_entries(ENTRIES)
    schemes = {
        "fixed-20": FixedX(cluster, x=20, key="f"),
        "random_server-20": RandomServerX(cluster, x=20, key="rs"),
        "round_robin-2": RoundRobinY(cluster, y=2, key="rr"),
        "hash-2": HashY(cluster, y=2, key="h"),
    }
    rows = []
    for label, strategy in schemes.items():
        strategy.place(entries)
        tolerated, profile = degradation_profile(strategy)
        rows.append(
            {
                "scheme": label,
                f"tolerates (t={TARGET})": tolerated,
                "coverage@0": profile[0],
                "@3 down": profile[3],
                "@6 down": profile[6],
                "@9 down": profile[9],
            }
        )
    print(render_table(
        ["scheme", f"tolerates (t={TARGET})", "coverage@0", "@3 down",
         "@6 down", "@9 down"],
        rows,
        title=f"Adversarial failures: {ENTRIES} entries on 10 servers, "
              "200-entry budget",
    ))
    print(
        "\nReading the table (paper §4.4):\n"
        " - fixed-x keeps its full (small) coverage down to the last\n"
        "   server: every server is a complete replica of the subset.\n"
        " - round_robin loses exactly h/n distinct entries per extra\n"
        "   failure once its y copies are exhausted.\n"
        " - random_server degrades most gracefully per failure thanks\n"
        "   to accidental overlap between its random subsets.\n"
        " - hash-y's uneven loads mean an adversary can take out its\n"
        "   biggest servers first - the S-shaped decline in Figure 7.\n"
    )


if __name__ == "__main__":
    main()
