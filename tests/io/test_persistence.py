"""Unit tests for result and trace persistence."""

import json
import random

import pytest

from repro.cluster.cluster import Cluster
from repro.core.exceptions import InvalidParameterError
from repro.experiments.runner import ExperimentResult
from repro.io.results import load_result, result_to_csv, save_result
from repro.io.traces import load_trace, save_trace
from repro.simulation.events import FailureEvent, LookupEvent, RecoveryEvent
from repro.simulation.replay import TraceReplayer
from repro.strategies.round_robin import RoundRobinY
from repro.workload.generator import SteadyStateWorkload, WorkloadTrace


def _result():
    return ExperimentResult(
        name="demo",
        headers=["x", "y"],
        rows=[{"x": 1, "y": 2.5}, {"x": 2, "y": 3.5}],
        meta={"runs": 3},
    )


class TestResults:
    def test_round_trip(self, tmp_path):
        path = save_result(_result(), tmp_path / "nested" / "demo.json")
        loaded = load_result(path)
        assert loaded.name == "demo"
        assert loaded.rows == _result().rows
        assert loaded.meta == {"runs": 3}

    def test_format_version_checked(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format_version": 99, "name": "x"}))
        with pytest.raises(InvalidParameterError, match="format version"):
            load_result(path)

    def test_csv_export(self, tmp_path):
        text = result_to_csv(_result(), tmp_path / "demo.csv")
        lines = text.strip().splitlines()
        assert lines[0] == "x,y"
        assert lines[1] == "1,2.5"
        assert (tmp_path / "demo.csv").read_text() == text

    def test_csv_without_file(self):
        assert result_to_csv(_result()).startswith("x,y")


class TestTraces:
    def test_round_trip_workload_trace(self, tmp_path):
        workload = SteadyStateWorkload(30, rng=random.Random(1))
        trace = workload.generate(200)
        path = save_trace(trace, tmp_path / "trace.jsonl")
        loaded = load_trace(path)
        assert loaded.initial_entries == trace.initial_entries
        assert len(loaded.events) == len(trace.events)
        for original, restored in zip(trace.events, loaded.events):
            assert type(original) is type(restored)
            assert original.time == restored.time

    def test_round_trip_mixed_event_kinds(self, tmp_path):
        trace = WorkloadTrace(
            initial_entries=(),
            events=(
                LookupEvent(1.0, target=5),
                FailureEvent(2.0, server_id=3),
                RecoveryEvent(4.0, server_id=3),
            ),
        )
        loaded = load_trace(save_trace(trace, tmp_path / "mixed.jsonl"))
        assert isinstance(loaded.events[0], LookupEvent)
        assert loaded.events[0].target == 5
        assert isinstance(loaded.events[1], FailureEvent)
        assert loaded.events[1].server_id == 3
        assert isinstance(loaded.events[2], RecoveryEvent)

    def test_replayed_saved_trace_equals_original(self, tmp_path):
        """A saved trace drives a strategy to the identical end state."""
        workload = SteadyStateWorkload(40, rng=random.Random(2))
        trace = workload.generate(300)
        loaded = load_trace(save_trace(trace, tmp_path / "t.jsonl"))

        placements = []
        for version in (trace, loaded):
            strategy = RoundRobinY(Cluster(10, seed=3), y=2)
            strategy.place(version.initial_entries)
            TraceReplayer(strategy).replay(version.events)
            placements.append(strategy.placement())
        assert placements[0] == placements[1]

    def test_truncated_file_detected(self, tmp_path):
        workload = SteadyStateWorkload(10, rng=random.Random(4))
        path = save_trace(workload.generate(50), tmp_path / "t.jsonl")
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-5]) + "\n")
        with pytest.raises(InvalidParameterError, match="declares"):
            load_trace(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(InvalidParameterError, match="empty"):
            load_trace(path)

    def test_version_checked(self, tmp_path):
        path = tmp_path / "old.jsonl"
        path.write_text(json.dumps({"format_version": 0, "initial_entries": []}))
        with pytest.raises(InvalidParameterError, match="format version"):
            load_trace(path)
