"""Input events consumed by the sans-IO protocol state machines.

Events are what the *driver* tells a state machine about the outside
world: a reply came back, a contact went unanswered, a backoff
elapsed, a message arrived.  They are deliberately plain value objects
— no transport handles, no sockets, no cluster references — so a
recorded event trace can be replayed against a machine in a unit test
with nothing else constructed (see ``tests/protocol/``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.entry import Entry
    from repro.cluster.messages import Message


class Event:
    """Base class for protocol input events."""

    __slots__ = ()


class ReplyReceived(Event):
    """A contacted server answered a lookup request with ``entries``."""

    __slots__ = ("server_id", "entries")

    def __init__(self, server_id: int, entries: Sequence["Entry"]) -> None:
        self.server_id = server_id
        self.entries = entries

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ReplyReceived(server={self.server_id}, entries={len(self.entries)})"


class ContactFailed(Event):
    """A contact went unanswered.

    ``dropped`` distinguishes the two non-answers the retry pass cares
    about: ``True`` means the message was lost in transit (the server
    is presumably alive — re-contacting it is worthwhile), ``False``
    means the destination is failed (retrying cannot help until it
    recovers).  The simulated driver maps the transport's ``DROPPED``
    / ``UNDELIVERED`` sentinels onto this flag; the asyncio driver
    maps request timeouts to ``dropped=True`` and explicit
    server-unavailable error replies to ``dropped=False``.
    """

    __slots__ = ("server_id", "dropped")

    def __init__(self, server_id: int, dropped: bool) -> None:
        self.server_id = server_id
        self.dropped = dropped

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "dropped" if self.dropped else "failed"
        return f"ContactFailed(server={self.server_id}, {kind})"


class Slept(Event):
    """The driver finished enacting a requested backoff sleep.

    The simulated driver feeds this immediately (backoff is accounted,
    not enacted — the transport is synchronous); the asyncio driver
    feeds it after a real ``asyncio.sleep``.
    """

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "Slept()"


#: Shared singleton — the event carries no data, so drivers reuse one.
SLEPT = Slept()


class ClockTick(Event):
    """The driver's periodic timer fired; ``now`` is the clock reading.

    The membership machine never reads a clock — every timeout
    decision (suspect, dead, heartbeat due, quarantine expiry) is
    made relative to the ``now`` values the driver feeds it, so tests
    walk the detector through arbitrary schedules with plain floats.
    """

    __slots__ = ("now",)

    def __init__(self, now: float) -> None:
        self.now = now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ClockTick({self.now!r})"


class HeartbeatSeen(Event):
    """A peer's heartbeat arrived (directly, or as an exchange reply).

    ``view`` is the sender's gossiped membership view as
    ``(name, state, incarnation)`` triples — the wire form of
    :meth:`~repro.protocol.membership.MembershipProtocol.wire_view`.
    ``now`` is the receiving driver's clock at arrival.
    """

    __slots__ = ("peer", "incarnation", "view", "now")

    def __init__(
        self,
        peer: str,
        incarnation: int,
        view: Sequence[tuple] = (),
        *,
        now: float,
    ) -> None:
        self.peer = peer
        self.incarnation = incarnation
        self.view = view
        self.now = now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"HeartbeatSeen(peer={self.peer!r}, inc={self.incarnation}, "
            f"view={len(self.view)} rows, now={self.now!r})"
        )


class MessageReceived(Event):
    """A message about ``key`` arrived at a server.

    ``delivery_id`` is the transport's at-least-once delivery tag;
    when present, :class:`~repro.protocol.server.ServerProtocol`
    processes each id exactly once and answers duplicates from its
    reply cache.  ``None`` means the transport guarantees exactly-once
    (the fault-free simulated network) and dedupe is skipped.
    """

    __slots__ = ("key", "message", "delivery_id")

    def __init__(
        self,
        key: str,
        message: "Message",
        delivery_id: Optional[int] = None,
    ) -> None:
        self.key = key
        self.message = message
        self.delivery_id = delivery_id

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MessageReceived(key={self.key!r}, "
            f"message={type(self.message).__name__}, "
            f"delivery_id={self.delivery_id})"
        )
