"""The wire format: length-prefixed JSON frames over a byte stream.

Framing
-------
Each frame is a 4-byte big-endian unsigned length followed by exactly
that many bytes of UTF-8 JSON.  Length prefixes keep the protocol
self-delimiting over TCP's byte stream without sentinel scanning; the
:data:`MAX_FRAME` bound (16 MiB) rejects corrupt prefixes before they
turn into giant allocations.

Value encoding
--------------
JSON has no tuples, no :class:`~repro.core.entry.Entry`, and no typed
messages, so non-JSON values are *tagged*: an object with a single
``"!"`` key naming the type.

- ``{"!": "entry", "id": ..., "payload": ...}`` — an Entry.  Payloads
  must themselves be wire-encodable; opaque application payloads that
  are not JSON-serializable are rejected at encode time rather than
  silently mangled.
- ``{"!": "tuple", "items": [...]}`` — a tuple (lists pass through as
  JSON arrays, so round-trips preserve the list/tuple distinction
  that :class:`~repro.cluster.messages.Message` fields rely on).
- ``{"!": "msg", "type": "LookupRequest", "fields": {...}}`` — a
  typed message, by dataclass field name.  The decode registry is
  built from the live :class:`~repro.cluster.messages.Message` class
  hierarchy (the :func:`~repro.cluster.messages.known_message_types`
  pattern), so new message types become wire-addressable without
  codec changes.

Envelopes
---------
A request frame is ``{"op": ..., ...}`` and a reply frame is
``{"ok": true, "value": ...}`` or ``{"ok": false, "error": <code>,
"detail": <human text>}``.  Error codes are part of the protocol:
``"unavailable"`` (the addressed server is failed), ``"dropped"``
(the transport lost the request), ``"bad-request"`` (malformed or
unknown op), and ``"internal"`` (handler raised).  See
``docs/protocols.md`` for the full schema catalogue.

The sharded deployment adds the membership plane on the same wire:
``{"op": "heartbeat", "message": <Heartbeat>}`` carries the tagged
:class:`~repro.cluster.messages.Heartbeat` message (incarnation plus
the sender's gossiped peer view) and is answered with the receiver's
own ``Heartbeat``, so one round-trip refreshes the failure detectors
on both ends; ``{"op": "membership"}`` reads a shard's current view.
:func:`heartbeat_envelope` / :func:`decode_heartbeat` are the typed
faces for that op.

Binary codec
------------
JSON is the *mandatory fallback*, not the only wire form.  A peer may
negotiate the compact binary codec (``"op": "hello"``, see
``docs/protocols.md`` §5) and then send struct-packed frames instead:
the same 4-byte length prefix, but a body that starts with the
:data:`BINARY_MAGIC` byte (which can never open a JSON envelope — a
JSON body always starts with ``{``), a version byte, and an opcode
byte naming one of the well-known envelope ops, followed by the
envelope fields as tagged binary values (varint-packed ints and
lengths, raw UTF-8, IEEE-754 doubles, dense entry indices for the
``v<i>`` entries the interner hands out).  Every frame self-describes:
:func:`read_frame` sniffs the first body byte, so a stream may mix
codecs and negotiation only governs what each side *sends*.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import re
import struct
from typing import Any

from repro.core.entry import Entry
from repro.cluster.messages import Heartbeat, Message

#: Frames above this size are rejected (corrupt length prefix guard).
MAX_FRAME = 16 * 1024 * 1024

_LENGTH = struct.Struct(">I")


class WireError(ValueError):
    """A value or message cannot be encoded/decoded for the wire."""


class FrameError(ConnectionError):
    """The byte stream violated the framing protocol."""


# --------------------------------------------------------------------------
# Value encoding
# --------------------------------------------------------------------------


def _message_registry() -> dict[str, type]:
    registry: dict[str, type] = {}
    stack = [Message]
    while stack:
        cls = stack.pop()
        for sub in cls.__subclasses__():
            registry[sub.__name__] = sub
            stack.append(sub)
    return registry


#: Wire name -> message class, from the live hierarchy.  Built once at
#: import; all concrete message types live in ``cluster.messages``.
MESSAGE_TYPES: dict[str, type] = _message_registry()


def encode_value(value: Any) -> Any:
    """Encode one Python value into its JSON-safe wire form."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, Entry):
        return {"!": "entry", "id": value.entry_id, "payload": encode_value(value.payload)}
    if isinstance(value, tuple):
        return {"!": "tuple", "items": [encode_value(v) for v in value]}
    if isinstance(value, list):
        return [encode_value(v) for v in value]
    if isinstance(value, Message):
        return encode_message(value)
    if isinstance(value, dict):
        out = {}
        for key, item in value.items():
            if not isinstance(key, str) or key == "!":
                raise WireError(f"unencodable dict key: {key!r}")
            out[key] = encode_value(item)
        return out
    raise WireError(f"unencodable value of type {type(value).__name__}: {value!r}")


def decode_value(wire: Any) -> Any:
    """Decode one wire value back into its Python form.

    Already-decoded values (entries, messages, tuples — what the
    binary codec yields) pass through unchanged, so drivers can call
    this on any frame's payload without knowing which codec carried it.
    """
    if wire is None or isinstance(wire, (bool, int, float, str)):
        return wire
    if isinstance(wire, (Entry, Message)):
        return wire
    if isinstance(wire, tuple):
        return tuple(decode_value(v) for v in wire)
    if isinstance(wire, list):
        return [decode_value(v) for v in wire]
    if isinstance(wire, dict):
        tag = wire.get("!")
        if tag is None:
            return {k: decode_value(v) for k, v in wire.items()}
        if tag == "entry":
            return Entry(wire["id"], decode_value(wire.get("payload")))
        if tag == "tuple":
            return tuple(decode_value(v) for v in wire["items"])
        if tag == "msg":
            return decode_message(wire)
        raise WireError(f"unknown wire tag: {tag!r}")
    raise WireError(f"undecodable wire value: {wire!r}")


def encode_message(message: Message) -> dict[str, Any]:
    """Encode a typed cluster message as a tagged wire object."""
    fields = {
        f.name: encode_value(getattr(message, f.name))
        for f in dataclasses.fields(message)
    }
    return {"!": "msg", "type": type(message).__name__, "fields": fields}


def decode_message(wire: Any) -> Message:
    """Decode a tagged wire object back into its message dataclass.

    A :class:`Message` instance (from a binary frame) passes through.
    """
    if isinstance(wire, Message):
        return wire
    if not isinstance(wire, dict):
        raise WireError(f"undecodable wire message: {wire!r}")
    name = wire.get("type")
    cls = MESSAGE_TYPES.get(name)
    if cls is None:
        raise WireError(f"unknown message type: {name!r}")
    raw = wire.get("fields", {})
    if not isinstance(raw, dict):
        raise WireError(f"malformed fields for {name}: {raw!r}")
    declared = {f.name for f in dataclasses.fields(cls)}
    if set(raw) != declared:
        raise WireError(
            f"{name} fields mismatch: got {sorted(raw)}, want {sorted(declared)}"
        )
    return cls(**{k: decode_value(v) for k, v in raw.items()})


def heartbeat_envelope(heartbeat: "Heartbeat") -> dict[str, Any]:
    """The request envelope carrying one membership heartbeat."""
    return {"op": "heartbeat", "message": encode_message(heartbeat)}


def decode_heartbeat(wire: Any) -> "Heartbeat":
    """Decode a wire value that must be a :class:`Heartbeat`.

    The membership pump feeds heartbeats straight into the sans-IO
    failure detector, so a peer answering the heartbeat op with any
    other message type is a protocol violation, not a quiet no-op.
    """
    message = decode_message(wire) if isinstance(wire, dict) else wire
    if not isinstance(message, Heartbeat):
        raise WireError(
            f"expected a Heartbeat, got {type(message).__name__}: {message!r}"
        )
    return message


# --------------------------------------------------------------------------
# Binary codec
# --------------------------------------------------------------------------

#: Codec names as they appear in hello/info capability exchanges.
CODEC_JSON = "json"
CODEC_BINARY = "binary"
#: Preference order offered by a binary-capable peer; JSON is the
#: mandatory fallback every peer must speak.
SUPPORTED_CODECS: tuple[str, ...] = (CODEC_BINARY, CODEC_JSON)

#: First byte of every binary frame body.  JSON envelope bodies always
#: start with ``{`` (0x7B), so one byte of sniffing disambiguates.
BINARY_MAGIC = 0xB1
#: Binary wire format version carried in every frame header.
BINARY_VERSION = 1

#: Well-known envelope ops, indexed by the header opcode byte.  Opcode
#: 0 is "generic": the envelope dict that follows is complete as-is
#: (replies, or ops newer than this table).  For opcodes >= 1 the
#: ``"op"`` key is stripped at encode time and restored at decode time.
BINARY_OPS: tuple[str, ...] = (
    "",
    "ping",
    "info",
    "send",
    "verify",
    "heartbeat",
    "membership",
    "hello",
    "batch",
)
_OPCODE_BY_OP = {name: code for code, name in enumerate(BINARY_OPS) if name}

# Value tags.
_T_NONE = 0x00
_T_FALSE = 0x01
_T_TRUE = 0x02
_T_INT = 0x03
_T_FLOAT = 0x04
_T_STR = 0x05
_T_LIST = 0x06
_T_TUPLE = 0x07
_T_DICT = 0x08
_T_ENTRY = 0x09
_T_ENTRY_INDEX = 0x0A
_T_MSG = 0x0B
#: A tuple whose items are all payload-free dense entries, shipped as
#: ``count`` + one varint per entry — the dominant shape in lookup
#: replies, collapsed to a single tag so neither side pays per-entry
#: dispatch.  The ``_LIST`` twin is the same encoding decoded back to
#: a list, preserving the list/tuple round-trip distinction.
_T_ENTRIES = 0x0C
_T_ENTRIES_LIST = 0x0D

_DOUBLE = struct.Struct(">d")

#: Dense wire index for the canonical ``v<i>`` entries the placement
#: interner hands out (:func:`repro.core.entry.make_entries` naming):
#: a payload-free ``Entry("v123")`` ships as one varint instead of a
#: tagged id string.  Matches strictly — ``v01`` or ``v1x`` ship as
#: ordinary entries.
_DENSE_ID = re.compile(r"v([1-9][0-9]*)$")

#: Message classes in stable wire order (sorted by name) with their
#: dataclass fields precomputed — binary messages ship a type index
#: plus field values in declaration order, no field names.
_MESSAGE_WIRE_ORDER: list[tuple[str, type, tuple[str, ...]]] = [
    (name, cls, tuple(f.name for f in dataclasses.fields(cls)))
    for name, cls in sorted(MESSAGE_TYPES.items())
]
_MESSAGE_WIRE_INDEX = {
    name: index for index, (name, _, _) in enumerate(_MESSAGE_WIRE_ORDER)
}


#: Hot-path memos.  Lookup traffic is dominated by the same small
#: universe of interned ``v<i>`` entries, the same handful of dict
#: keys, and the same short strings over and over; caching their
#: packed/decoded forms turns the per-value recursion into one dict
#: hit.  All are size-capped so adversarial streams cannot grow them
#: without bound.
_CACHE_CAP = 4096
_ENTRY_ENC_CACHE: dict[str, bytes] = {}
#: entry_id -> dense index, or -1 when the id is not dense (memoizes
#: the regex so the all-dense tuple probe costs one dict hit per item).
_DENSE_IDX_CACHE: dict[str, int] = {}
_ENTRY_DEC_CACHE: dict[int, Entry] = {}
_KEY_ENC_CACHE: dict[str, bytes] = {}
_TEXT_DEC_CACHE: dict[bytes, str] = {}
#: Request-path message memo (see :func:`pack_send_envelope`): packed
#: bytes per Message value.  Deliberately fed only by the send fast
#: path, where the same request message recurs thousands of times —
#: reply messages are all distinct and would only thrash it.
_MSG_ENC_CACHE: dict[Any, bytes] = {}


class Prepacked:
    """Already-encoded binary value bytes, spliced verbatim by the packer.

    Lets a caller that emits the same subtree many times (the client's
    batched sends) pay the generic encoding walk once.  Only valid
    inside binary envelopes — the JSON encoder rejects it.

    The payload is a tuple of buffer *fragments* (``bytes`` or
    ``memoryview``) rather than one flat byte string: producers hand
    over views of their encode buffers without a trailing ``bytes()``
    copy, and the scatter-gather frame encoder
    (:func:`encode_envelope_fragments`) splices the views straight into
    the outgoing frame's buffer list.  Fragments are frozen by
    convention — nothing may mutate a buffer after wrapping it here (a
    ``memoryview`` over a ``bytearray`` at least pins it against
    resizing, so an accidental producer-side append fails fast).
    """

    __slots__ = ("fragments",)

    def __init__(
        self,
        data: "bytes | bytearray | memoryview | None" = None,
        *,
        fragments: "tuple | list | None" = None,
    ) -> None:
        if fragments is not None:
            self.fragments: tuple = tuple(fragments)
        else:
            self.fragments = (data,)

    @property
    def data(self) -> bytes:
        """The flat encoded bytes (joins the fragments; at most one copy)."""
        frags = self.fragments
        if len(frags) == 1 and type(frags[0]) is bytes:
            return frags[0]
        return b"".join(frags)

    def __len__(self) -> int:
        return sum(len(frag) for frag in self.fragments)


def pack_value_bytes(value: Any) -> bytes:
    """One value's binary encoding, for :class:`Prepacked` splicing."""
    out = bytearray()
    _pack_value(value, out)
    return bytes(out)


def _dense_index(entry_id: str) -> int:
    """The ``v<i>`` dense index for an id, or -1; memoized."""
    index = _DENSE_IDX_CACHE.get(entry_id)
    if index is None:
        match = _DENSE_ID.match(entry_id)
        if len(_DENSE_IDX_CACHE) >= _CACHE_CAP:
            _DENSE_IDX_CACHE.clear()
        index = _DENSE_IDX_CACHE[entry_id] = (
            -1 if match is None else int(match.group(1))
        )
    return index


def _pack_varint(value: int, out: bytearray) -> None:
    """Unsigned LEB128."""
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _zigzag_big(value: int) -> int:
    # Arbitrary-precision zigzag: Python ints are unbounded, and the
    # shift-based form above only folds correctly within 64 bits.
    return (value << 1) if value >= 0 else ((-value << 1) - 1)


def _pack_str(text: str, out: bytearray) -> None:
    raw = text.encode("utf-8")
    _pack_varint(len(raw), out)
    out += raw


def _pack_dense_entries(value: Any, out: bytearray, tag: int) -> bool:
    """Emit ``value`` as ``tag`` (:data:`_T_ENTRIES` or its list twin)
    if every item qualifies.

    Qualifying means: payload-free :class:`Entry` with a dense ``v<i>``
    id.  Returns ``False`` without touching ``out`` otherwise, so the
    caller falls back to the generic sequence encoding.
    """
    indices = []
    append = indices.append
    get = _DENSE_IDX_CACHE.get
    for item in value:
        # Exact-type check: a subclassed Entry simply falls back to the
        # (equally correct) generic sequence encoding.
        if type(item) is not Entry or item.payload is not None:
            return False
        index = get(item.entry_id)
        if index is None:
            index = _dense_index(item.entry_id)
        if index < 0:
            return False
        append(index)
    out.append(tag)
    count = len(indices)
    if count < 0x80:
        out.append(count)
    else:
        _pack_varint(count, out)
    for index in indices:
        if index < 0x80:
            out.append(index)
        else:
            _pack_varint(index, out)
    return True


def _packed_str(text: str) -> bytes:
    """``_pack_str`` output (length prefix + UTF-8), memoized.

    Backs both dict keys and the send fast path's recurring server /
    lookup-key strings.
    """
    packed = _KEY_ENC_CACHE.get(text)
    if packed is None:
        buf = bytearray()
        _pack_str(text, buf)
        if len(_KEY_ENC_CACHE) >= _CACHE_CAP:
            _KEY_ENC_CACHE.clear()
        packed = _KEY_ENC_CACHE[text] = bytes(buf)
    return packed


def _pack_value(value: Any, out: bytearray) -> None:
    if value is None:
        out.append(_T_NONE)
    elif value is True:
        out.append(_T_TRUE)
    elif value is False:
        out.append(_T_FALSE)
    elif isinstance(value, int):
        out.append(_T_INT)
        _pack_varint(_zigzag_big(value), out)
    elif isinstance(value, float):
        out.append(_T_FLOAT)
        out += _DOUBLE.pack(value)
    elif isinstance(value, str):
        out.append(_T_STR)
        _pack_str(value, out)
    elif isinstance(value, Entry):
        if value.payload is None:
            packed = _ENTRY_ENC_CACHE.get(value.entry_id)
            if packed is None:
                buf = bytearray()
                index = _dense_index(value.entry_id)
                if index >= 0:
                    buf.append(_T_ENTRY_INDEX)
                    _pack_varint(index, buf)
                else:
                    buf.append(_T_ENTRY)
                    _pack_str(value.entry_id, buf)
                    buf.append(_T_NONE)
                if len(_ENTRY_ENC_CACHE) >= _CACHE_CAP:
                    _ENTRY_ENC_CACHE.clear()
                packed = _ENTRY_ENC_CACHE[value.entry_id] = bytes(buf)
            out += packed
        else:
            out.append(_T_ENTRY)
            _pack_str(value.entry_id, out)
            _pack_value(value.payload, out)
    elif isinstance(value, tuple):
        if value and _pack_dense_entries(value, out, _T_ENTRIES):
            return
        out.append(_T_TUPLE)
        _pack_varint(len(value), out)
        for item in value:
            _pack_value(item, out)
    elif type(value) is Prepacked:
        for frag in value.fragments:
            out += frag
    elif isinstance(value, list):
        if value and _pack_dense_entries(value, out, _T_ENTRIES_LIST):
            return
        out.append(_T_LIST)
        _pack_varint(len(value), out)
        for item in value:
            _pack_value(item, out)
    elif isinstance(value, Message):
        index = _MESSAGE_WIRE_INDEX.get(type(value).__name__)
        if index is None:
            raise WireError(f"unregistered message type: {type(value).__name__}")
        out.append(_T_MSG)
        _pack_varint(index, out)
        for field_name in _MESSAGE_WIRE_ORDER[index][2]:
            _pack_value(getattr(value, field_name), out)
    elif isinstance(value, dict):
        # JSON-tagged wire forms (the service's pure-dispatch handlers
        # emit them) re-compact to their native binary encodings, so a
        # binary connection never ships `{"!": "entry", ...}` objects.
        tag = value.get("!")
        if tag is not None:
            _pack_tagged(tag, value, out)
            return
        out.append(_T_DICT)
        _pack_varint(len(value), out)
        for key, item in value.items():
            if not isinstance(key, str):
                raise WireError(f"unencodable dict key: {key!r}")
            out += _packed_str(key)
            _pack_value(item, out)
    else:
        raise WireError(
            f"unencodable value of type {type(value).__name__}: {value!r}"
        )


def _pack_tagged(tag: Any, value: dict, out: bytearray) -> None:
    """Compact one JSON-tagged wire object into its binary form.

    Packs straight from the tagged dict — no intermediate
    ``Entry``/``Message`` objects — since a tagged form's nested
    values are themselves tagged and the recursion lands back here.
    """
    if tag == "entry":
        entry_id = value["id"]
        payload = value.get("payload")
        if payload is None and isinstance(entry_id, str):
            _pack_value(Entry(entry_id), out)  # hits the entry memo
            return
        if not isinstance(entry_id, str):
            raise WireError(f"unencodable entry id: {entry_id!r}")
        out.append(_T_ENTRY)
        _pack_str(entry_id, out)
        _pack_value(payload, out)
    elif tag == "tuple":
        items = value["items"]
        out.append(_T_TUPLE)
        _pack_varint(len(items), out)
        for item in items:
            _pack_value(item, out)
    elif tag == "msg":
        index = _MESSAGE_WIRE_INDEX.get(value["type"])
        if index is None:
            raise WireError(f"unknown message type: {value['type']!r}")
        fields = value["fields"]
        out.append(_T_MSG)
        _pack_varint(index, out)
        for field_name in _MESSAGE_WIRE_ORDER[index][2]:
            _pack_value(fields[field_name], out)
    else:
        raise WireError(f"unknown wire tag: {tag!r}")


#: Prepacked fragments of the batched ``send`` sub-envelope: the
#: ``_T_DICT`` header, the ``"op": "send"`` pair, and the other four
#: key strings, so :func:`pack_send_envelope` splices constants
#: instead of re-encoding the same five keys per request.
_SEND_PREFIX = (
    bytes((_T_DICT, 5))
    + _packed_str("op")
    + bytes((_T_STR,))
    + _packed_str("send")
)
_SEND_KEY_ID = _packed_str("id")
_SEND_KEY_SERVER = _packed_str("server")
_SEND_KEY_KEY = _packed_str("key")
_SEND_KEY_MESSAGE = _packed_str("message")


def pack_send_envelope(
    request_id: int, server: Any, key: Any, message: Message
) -> Prepacked:
    """One batched ``send`` sub-envelope, packed once into binary bytes.

    The request message is memoized (request path only): a batch round
    repeats the same few request messages across hundreds of
    sub-envelopes, so each distinct message pays the generic packing
    walk once.  Only valid on a binary connection — the result is a
    :class:`Prepacked` and the JSON encoder rejects it.
    """
    try:
        packed = _MSG_ENC_CACHE.get(message)
    except TypeError:  # unhashable field somewhere inside the message
        packed = pack_value_bytes(message)
    else:
        if packed is None:
            if len(_MSG_ENC_CACHE) >= _CACHE_CAP:
                _MSG_ENC_CACHE.clear()
            packed = _MSG_ENC_CACHE[message] = pack_value_bytes(message)
    out = bytearray(_SEND_PREFIX)
    out += _SEND_KEY_ID
    out.append(_T_INT)
    _pack_varint(_zigzag_big(request_id), out)
    out += _SEND_KEY_SERVER
    if type(server) is int:
        out.append(_T_INT)
        _pack_varint(_zigzag_big(server), out)
    elif type(server) is str:
        out.append(_T_STR)
        out += _packed_str(server)
    else:
        _pack_value(server, out)
    out += _SEND_KEY_KEY
    if type(key) is str:
        out.append(_T_STR)
        out += _packed_str(key)
    else:
        _pack_value(key, out)
    out += _SEND_KEY_MESSAGE
    out += packed
    # A memoryview, not bytes(out): the buffer is complete and never
    # touched again, so the wrap costs nothing and pins it frozen.
    return Prepacked(memoryview(out))


#: Prepacked fragments of the ok ``send`` sub-reply the batch handler
#: emits per lookup: ``{"ok": True, "value": <message>, "id": <int>}``.
_REPLY_PREFIX = (
    bytes((_T_DICT, 3))
    + _packed_str("ok")
    + bytes((_T_TRUE,))
    + _packed_str("value")
)
_REPLY_KEY_ID = _packed_str("id")


def pack_send_reply(request_id: int, value: Any) -> Prepacked:
    """One ok batched ``send`` sub-reply, packed into binary bytes.

    The server's batch loop uses this on binary connections so each
    sub-reply dict skips the generic dict walk.  Reply values are
    (unlike request messages) almost always distinct, so they are
    deliberately not memoized.
    """
    out = bytearray(_REPLY_PREFIX)
    _pack_value(value, out)
    out += _REPLY_KEY_ID
    out.append(_T_INT)
    _pack_varint(_zigzag_big(request_id), out)
    return Prepacked(memoryview(out))


#: Exact byte prefixes of the canonical send sub-envelope and ok
#: sub-reply (what :func:`pack_send_envelope` / :func:`pack_send_reply`
#: emit).  The unpacker sniffs these to decode the two dominant frame
#: shapes without the generic per-key dict walk; any mismatch falls
#: back to the generic path, so foreign encoders lose nothing.
_SEND_FAST = (
    _packed_str("op")
    + bytes((_T_STR,))
    + _packed_str("send")
    + _packed_str("id")
    + bytes((_T_INT,))
)
_SEND_FAST_SERVER = _packed_str("server") + bytes((_T_INT,))
_SEND_FAST_KEY = _packed_str("key") + bytes((_T_STR,))
_SEND_FAST_MESSAGE = _packed_str("message")
_REPLY_FAST = _packed_str("ok") + bytes((_T_TRUE,)) + _packed_str("value")
_REPLY_FAST_ID = _packed_str("id") + bytes((_T_INT,))


class _Unpacker:
    """Bounds-checked reader over one binary frame body."""

    __slots__ = ("data", "pos")

    def __init__(self, data: bytes, pos: int = 0) -> None:
        self.data = data
        self.pos = pos

    def byte(self) -> int:
        if self.pos >= len(self.data):
            raise FrameError("binary frame truncated")
        value = self.data[self.pos]
        self.pos += 1
        return value

    def varint(self) -> int:
        result = 0
        shift = 0
        while True:
            byte = self.byte()
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return result
            shift += 7
            if shift > 1024 * 7:
                # Python ints are unbounded, but a kilobyte of varint
                # continuation bytes is garbage, not data.
                raise FrameError("malformed varint")

    def raw(self, count: int) -> bytes:
        end = self.pos + count
        if count < 0 or end > len(self.data):
            raise FrameError("binary frame truncated")
        chunk = self.data[self.pos : end]
        self.pos = end
        return chunk

    def text(self) -> str:
        raw = self.raw(self.varint())
        cached = _TEXT_DEC_CACHE.get(raw)
        if cached is not None:
            return cached
        try:
            decoded = raw.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise FrameError(f"malformed utf-8 in binary frame: {exc}") from exc
        if len(raw) <= 24:
            # Short strings are almost always recurring protocol atoms
            # (dict keys, server ids, scheme names) — intern them.
            if len(_TEXT_DEC_CACHE) >= _CACHE_CAP:
                _TEXT_DEC_CACHE.clear()
            _TEXT_DEC_CACHE[raw] = decoded
        return decoded

    def _fast_send(self, pos: int) -> dict[str, Any] | None:
        """Decode a canonical send sub-envelope from ``pos``.

        ``pos`` sits just past the matched :data:`_SEND_FAST` prefix
        (i.e. on the request id's varint).  Returns ``None`` — without
        any observable side effect — when the remaining bytes deviate
        from the canonical layout.
        """
        data = self.data
        self.pos = pos
        raw = self.varint()
        request_id = (raw >> 1) if not raw & 1 else -((raw + 1) >> 1)
        pos = self.pos
        if not data.startswith(_SEND_FAST_SERVER, pos):
            return None
        self.pos = pos + len(_SEND_FAST_SERVER)
        raw = self.varint()
        server = (raw >> 1) if not raw & 1 else -((raw + 1) >> 1)
        pos = self.pos
        if not data.startswith(_SEND_FAST_KEY, pos):
            return None
        self.pos = pos + len(_SEND_FAST_KEY)
        key = self.text()
        pos = self.pos
        if not data.startswith(_SEND_FAST_MESSAGE, pos):
            return None
        self.pos = pos + len(_SEND_FAST_MESSAGE)
        message = self.value()
        return {
            "op": "send",
            "id": request_id,
            "server": server,
            "key": key,
            "message": message,
        }

    def _fast_reply(self, pos: int) -> dict[str, Any] | None:
        """Decode a canonical ok sub-reply from ``pos``.

        ``pos`` sits just past the matched :data:`_REPLY_FAST` prefix
        (i.e. on the value).  On a layout mismatch returns ``None``;
        ``self.pos`` may then be stale, which is safe because every
        caller re-seeds it before the next read.
        """
        self.pos = pos
        value = self.value()
        pos = self.pos
        data = self.data
        if not data.startswith(_REPLY_FAST_ID, pos):
            return None
        self.pos = pos + len(_REPLY_FAST_ID)
        raw = self.varint()
        request_id = (raw >> 1) if not raw & 1 else -((raw + 1) >> 1)
        return {"ok": True, "value": value, "id": request_id}

    def value(self) -> Any:
        # THE decode hot path: every byte of every binary frame flows
        # through here, so the tag byte and the varint that almost
        # every tag carries are read inline from locals instead of
        # through byte()/varint() method calls (which profile as the
        # single largest decode cost at batch throughput).
        data = self.data
        end = len(data)
        pos = self.pos
        if pos >= end:
            raise FrameError("binary frame truncated")
        tag = data[pos]
        pos += 1
        if tag == _T_NONE:
            self.pos = pos
            return None
        if tag == _T_TRUE:
            self.pos = pos
            return True
        if tag == _T_FALSE:
            self.pos = pos
            return False
        if tag == _T_FLOAT:
            self.pos = pos
            return _DOUBLE.unpack(self.raw(_DOUBLE.size))[0]
        if tag > _T_ENTRIES_LIST:
            raise FrameError(f"unknown binary value tag: {tag:#x}")
        # Every remaining tag opens with one varint (value, length,
        # count, or index) — read it once, inline.
        if pos >= end:
            raise FrameError("binary frame truncated")
        byte = data[pos]
        pos += 1
        if byte < 0x80:
            first = byte
        else:
            first = byte & 0x7F
            shift = 7
            while True:
                if pos >= end:
                    raise FrameError("binary frame truncated")
                byte = data[pos]
                pos += 1
                first |= (byte & 0x7F) << shift
                if byte < 0x80:
                    break
                shift += 7
                if shift > 1024 * 7:
                    raise FrameError("malformed varint")
        if tag == _T_INT:
            self.pos = pos
            return (first >> 1) if not first & 1 else -((first + 1) >> 1)
        if tag == _T_STR:
            str_end = pos + first
            if str_end > end:
                raise FrameError("binary frame truncated")
            raw = data[pos:str_end]
            self.pos = str_end
            cached = _TEXT_DEC_CACHE.get(raw)
            if cached is not None:
                return cached
            try:
                decoded = raw.decode("utf-8")
            except UnicodeDecodeError as exc:
                raise FrameError(
                    f"malformed utf-8 in binary frame: {exc}"
                ) from exc
            if first <= 24:
                if len(_TEXT_DEC_CACHE) >= _CACHE_CAP:
                    _TEXT_DEC_CACHE.clear()
                _TEXT_DEC_CACHE[raw] = decoded
            return decoded
        if tag == _T_DICT:
            # Canonical-shape fast paths (see _SEND_FAST/_REPLY_FAST):
            # on a miss they leave the local ``pos`` untouched and the
            # generic walk below re-reads from it.
            if first == 5 and data.startswith(_SEND_FAST, pos):
                fast = self._fast_send(pos + len(_SEND_FAST))
                if fast is not None:
                    return fast
            elif first == 3 and data.startswith(_REPLY_FAST, pos):
                fast = self._fast_reply(pos + len(_REPLY_FAST))
                if fast is not None:
                    return fast
            out = {}
            cache = _TEXT_DEC_CACHE
            for _ in range(first):
                # Inline key read: dict keys are the most recurrent
                # strings on the wire, so the cache almost always hits.
                if pos >= end:
                    raise FrameError("binary frame truncated")
                byte = data[pos]
                pos += 1
                if byte < 0x80:
                    length = byte
                else:
                    length = byte & 0x7F
                    shift = 7
                    while True:
                        if pos >= end:
                            raise FrameError("binary frame truncated")
                        byte = data[pos]
                        pos += 1
                        length |= (byte & 0x7F) << shift
                        if byte < 0x80:
                            break
                        shift += 7
                        if shift > 1024 * 7:
                            raise FrameError("malformed varint")
                key_end = pos + length
                if key_end > end:
                    raise FrameError("binary frame truncated")
                raw = data[pos:key_end]
                pos = key_end
                key = cache.get(raw)
                if key is None:
                    try:
                        key = raw.decode("utf-8")
                    except UnicodeDecodeError as exc:
                        raise FrameError(
                            f"malformed utf-8 in binary frame: {exc}"
                        ) from exc
                    if length <= 24:
                        if len(cache) >= _CACHE_CAP:
                            cache.clear()
                        cache[raw] = key
                self.pos = pos
                out[key] = self.value()
                pos = self.pos
            self.pos = pos
            return out
        if tag == _T_ENTRIES or tag == _T_ENTRIES_LIST:
            cache = _ENTRY_DEC_CACHE
            entries = []
            append = entries.append
            for _ in range(first):
                # Inlined varint: dense indices are 1-2 bytes in any
                # realistic universe, and this loop decodes the bulk
                # of every lookup reply.
                if pos >= end:
                    raise FrameError("binary frame truncated")
                byte = data[pos]
                pos += 1
                if byte < 0x80:
                    index = byte
                else:
                    index = byte & 0x7F
                    shift = 7
                    while True:
                        if pos >= end:
                            raise FrameError("binary frame truncated")
                        byte = data[pos]
                        pos += 1
                        index |= (byte & 0x7F) << shift
                        if byte < 0x80:
                            break
                        shift += 7
                        if shift > 1024 * 7:
                            raise FrameError("malformed varint")
                entry = cache.get(index)
                if entry is None:
                    if len(cache) >= _CACHE_CAP:
                        cache.clear()
                    entry = cache[index] = Entry(f"v{index}")
                append(entry)
            self.pos = pos
            return entries if tag == _T_ENTRIES_LIST else tuple(entries)
        if tag == _T_MSG:
            if first >= len(_MESSAGE_WIRE_ORDER):
                raise WireError(f"unknown binary message index: {first}")
            _, cls, field_names = _MESSAGE_WIRE_ORDER[first]
            self.pos = pos
            # Positional construction: dataclass __init__ order is
            # exactly the wire field order.
            return cls(*[self.value() for _ in field_names])
        if tag == _T_LIST:
            self.pos = pos
            return [self.value() for _ in range(first)]
        if tag == _T_TUPLE:
            self.pos = pos
            return tuple(self.value() for _ in range(first))
        if tag == _T_ENTRY:
            str_end = pos + first
            if str_end > end:
                raise FrameError("binary frame truncated")
            try:
                entry_id = data[pos:str_end].decode("utf-8")
            except UnicodeDecodeError as exc:
                raise FrameError(f"malformed utf-8 in binary frame: {exc}") from exc
            self.pos = str_end
            return Entry(entry_id, self.value())
        if tag == _T_ENTRY_INDEX:
            self.pos = pos
            entry = _ENTRY_DEC_CACHE.get(first)
            if entry is None:
                if len(_ENTRY_DEC_CACHE) >= _CACHE_CAP:
                    _ENTRY_DEC_CACHE.clear()
                entry = _ENTRY_DEC_CACHE[first] = Entry(f"v{first}")
            return entry
        raise FrameError(f"unknown binary value tag: {tag:#x}")


def encode_envelope_binary(obj: dict[str, Any]) -> bytes:
    """Serialize one envelope as a framed binary byte string."""
    out = bytearray()
    out.append(BINARY_MAGIC)
    out.append(BINARY_VERSION)
    body = dict(obj)
    opcode = _OPCODE_BY_OP.get(body.get("op"), 0)
    if opcode:
        del body["op"]
    out.append(opcode)
    _pack_value(body, out)
    if len(out) > MAX_FRAME:
        raise WireError(f"frame too large: {len(out)} bytes")
    return _LENGTH.pack(len(out)) + bytes(out)


#: Prepacked splices shorter than this are copied into the current
#: scratch buffer instead of earning their own buffer slot: below a
#: couple hundred bytes the memcpy is cheaper than the extra list
#: element the transport later joins.
_SPLICE_MIN = 256


class _FragmentWriter:
    """Accumulates one frame as an ordered list of buffer fragments.

    Generic packing appends to ``scratch`` (a growing bytearray);
    :meth:`splice` seals the current scratch into the fragment list and
    appends a :class:`Prepacked` value's buffers by reference — no
    copy.  The closed list is what :func:`write_frames` hands to
    ``StreamWriter.writelines``.  Callers must re-read ``scratch``
    after any :meth:`splice` or recursion that may splice: sealing
    replaces the scratch object.
    """

    __slots__ = ("fragments", "scratch")

    def __init__(self) -> None:
        self.fragments: list = []
        self.scratch = bytearray()

    def splice(self, value: Prepacked) -> None:
        frags = value.fragments
        total = 0
        for frag in frags:
            total += len(frag)
        if total < _SPLICE_MIN:
            scratch = self.scratch
            for frag in frags:
                scratch += frag
            return
        if self.scratch:
            self.fragments.append(self.scratch)
            self.scratch = bytearray()
        self.fragments.extend(frags)

    def close(self) -> list:
        if self.scratch:
            self.fragments.append(self.scratch)
            self.scratch = bytearray()
        return self.fragments


def _pack_value_frags(value: Any, out: _FragmentWriter) -> None:
    """Pack ``value`` into ``out``, splicing Prepacked subtrees by reference.

    Untagged dicts and any list/tuple carrying a top-level
    :class:`Prepacked` decompose here so the splice values they hold
    are reached without copying; every other value delegates wholesale
    to :func:`_pack_value`, which keeps the dense-entries and memoized
    fast paths (and their exact output bytes) untouched.  The emitted
    byte stream is identical to :func:`_pack_value`'s for every input —
    only the chunking differs.
    """
    if type(value) is Prepacked:
        out.splice(value)
    elif isinstance(value, dict) and "!" not in value:
        scratch = out.scratch
        scratch.append(_T_DICT)
        _pack_varint(len(value), scratch)
        for key, item in value.items():
            if not isinstance(key, str):
                raise WireError(f"unencodable dict key: {key!r}")
            out.scratch += _packed_str(key)
            _pack_value_frags(item, out)
    elif type(value) in (list, tuple) and any(
        type(item) is Prepacked for item in value
    ):
        # A sequence holding a Prepacked can never take the dense
        # entries encoding, so this header matches _pack_value's.
        scratch = out.scratch
        scratch.append(_T_LIST if type(value) is list else _T_TUPLE)
        _pack_varint(len(value), scratch)
        for item in value:
            _pack_value_frags(item, out)
    else:
        _pack_value(value, out.scratch)


def encode_envelope_fragments(obj: dict[str, Any]) -> list:
    """Serialize one envelope as a framed binary *fragment list*.

    The concatenation of the returned buffers (``bytes`` /
    ``bytearray`` / ``memoryview``) is exactly
    :func:`encode_envelope_binary` of the same envelope, but
    :class:`Prepacked` payloads are spliced by reference instead of
    re-copied — a reply built from cached bodies costs zero body
    copies here.  Hand the list to :func:`write_frames` (or
    ``b"".join`` it for the flat frame bytes).

    Fragment lifetime: the buffers may alias producer-owned storage
    (the memoryviews :func:`pack_send_reply` wraps), so the list must
    be handed to the transport — which copies during ``writelines`` —
    or joined before anything could mutate the producers.  Nothing in
    this codebase mutates a wrapped buffer, so in practice the views
    are released when the frame list is garbage collected.
    """
    out = _FragmentWriter()
    scratch = out.scratch
    scratch.append(BINARY_MAGIC)
    scratch.append(BINARY_VERSION)
    body = dict(obj)
    opcode = _OPCODE_BY_OP.get(body.get("op"), 0)
    if opcode:
        del body["op"]
    scratch.append(opcode)
    _pack_value_frags(body, out)
    fragments = out.close()
    total = 0
    for frag in fragments:
        total += len(frag)
    if total > MAX_FRAME:
        raise WireError(f"frame too large: {total} bytes")
    fragments.insert(0, _LENGTH.pack(total))
    return fragments


def encode_frame_fragments(obj: dict[str, Any], codec: str) -> list:
    """One envelope's framed wire buffers under ``codec``.

    The JSON codec has no splice values, so its "fragment list" is the
    one flat framed byte string — callers treat both codecs uniformly
    and the JSON wire bytes stay byte-identical to the legacy
    :func:`encode_envelope` path.
    """
    if codec == CODEC_BINARY:
        return encode_envelope_fragments(obj)
    return [encode_envelope_as(obj, codec)]


def decode_envelope_binary(body: bytes) -> dict[str, Any]:
    """Parse one binary frame body into an envelope dict.

    Structural garbage (truncation, bad tags, trailing bytes) raises
    :class:`FrameError`; a well-formed frame naming an unknown message
    raises :class:`WireError` so the service can answer ``bad-request``
    instead of dropping the connection.
    """
    unpacker = _Unpacker(body)
    if unpacker.byte() != BINARY_MAGIC:
        raise FrameError("not a binary frame (bad magic byte)")
    version = unpacker.byte()
    if version != BINARY_VERSION:
        raise FrameError(f"unsupported binary codec version: {version}")
    opcode = unpacker.byte()
    if opcode >= len(BINARY_OPS):
        raise FrameError(f"unknown binary opcode: {opcode}")
    envelope = unpacker.value()
    if not isinstance(envelope, dict):
        raise FrameError(
            f"binary frame body must be an object, got {type(envelope).__name__}"
        )
    if unpacker.pos != len(body):
        raise FrameError(
            f"trailing bytes in binary frame: {len(body) - unpacker.pos}"
        )
    if opcode:
        envelope["op"] = BINARY_OPS[opcode]
    return envelope


def negotiate_codec(offered: Any) -> str:
    """Pick the wire codec for a peer's hello ``codecs`` offer.

    The first offered codec this side supports wins; an empty, bogus,
    or all-unknown offer falls back to JSON (the mandatory codec), so
    negotiation can never strand a connection without a wire format.
    """
    if isinstance(offered, (list, tuple)):
        for name in offered:
            if name in SUPPORTED_CODECS:
                return name
    return CODEC_JSON


def hello_envelope(
    codecs: tuple[str, ...] = SUPPORTED_CODECS, *, batch: bool = True
) -> dict[str, Any]:
    """The capability-exchange request a negotiating client opens with."""
    return {"op": "hello", "codecs": list(codecs), "batch": batch}


# --------------------------------------------------------------------------
# Envelopes
# --------------------------------------------------------------------------


def encode_envelope(obj: dict[str, Any]) -> bytes:
    """Serialize one request/reply envelope into a framed byte string."""
    try:
        body = json.dumps(obj, separators=(",", ":")).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise WireError(f"unencodable envelope: {exc}") from exc
    if len(body) > MAX_FRAME:
        raise WireError(f"frame too large: {len(body)} bytes")
    return _LENGTH.pack(len(body)) + body


def decode_envelope(body: bytes) -> dict[str, Any]:
    """Parse one frame body into an envelope dict."""
    try:
        obj = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FrameError(f"malformed frame body: {exc}") from exc
    if not isinstance(obj, dict):
        raise FrameError(f"frame body must be an object, got {type(obj).__name__}")
    return obj


def decode_frame_body(body: bytes) -> dict[str, Any]:
    """Decode one frame body, sniffing the codec from its first byte.

    Binary bodies open with :data:`BINARY_MAGIC`; everything else is
    parsed as JSON (whose envelope bodies always open with ``{``).  An
    empty body is malformed in either codec.
    """
    if body[:1] == bytes((BINARY_MAGIC,)):
        return decode_envelope_binary(body)
    return decode_envelope(body)


def encode_envelope_as(obj: dict[str, Any], codec: str) -> bytes:
    """Serialize one envelope under the named codec."""
    if codec == CODEC_BINARY:
        return encode_envelope_binary(obj)
    if codec == CODEC_JSON:
        return encode_envelope(obj)
    raise WireError(f"unknown codec: {codec!r}")


# --------------------------------------------------------------------------
# Asyncio stream helpers
# --------------------------------------------------------------------------


async def read_frame(reader: asyncio.StreamReader) -> dict[str, Any] | None:
    """Read one framed envelope; ``None`` on clean end-of-stream.

    A connection that closes *between* frames is a normal hangup; one
    that closes mid-frame raises :class:`FrameError`.
    """
    try:
        prefix = await reader.readexactly(_LENGTH.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise FrameError("connection closed mid length prefix") from exc
    (length,) = _LENGTH.unpack(prefix)
    if length > MAX_FRAME:
        raise FrameError(f"frame length {length} exceeds {MAX_FRAME}")
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise FrameError("connection closed mid frame") from exc
    return decode_frame_body(body)


async def write_frame(
    writer: asyncio.StreamWriter,
    obj: dict[str, Any],
    *,
    codec: str = CODEC_JSON,
    flush: bool = True,
) -> None:
    """Write one framed envelope (in ``codec``) to the transport.

    ``flush=False`` skips the ``drain()`` so a batch/pipeline sender
    can queue many frames and pay one flow-control wait at the end
    (its own final ``flush=True`` write, or :func:`write_frames`)
    instead of one await per envelope.
    """
    writer.write(encode_envelope_as(obj, codec))
    if flush:
        await writer.drain()


async def write_frames(
    writer: asyncio.StreamWriter,
    frames: "list | tuple",
    *,
    flush: bool = True,
) -> None:
    """Scatter-gather write: many frames, one ``writelines``, one drain.

    ``frames`` is a sequence of per-frame buffer lists (from
    :func:`encode_frame_fragments` / :func:`encode_envelope_fragments`)
    or flat framed byte strings.  Every buffer goes to the transport in
    a single ``writelines`` call — one C-level join + socket write on
    CPython's asyncio — followed by at most one ``drain()``, so a
    pipeline flush of N frames costs one flow-control wait instead
    of N.
    """
    buffers: list = []
    for frame in frames:
        if isinstance(frame, (bytes, bytearray, memoryview)):
            buffers.append(frame)
        else:
            buffers.extend(frame)
    if buffers:
        writer.writelines(buffers)
    if flush:
        await writer.drain()


__all__ = [
    "BINARY_MAGIC",
    "BINARY_OPS",
    "BINARY_VERSION",
    "CODEC_BINARY",
    "CODEC_JSON",
    "MAX_FRAME",
    "MESSAGE_TYPES",
    "SUPPORTED_CODECS",
    "FrameError",
    "Prepacked",
    "WireError",
    "decode_envelope",
    "decode_envelope_binary",
    "decode_frame_body",
    "decode_heartbeat",
    "decode_message",
    "decode_value",
    "encode_envelope",
    "encode_envelope_as",
    "encode_envelope_binary",
    "encode_envelope_fragments",
    "encode_frame_fragments",
    "encode_message",
    "encode_value",
    "heartbeat_envelope",
    "hello_envelope",
    "negotiate_codec",
    "pack_send_envelope",
    "pack_send_reply",
    "pack_value_bytes",
    "read_frame",
    "write_frame",
    "write_frames",
]
