"""Reply-cache correctness: LRU mechanics + the staleness property.

The load-bearing test here is the hypothesis property: for *any*
interleaving of lookups and mutations, across every hosted scheme and
both wire codecs, a cache-enabled service must answer byte-identically
to a cache-disabled one — same reply frames, same Section 6.4 message
accounting.  That single property implies both soundness rules the
cache relies on (only RNG-free replies cached, mutations invalidate
before answering): if either broke, some interleaving would surface a
divergent frame or a diverged RNG stream.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.messages import AddRequest, DeleteRequest, LookupRequest
from repro.core.entry import Entry
from repro.core.exceptions import InvalidParameterError
from repro.net.cache import DEFAULT_CAPACITY, ReplyCache, SharedReplyCache
from repro.net.codec import CODEC_BINARY, CODEC_JSON, encode_envelope_as, encode_message
from repro.net.service import DEFAULT_SCHEMES, LookupService, ServiceConfig
from repro.obs.metrics import MetricsRegistry


class TestReplyCacheUnit:
    def test_capacity_must_be_positive(self):
        with pytest.raises(InvalidParameterError):
            ReplyCache(0)
        with pytest.raises(InvalidParameterError):
            ReplyCache(-3)

    def test_hit_miss_and_epoch_staleness(self):
        cache = ReplyCache(4)
        key = ("json", "send", "hash", 0, 5)
        assert cache.get(key, epoch=0) is None
        cache.put(key, epoch=0, payload=b"abc")
        assert cache.get(key, epoch=0) == b"abc"
        # a bumped epoch makes the stored stamp stale: miss, entry gone
        assert cache.get(key, epoch=1) is None
        assert cache.get(key, epoch=1) is None  # really gone, not re-stamped
        snap = cache.snapshot()
        assert snap["hits"] == 1 and snap["misses"] == 3 and snap["size"] == 0

    def test_lru_eviction_order(self):
        cache = ReplyCache(2)
        cache.put(("c", "send", "a", 0, 1), 0, b"1")
        cache.put(("c", "send", "a", 1, 1), 0, b"2")
        assert cache.get(("c", "send", "a", 0, 1), 0) == b"1"  # refresh 0
        cache.put(("c", "send", "a", 2, 1), 0, b"3")  # evicts server 1
        assert cache.get(("c", "send", "a", 1, 1), 0) is None
        assert cache.get(("c", "send", "a", 0, 1), 0) == b"1"
        assert cache.evictions == 1

    def test_invalidate_is_scoped_to_the_scheme(self):
        cache = ReplyCache(8)
        cache.put(("c", "send", "hash", 0, 1), 0, b"h")
        cache.put(("c", "send", "hash", 1, 1), 0, b"h2")
        cache.put(("c", "send", "fixed", 0, 1), 0, b"f")
        assert cache.invalidate("hash") == 2
        assert cache.get(("c", "send", "fixed", 0, 1), 0) == b"f"
        assert len(cache) == 1
        assert cache.invalidations == 2

    def test_clear_counts_as_invalidations(self):
        cache = ReplyCache(8)
        cache.put(("c", "send", "hash", 0, 1), 0, b"h")
        assert cache.clear() == 1
        assert cache.invalidations == 1 and len(cache) == 0

    def test_publish_mirrors_counters(self):
        cache = ReplyCache(8)
        cache.put(("c", "send", "hash", 0, 1), 0, b"h")
        cache.get(("c", "send", "hash", 0, 1), 0)
        metrics = MetricsRegistry()
        cache.publish(metrics)
        state = metrics.dump_state()
        assert state["counters"]["net.cache.hits"] == 1
        assert state["gauges"]["net.cache.size"] == 1

    def test_default_capacity(self):
        assert ReplyCache().capacity == DEFAULT_CAPACITY


# -- the staleness / byte-identity property ---------------------------------

SCHEMES = sorted(DEFAULT_SCHEMES)

#: One step of an interleaving: (kind, scheme index, server pick,
#: target-or-entry pick).  Kind 0/1/2 = lookup/add/delete.
steps = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=2),
        st.integers(min_value=0, max_value=len(SCHEMES) - 1),
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=0, max_value=10_000),
    ),
    min_size=1,
    max_size=40,
)


def _step_envelope(service, step):
    """A concrete envelope for one abstract interleaving step.

    Derived from the live service so the generated ops always address
    real servers, and mutations target a mix of seeded entries (which
    exist) and fresh ones (which don't) — deletes of absent entries
    and re-adds of present ones are part of the interleaving space.
    """
    kind, scheme_pick, server_pick, aux = step
    key = SCHEMES[scheme_pick]
    server = server_pick % service.cluster.size
    if kind == 0:
        # target 0 = whole store (cacheable); small positive targets
        # exercise the RNG-sampling (never-cached) path too.
        message = LookupRequest(target=aux % 5)
    else:
        entry = Entry(f"v{aux % 12 + 1}" if aux % 2 else f"zz{aux % 7}")
        message = AddRequest(entry=entry) if kind == 1 else DeleteRequest(entry=entry)
    return {
        "op": "send",
        "server": server,
        "key": key,
        "message": encode_message(message),
    }


@settings(deadline=None, max_examples=60)
@given(steps=steps, codec_pick=st.booleans())
def test_any_interleaving_is_byte_identical_to_cache_off(steps, codec_pick):
    """No interleaving of lookups and mutations ever serves a stale
    (or otherwise divergent) cached reply."""
    codec = CODEC_BINARY if codec_pick else CODEC_JSON
    raw = codec == CODEC_BINARY
    config = ServiceConfig(server_count=6, entry_count=8, seed=13)
    cached = LookupService(config)
    plain = LookupService(
        ServiceConfig(server_count=6, entry_count=8, seed=13, cache_size=0)
    )
    assert cached.reply_cache is not None and plain.reply_cache is None
    for step in steps:
        envelope = _step_envelope(cached, step)
        a = cached.handle_envelope(dict(envelope), raw=raw)
        b = plain.handle_envelope(dict(envelope), raw=raw)
        assert encode_envelope_as(a, codec) == encode_envelope_as(b, codec)
    # Section 6.4 accounting never diverges either: a cache hit books
    # the same message the bypassed Network.send would have.
    assert (
        cached.cluster.network.stats.total == plain.cluster.network.stats.total
    )
    assert (
        cached.cluster.network.stats.by_type == plain.cluster.network.stats.by_type
    )


@settings(deadline=None, max_examples=30)
@given(steps=steps, codec_pick=st.booleans())
def test_shared_cache_is_byte_identical_across_sharing_services(steps, codec_pick):
    """Legacy per-process cache, cache-off, and two services sharing
    one shared-memory segment (two workers in miniature, bus epochs
    emulated) answer byte-identically under any interleaving."""
    codec = CODEC_BINARY if codec_pick else CODEC_JSON
    raw = codec == CODEC_BINARY

    def make(**kw):
        return LookupService(
            ServiceConfig(server_count=6, entry_count=8, seed=13, **kw)
        )

    legacy, plain, first, second = make(), make(cache_size=0), make(), make()
    try:
        shared = SharedReplyCache(slots=128, slot_size=4096)
    except (OSError, ValueError) as exc:  # pragma: no cover - env-dependent
        pytest.skip(f"POSIX shared memory unavailable: {exc}")
    first.shared_cache = shared
    second.shared_cache = shared
    bus_epoch = 0
    try:
        for step in steps:
            envelope = _step_envelope(legacy, step)
            wires = {
                encode_envelope_as(
                    service.handle_envelope(dict(envelope), raw=raw), codec
                )
                for service in (legacy, plain, first, second)
            }
            assert len(wires) == 1
            if step[0] != 0:
                # Emulate the writer bus: every mutation earns one
                # globally monotonic epoch, adopted by both sharers.
                bus_epoch += 1
                key = SCHEMES[step[1]]
                first.set_shared_epoch(key, bus_epoch)
                second.set_shared_epoch(key, bus_epoch)
        # Section 6.4 accounting: a shared hit books the same message
        # the bypassed Network.send would have, on its own cluster.
        for service in (legacy, first, second):
            assert (
                service.cluster.network.stats.total
                == plain.cluster.network.stats.total
            )
    finally:
        shared.close(unlink=True)


def test_mutation_invalidates_before_the_reply_is_sent():
    """The reply to a mutation is the linearization point: any lookup
    issued after it must see post-mutation state, even on the scheme's
    hottest cached slot."""
    service = LookupService(ServiceConfig(server_count=6, entry_count=8, seed=13))
    lookup = {
        "op": "send",
        "server": 0,
        "key": "full_replication",
        "message": encode_message(LookupRequest(target=0)),
    }
    before = service.handle_envelope(dict(lookup))
    again = service.handle_envelope(dict(lookup))
    assert before == again and service.reply_cache.hits >= 1
    add = {
        "op": "send",
        "server": 0,
        "key": "full_replication",
        "message": encode_message(AddRequest(entry=Entry("zz-hot"))),
    }
    assert service.handle_envelope(add)["ok"]
    after = service.handle_envelope(dict(lookup))
    ids = {e["id"] for e in after["value"]}
    assert "zz-hot" in ids
    assert service.reply_cache.invalidations >= 1


def test_sampled_targets_are_never_cached():
    """0 < target < |store| draws from the cluster RNG; caching it
    would freeze the sample and fork the RNG stream."""
    service = LookupService(ServiceConfig(server_count=6, entry_count=8, seed=13))
    envelope = {
        "op": "send",
        "server": 0,
        "key": "full_replication",
        "message": encode_message(LookupRequest(target=2)),
    }
    first = service.handle_envelope(dict(envelope))
    assert first["ok"]
    assert len(service.reply_cache) == 0
    # across many draws the sample must actually vary: a frozen reply
    # here would mean the RNG was bypassed
    seen = {
        tuple(sorted(e["id"] for e in service.handle_envelope(dict(envelope))["value"]))
        for _ in range(30)
    }
    assert len(seen) > 1
    assert service.reply_cache.hits == 0


def test_fault_injector_disables_caching():
    """With a fault plan installed, delivery is no longer a pure
    function of store state — nothing may be cached."""
    from repro.cluster.faults import FaultPlan

    service = LookupService(ServiceConfig(server_count=6, entry_count=8, seed=13))
    service.cluster.network.install_fault_plan(FaultPlan(seed=3))
    envelope = {
        "op": "send",
        "server": 0,
        "key": "full_replication",
        "message": encode_message(LookupRequest(target=0)),
    }
    service.handle_envelope(dict(envelope))
    service.handle_envelope(dict(envelope))
    assert len(service.reply_cache) == 0 and service.reply_cache.hits == 0


def test_capabilities_expose_cache_counters():
    service = LookupService(ServiceConfig(server_count=6, entry_count=8, seed=13))
    envelope = {
        "op": "send",
        "server": 0,
        "key": "hash",
        "message": encode_message(LookupRequest(target=0)),
    }
    service.handle_envelope(dict(envelope))
    service.handle_envelope(dict(envelope))
    caps = service.capabilities()
    assert caps["cache"]["enabled"] is True
    assert caps["cache"]["hits"] == 1 and caps["cache"]["misses"] == 1
    assert caps["workers"] == {"count": 1, "index": 0, "role": "single"}
    # and the metrics registry mirrors them
    state = service.metrics.dump_state()
    assert state["counters"]["net.cache.hits"] == 1


def test_cache_disabled_capabilities():
    service = LookupService(
        ServiceConfig(server_count=6, entry_count=8, seed=13, cache_size=0)
    )
    caps = service.capabilities()
    assert caps["cache"] == {"enabled": False, "shared": {"enabled": False}}
