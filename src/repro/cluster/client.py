"""The client-side lookup driver.

Every strategy's ``partial_lookup`` follows the same skeleton — contact
servers in some order, merge the distinct entries from each reply, stop
once the target is met — and differs only in the *order* of servers
contacted (uniformly random for most strategies, the deterministic
``s, s+y, s+2y, ...`` walk for Round-Robin).  :class:`Client`
implements that skeleton once, including the paper's failure handling:
a request to a failed server goes unanswered and the client falls back
to trying other (random) servers.

Under a fault plan the transport can also *lose* requests
(:data:`~repro.cluster.network.DROPPED`), which the paper's protocol
cannot distinguish from a failed server.  A :class:`RetryPolicy` makes
the client distinguish the two: after a pass that came up short it
re-contacts the servers that never answered — dropped contacts first,
since those servers are presumably alive — within a bounded backoff
budget measured in simulated time, instead of silently under-filling
the answer.  The result reports the retry count and an explicit
``degraded`` flag, so a short answer is always a *labelled* short
answer.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, List, Optional, Set

from repro.core.entry import Entry
from repro.core.exceptions import InvalidParameterError, NoOperationalServerError
from repro.core.result import LookupResult
from repro.cluster.cluster import Cluster
from repro.cluster.messages import LookupRequest
from repro.cluster.network import DROPPED, is_undelivered


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded-retry behaviour for lookups under lossy transport.

    Parameters
    ----------
    max_attempts:
        Total passes over unanswered servers, including the first; 1
        reproduces the paper's single-pass client exactly.
    base_backoff:
        Simulated-time delay before the first retry pass.
    backoff_multiplier:
        Exponential growth factor per retry pass.
    backoff_budget:
        Total simulated time one lookup may spend backing off.  A
        retry whose delay would exceed the remaining budget is not
        attempted — the lookup returns degraded instead of retrying
        forever.  Measured in the same virtual-time units as the
        :class:`~repro.simulation.engine.SimulationEngine` clock; the
        synchronous transport accounts the delay (see
        ``LookupResult.backoff``) rather than advancing the engine,
        matching the codebase's convention that asynchronous timing
        lives at the workload level.
    jitter:
        Each delay is scaled by ``1 + jitter * u`` with ``u`` uniform
        in [0, 1) from the client RNG (the cluster RNG by default), so
        seeded runs replay identical retry schedules.
    """

    max_attempts: int = 3
    base_backoff: float = 1.0
    backoff_multiplier: float = 2.0
    backoff_budget: float = 30.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise InvalidParameterError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_backoff < 0 or self.backoff_budget < 0:
            raise InvalidParameterError("backoff times must be non-negative")
        if self.backoff_multiplier < 1.0:
            raise InvalidParameterError(
                f"backoff_multiplier must be >= 1, got {self.backoff_multiplier}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise InvalidParameterError(
                f"jitter must be in [0, 1], got {self.jitter}"
            )

    def delay(self, retry_index: int, rng: random.Random) -> float:
        """The jittered backoff before retry pass ``retry_index`` (0-based)."""
        base = self.base_backoff * (self.backoff_multiplier ** retry_index)
        if self.jitter:
            base *= 1.0 + self.jitter * rng.random()
        return base


class Client:
    """A lookup client bound to a cluster.

    Parameters
    ----------
    cluster:
        The cluster to issue lookups against.
    rng:
        Private randomness for server selection; defaults to the
        cluster RNG so a seeded cluster stays fully deterministic.
    retry_policy:
        Optional :class:`RetryPolicy`.  With the default ``None`` the
        client is the paper's single-pass client, bit-for-bit.
    """

    def __init__(
        self,
        cluster: Cluster,
        rng: Optional[random.Random] = None,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        self._cluster = cluster
        self._rng = rng if rng is not None else cluster.rng
        self.retry_policy = retry_policy

    # -- server orderings -----------------------------------------------------

    def random_order(self) -> List[int]:
        """All server ids in a fresh uniformly random order."""
        order = list(range(self._cluster.size))
        self._rng.shuffle(order)
        return order

    def stride_order(self, start: int, stride: int) -> List[int]:
        """The Round-Robin-y contact sequence ``start, start+stride, ...``.

        Walks all ``n`` servers modulo ``n``; when ``gcd(stride, n) > 1``
        the walk revisits ids, so remaining ids are appended in random
        order to preserve the "contact every server at most once"
        client behaviour.
        """
        n = self._cluster.size
        order: List[int] = []
        seen: Set[int] = set()
        current = start % n
        for _ in range(n):
            if current in seen:
                break
            order.append(current)
            seen.add(current)
            current = (current + stride) % n
        leftovers = [i for i in range(n) if i not in seen]
        self._rng.shuffle(leftovers)
        order.extend(leftovers)
        return order

    # -- the lookup skeleton -----------------------------------------------------

    def collect(
        self,
        key: str,
        target: int,
        order: Iterable[int],
        max_servers: Optional[int] = None,
        per_server_target: Optional[int] = None,
    ) -> LookupResult:
        """Contact servers in ``order`` until ``target`` entries merge.

        Parameters
        ----------
        key:
            The key being looked up.
        target:
            Required number of distinct entries; ``0`` means "collect
            everything" (contact every server), used for traditional
            full lookups and coverage probes.
        order:
            Server ids to try, in order.  Failed servers are skipped
            (recorded in ``failed_contacts``) without counting toward
            the lookup cost, per Section 4.2's no-failure cost model.
        max_servers:
            Optional cap on operational servers contacted; used by
            strategies whose placement makes extra contacts useless
            (Fixed-x and full replication stop after one).
        per_server_target:
            How many entries to request from each server.  Defaults to
            ``target``, the paper's per-server answer size.

        When a :class:`RetryPolicy` is set and the first pass comes up
        short with unanswered servers remaining, the client makes
        further passes over those servers (dropped contacts first)
        until the target is met, the attempts run out, or the backoff
        budget is exhausted.
        """
        ask = target if per_server_target is None else per_server_target
        merged: List[Entry] = []
        merged_ids: Set[str] = set()
        contacted: List[int] = []
        failed: List[int] = []
        dropped: List[int] = []

        def run_pass(pass_order: Iterable[int]) -> None:
            for server_id in pass_order:
                if target > 0 and len(merged) >= target:
                    break
                if max_servers is not None and len(contacted) >= max_servers:
                    break
                reply = self._cluster.network.send(
                    server_id, key, LookupRequest(ask)
                )
                if is_undelivered(reply):
                    (dropped if reply is DROPPED else failed).append(server_id)
                    continue
                contacted.append(server_id)
                fresh = [e for e in reply if e.entry_id not in merged_ids]
                # The client wants exactly ``target`` entries; when the
                # final server's reply overshoots, keep a uniformly random
                # subset of its fresh contribution so no entry of that
                # server is privileged (this is what makes Round-Robin's
                # answers exactly fair, §4.5).
                if target > 0 and len(merged) + len(fresh) > target:
                    fresh = self._rng.sample(fresh, target - len(merged))
                merged.extend(fresh)
                merged_ids.update(e.entry_id for e in fresh)

        run_pass(order)

        retries = 0
        backoff = 0.0
        policy = self.retry_policy
        if policy is not None and target > 0:
            while (
                len(merged) < target
                and retries + 1 < policy.max_attempts
                and (dropped or failed)
                and (max_servers is None or len(contacted) < max_servers)
            ):
                delay = policy.delay(retries, self._rng)
                if backoff + delay > policy.backoff_budget:
                    break
                backoff += delay
                retries += 1
                # Dropped contacts are retried before failed ones: a
                # drop means the server is (probably) alive and the
                # message was lost, whereas a failed server stays
                # failed until something recovers it.
                retry_failed = list(failed)
                self._rng.shuffle(retry_failed)
                retry_order = dropped + retry_failed
                dropped = []
                failed = []
                run_pass(retry_order)

        return LookupResult(
            entries=tuple(merged),
            target=target,
            servers_contacted=tuple(contacted),
            failed_contacts=tuple(failed) + tuple(dropped),
            messages=len(contacted),
            retries=retries,
            backoff=backoff,
        )

    def lookup_random(
        self,
        key: str,
        target: int,
        max_servers: Optional[int] = None,
    ) -> LookupResult:
        """Random-order lookup (full replication, Fixed, RandomServer, Hash)."""
        return self.collect(key, target, self.random_order(), max_servers=max_servers)

    def lookup_stride(self, key: str, target: int, stride: int) -> LookupResult:
        """Round-Robin-y lookup: random start, then stride-``y`` walk.

        If any server in the deterministic sequence has failed, the
        paper's client abandons the sequence and falls back to random
        order over the untried servers; :meth:`collect` realizes that
        because failed servers are skipped and the stride order ends
        with a random permutation of any unvisited ids.
        """
        start = self._cluster.random_server_id()
        return self.collect(key, target, self.stride_order(start, stride))
