"""Property-based tests for the client lookup driver."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.client import Client
from repro.cluster.cluster import Cluster
from repro.cluster.messages import LookupRequest
from repro.cluster.server import ServerLogic
from repro.core.entry import Entry


class _StockLogic(ServerLogic):
    """Servers reply from fixed per-server stock lists."""

    def __init__(self, stocks):
        self.stocks = stocks

    def handle(self, server, message, network):
        assert isinstance(message, LookupRequest)
        stock = self.stocks.get(server.server_id, [])
        if message.target <= 0 or message.target >= len(stock):
            return list(stock)
        rng = random.Random(server.server_id)
        return rng.sample(stock, message.target)


@st.composite
def stocked_clusters(draw):
    n = draw(st.integers(min_value=1, max_value=8))
    stocks = {}
    for server_id in range(n):
        count = draw(st.integers(min_value=0, max_value=12))
        start = draw(st.integers(min_value=0, max_value=30))
        stocks[server_id] = [Entry(f"e{start + i}") for i in range(count)]
    seed = draw(st.integers(min_value=0, max_value=2**31))
    failed = draw(st.sets(st.integers(0, n - 1), max_size=n - 1 if n > 1 else 0))
    return n, stocks, seed, failed


@given(stocked_clusters(), st.integers(min_value=0, max_value=40))
@settings(max_examples=60, deadline=None)
def test_collect_invariants(setup, target):
    n, stocks, seed, failed = setup
    cluster = Cluster(n, seed=seed)
    logic = _StockLogic(stocks)
    for server in cluster.servers:
        server.install_logic("k", logic)
    for server_id in failed:
        cluster.fail(server_id)

    client = Client(cluster)
    result = client.collect("k", target, order=client.random_order())

    # 1. No duplicates, ever.
    ids = [e.entry_id for e in result.entries]
    assert len(ids) == len(set(ids))

    # 2. Exactly-t trimming: a successful bounded lookup returns
    #    exactly t entries; target 0 returns the union of alive stock.
    alive_union = {
        e.entry_id
        for sid, stock in stocks.items()
        if cluster.server(sid).alive
        for e in stock
    }
    if target > 0:
        if len(alive_union) >= target:
            assert len(result.entries) == target
            assert result.success
        else:
            assert set(ids) == alive_union
            assert not result.success
    else:
        assert set(ids) == alive_union

    # 3. Only alive servers are contacted; failed ones are recorded.
    assert all(cluster.server(sid).alive for sid in result.servers_contacted)
    assert all(not cluster.server(sid).alive for sid in result.failed_contacts)

    # 4. Entries only come from contacted servers' stocks.
    reachable = {
        e.entry_id
        for sid in result.servers_contacted
        for e in stocks.get(sid, [])
    }
    assert set(ids) <= reachable

    # 5. Message accounting equals operational contacts.
    assert result.messages == len(result.servers_contacted)


@given(
    st.integers(min_value=2, max_value=12),
    st.integers(min_value=0, max_value=11),
    st.integers(min_value=1, max_value=12),
    st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=60, deadline=None)
def test_stride_order_is_always_a_permutation(n, start, stride, seed):
    cluster = Cluster(n, seed=seed)
    client = Client(cluster)
    order = client.stride_order(start, stride)
    assert sorted(order) == list(range(n))
    assert order[0] == start % n
