"""Unit tests for the unfairness metric (§4.5, equation 1)."""

import pytest

from repro.cluster.cluster import Cluster
from repro.core.entry import make_entries
from repro.core.exceptions import InvalidParameterError
from repro.metrics.unfairness import (
    estimate_unfairness,
    exact_unfairness_uniform_subset,
    instance_unfairness,
    retrieval_probabilities,
)
from repro.strategies.fixed import FixedX
from repro.strategies.full_replication import FullReplication
from repro.strategies.random_server import RandomServerX
from repro.strategies.round_robin import RoundRobinY


class TestEquationOne:
    def test_paper_fixed1_example(self):
        # §4.5: Fixed-1 managing 2 entries, t=1 -> U = 1.
        assert instance_unfairness([1.0, 0.0], target=1) == pytest.approx(1.0)

    def test_perfectly_fair_is_zero(self):
        assert instance_unfairness([0.5, 0.5], target=1) == pytest.approx(0.0)

    def test_paper_random_server_figure8(self):
        # Figure 8: RandomServer-1 on 2 servers/2 entries has four
        # equally likely instances with unfairness 1, 0, 0, 1 -> 1/2.
        instances = [
            [1.0, 0.0],   # both servers store v1
            [0.5, 0.5],   # server1 v1, server2 v2
            [0.5, 0.5],   # server1 v2, server2 v1
            [0.0, 1.0],   # both store v2
        ]
        mean = sum(instance_unfairness(p, 1) for p in instances) / 4
        assert mean == pytest.approx(0.5)

    def test_unlisted_entries_count_as_zero_probability(self):
        # Passing 2 probabilities with entry_count=4 treats the other
        # two entries as unretrievable.
        short = instance_unfairness([0.5, 0.5], target=1, entry_count=4)
        explicit = instance_unfairness([0.5, 0.5, 0.0, 0.0], target=1)
        assert short == pytest.approx(explicit)

    def test_scale_invariance_of_ideal(self):
        # Uniform probability t/h over all h entries is fair for any t.
        for t in (1, 5, 20):
            probabilities = [t / 100] * 100
            assert instance_unfairness(probabilities, t) == pytest.approx(0.0)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            instance_unfairness([], target=1)
        with pytest.raises(InvalidParameterError):
            instance_unfairness([0.5], target=0)


class TestClosedFormSubset:
    def test_paper_fixed20_of_100_is_2(self):
        # §6.3: Fixed-20 over 100 entries has unfairness 2.
        assert exact_unfairness_uniform_subset(20, 100, 35) == pytest.approx(2.0)

    def test_full_subset_is_fair(self):
        assert exact_unfairness_uniform_subset(100, 100, 35) == pytest.approx(0.0)

    def test_independent_of_target(self):
        a = exact_unfairness_uniform_subset(20, 100, 5)
        b = exact_unfairness_uniform_subset(20, 100, 50)
        assert a == pytest.approx(b)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            exact_unfairness_uniform_subset(0, 100, 5)
        with pytest.raises(InvalidParameterError):
            exact_unfairness_uniform_subset(101, 100, 5)


class TestMonteCarloEstimates:
    def test_probabilities_sum_to_target(self, cluster):
        strategy = FullReplication(cluster)
        entries = make_entries(20)
        strategy.place(entries)
        probabilities = retrieval_probabilities(strategy, 5, entries, lookups=2000)
        assert sum(probabilities.values()) == pytest.approx(5.0, rel=0.05)

    def test_full_replication_nearly_fair(self, cluster):
        strategy = FullReplication(cluster)
        entries = make_entries(50)
        strategy.place(entries)
        estimate = estimate_unfairness(strategy, 10, entries, lookups=4000)
        assert estimate.unfairness < 0.15  # Monte-Carlo noise floor

    def test_round_robin_nearly_fair(self):
        strategy = RoundRobinY(Cluster(10, seed=3), y=2)
        entries = make_entries(100)
        strategy.place(entries)
        estimate = estimate_unfairness(strategy, 35, entries, lookups=4000)
        assert estimate.unfairness < 0.1

    def test_fixed_matches_closed_form(self, cluster):
        strategy = FixedX(cluster, x=20)
        entries = make_entries(100)
        strategy.place(entries)
        estimate = estimate_unfairness(strategy, 10, entries, lookups=4000)
        assert estimate.unfairness == pytest.approx(2.0, abs=0.1)
        assert estimate.zero_probability_entries == 80

    def test_random_server_much_fairer_than_fixed(self):
        # §4.5's headline: RandomServer-x is an order of magnitude
        # fairer than Fixed-x in the static case.
        cluster = Cluster(10, seed=4)
        entries = make_entries(100)
        random_server = RandomServerX(cluster, x=20, key="rs")
        random_server.place(entries)
        fixed = FixedX(cluster, x=20, key="f")
        fixed.place(entries)
        rs_unfairness = estimate_unfairness(
            random_server, 35, entries, lookups=3000
        ).unfairness
        fixed_unfairness = estimate_unfairness(
            fixed, 35, entries, lookups=3000
        ).unfairness
        assert rs_unfairness < fixed_unfairness / 2

    def test_validation(self, cluster):
        strategy = FullReplication(cluster)
        entries = make_entries(5)
        strategy.place(entries)
        with pytest.raises(InvalidParameterError):
            retrieval_probabilities(strategy, 2, entries, lookups=0)
