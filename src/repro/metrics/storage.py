"""Storage cost: total entries stored across servers (paper §4.1).

All entries are assumed equally sized, so the cost is a count.  The
closed forms the paper tabulates (Table 1) live in
:mod:`repro.analysis.formulas`; this module measures the *actual*
placement, which is what the simulations compare against those forms.
"""

from __future__ import annotations

from typing import Dict, List

from repro.strategies.base import PlacementStrategy


def measured_storage_cost(strategy: PlacementStrategy) -> int:
    """The combined number of entries stored on all servers."""
    return strategy.storage_cost()


def storage_by_server(strategy: PlacementStrategy) -> List[int]:
    """Per-server stored-entry counts, indexed by server id.

    Useful for the load-balance observations: Round-Robin's sizes
    differ by at most ``y`` while Hash-y's can be arbitrarily skewed
    ("the hash functions [may] assign most of the entries to one
    server", §3.5).
    """
    return strategy.cluster.store_sizes(strategy.key)


def storage_imbalance(strategy: PlacementStrategy) -> int:
    """Max minus min per-server store size (0 = perfectly even)."""
    sizes = storage_by_server(strategy)
    return max(sizes) - min(sizes) if sizes else 0
