"""Unit tests for the MetricsCollector."""

from repro.cluster.cluster import Cluster
from repro.core.entry import make_entries
from repro.metrics.collector import MetricsCollector, MetricsSnapshot
from repro.strategies.round_robin import RoundRobinY


class TestCollector:
    def test_snapshot_fields(self):
        strategy = RoundRobinY(Cluster(10, seed=1), y=2)
        entries = make_entries(100)
        strategy.place(entries)
        collector = MetricsCollector(lookup_samples=100, unfairness_samples=500)
        snapshot = collector.collect(strategy, target=20, universe=entries)
        assert isinstance(snapshot, MetricsSnapshot)
        assert snapshot.strategy_name == "round_robin"
        assert snapshot.storage_cost == 200
        assert snapshot.coverage == 100
        assert snapshot.mean_lookup_cost == 1.0
        assert snapshot.lookup_failure_rate == 0.0
        assert snapshot.fault_tolerance == 9
        assert snapshot.unfairness < 0.2
        assert snapshot.storage_imbalance == 0

    def test_as_row_keys(self):
        strategy = RoundRobinY(Cluster(5, seed=2), y=1)
        entries = make_entries(20)
        strategy.place(entries)
        collector = MetricsCollector(lookup_samples=50, unfairness_samples=200)
        row = collector.collect(strategy, 4, entries).as_row()
        assert set(row) == {
            "strategy",
            "t",
            "storage",
            "imbalance",
            "lookup_cost",
            "lookup_fail",
            "coverage",
            "fault_tol",
            "unfairness",
        }
