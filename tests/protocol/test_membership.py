"""Deterministic sans-IO tests for the shard membership machine.

Every test drives :class:`MembershipProtocol` with hand-picked clock
readings and heartbeat events — zero sockets, zero sleeps, zero real
time — which is the acceptance bar for the failure-detection layer:
all membership decisions must be checkable as pure state transitions.
"""

import random

import pytest

from repro.core.exceptions import InvalidParameterError
from repro.protocol.effects import PeerTransition, SendHeartbeat
from repro.protocol.events import ClockTick, HeartbeatSeen, MessageReceived
from repro.protocol.membership import (
    ALIVE,
    DEAD,
    QUARANTINED,
    ROUTABLE_STATES,
    SUSPECT,
    MembershipConfig,
    MembershipProtocol,
)

CFG = MembershipConfig(
    heartbeat_interval=0.5, suspect_after=2.0, dead_after=5.0, quarantine=3.0
)


def machine(**kwargs):
    kwargs.setdefault("incarnation", 1)
    return MembershipProtocol("s0", ["s1", "s2"], CFG, **kwargs)


def transitions(effects):
    return [e for e in effects if isinstance(e, PeerTransition)]


def beats(effects):
    return [e.peer for e in effects if isinstance(e, SendHeartbeat)]


def beat(proto, peer, incarnation=1, view=(), now=0.0):
    return proto.on_event(HeartbeatSeen(peer, incarnation, view, now=now))


class TestConfigValidation:
    def test_dead_must_exceed_suspect(self):
        with pytest.raises(InvalidParameterError):
            MembershipConfig(suspect_after=5.0, dead_after=5.0)

    def test_positive_intervals(self):
        with pytest.raises(InvalidParameterError):
            MembershipConfig(heartbeat_interval=0.0)
        with pytest.raises(InvalidParameterError):
            MembershipConfig(suspect_after=-1.0)
        with pytest.raises(InvalidParameterError):
            MembershipConfig(quarantine=-0.1)


class TestEscalation:
    def test_peers_start_alive_with_grace(self):
        proto = machine(now=0.0)
        assert proto.state_of("s1") == ALIVE
        assert proto.state_of("s2") == ALIVE
        # Inside the grace window nothing changes.
        assert transitions(proto.on_event(ClockTick(1.9))) == []
        assert proto.state_of("s1") == ALIVE

    def test_silence_escalates_alive_suspect_dead(self):
        proto = machine(now=0.0)
        changed = transitions(proto.on_event(ClockTick(2.0)))
        assert {(t.peer, t.new_state) for t in changed} == {
            ("s1", SUSPECT),
            ("s2", SUSPECT),
        }
        changed = transitions(proto.on_event(ClockTick(5.0)))
        assert {(t.peer, t.new_state) for t in changed} == {
            ("s1", DEAD),
            ("s2", DEAD),
        }
        assert proto.routable_peers() == []

    def test_silence_can_jump_straight_to_dead(self):
        # A driver that stalls past dead_after must still land on DEAD.
        proto = machine(now=0.0)
        changed = transitions(proto.on_event(ClockTick(50.0)))
        assert {(t.peer, t.old_state, t.new_state) for t in changed} == {
            ("s1", ALIVE, DEAD),
            ("s2", ALIVE, DEAD),
        }

    def test_heartbeat_refreshes_and_recovers_suspect(self):
        proto = machine(now=0.0)
        proto.on_event(ClockTick(2.0))
        assert proto.state_of("s1") == SUSPECT
        changed = transitions(beat(proto, "s1", now=2.5))
        assert [(t.peer, t.old_state, t.new_state) for t in changed] == [
            ("s1", SUSPECT, ALIVE)
        ]
        # The refresh restarts the silence clock.
        assert transitions(proto.on_event(ClockTick(4.4))) == []
        assert proto.state_of("s1") == ALIVE
        # s2 is still silent and dies on schedule; s1's new silence
        # window (since 2.5) re-suspects it at the same instant.
        assert proto.state_of("s2") == SUSPECT
        changed = transitions(proto.on_event(ClockTick(5.0)))
        assert {(t.peer, t.new_state) for t in changed} == {
            ("s1", SUSPECT),
            ("s2", DEAD),
        }

    def test_suspect_peers_remain_routable(self):
        proto = machine(now=0.0)
        proto.on_event(ClockTick(2.0))
        assert proto.state_of("s1") == SUSPECT
        assert "s1" in proto.routable_peers()
        assert SUSPECT in ROUTABLE_STATES
        assert DEAD not in ROUTABLE_STATES
        assert QUARANTINED not in ROUTABLE_STATES


class TestRejoin:
    def dead_machine(self):
        proto = machine(now=0.0)
        proto.on_event(ClockTick(10.0))
        assert proto.state_of("s1") == DEAD
        return proto

    def test_returning_peer_is_quarantined_not_trusted(self):
        proto = self.dead_machine()
        changed = transitions(beat(proto, "s1", incarnation=2, now=11.0))
        assert [(t.peer, t.new_state) for t in changed] == [("s1", QUARANTINED)]
        assert "s1" not in proto.routable_peers()

    def test_quarantine_expires_into_alive_while_heartbeating(self):
        proto = self.dead_machine()
        beat(proto, "s1", incarnation=2, now=11.0)
        # Keeps beating through probation; stays quarantined until
        # quarantine_until (11 + 3), then re-admits on the next tick.
        beat(proto, "s1", incarnation=2, now=12.0)
        assert transitions(proto.on_event(ClockTick(13.9))) == []
        assert proto.state_of("s1") == QUARANTINED
        beat(proto, "s1", incarnation=2, now=13.95)
        changed = transitions(proto.on_event(ClockTick(14.0)))
        assert [(t.peer, t.old_state, t.new_state) for t in changed] == [
            ("s1", QUARANTINED, ALIVE)
        ]
        assert "s1" in proto.routable_peers()

    def test_silence_during_quarantine_returns_to_dead(self):
        proto = self.dead_machine()
        beat(proto, "s1", incarnation=2, now=11.0)
        changed = transitions(proto.on_event(ClockTick(16.0)))
        assert [(t.peer, t.new_state) for t in changed] == [("s1", DEAD)]

    def test_restart_during_quarantine_restarts_probation(self):
        proto = self.dead_machine()
        beat(proto, "s1", incarnation=2, now=11.0)  # probation ends at 14
        beat(proto, "s1", incarnation=3, now=13.0)  # crashed again: ends at 16
        beat(proto, "s1", incarnation=3, now=14.5)
        assert transitions(proto.on_event(ClockTick(15.0))) == []
        assert proto.state_of("s1") == QUARANTINED
        beat(proto, "s1", incarnation=3, now=15.9)
        changed = transitions(proto.on_event(ClockTick(16.0)))
        assert [(t.peer, t.new_state) for t in changed] == [("s1", ALIVE)]

    def test_same_incarnation_rejoin_is_a_healed_partition(self):
        proto = self.dead_machine()
        changed = transitions(beat(proto, "s1", incarnation=1, now=11.0))
        assert [(t.peer, t.new_state) for t in changed] == [("s1", QUARANTINED)]

    def test_stale_incarnation_heartbeat_is_ignored(self):
        proto = machine(now=0.0)
        beat(proto, "s1", incarnation=5, now=1.0)
        # A zombie beat from a dead incarnation refreshes nothing.
        assert transitions(beat(proto, "s1", incarnation=3, now=2.0)) == []
        proto.on_event(ClockTick(1.0 + CFG.dead_after))
        assert proto.state_of("s1") == DEAD


class TestHeartbeatSchedule:
    def test_first_tick_fans_out_then_respects_interval(self):
        proto = machine(now=0.0)
        assert beats(proto.on_event(ClockTick(0.0))) == ["s1", "s2"]
        assert beats(proto.on_event(ClockTick(0.3))) == []
        assert beats(proto.on_event(ClockTick(0.5))) == ["s1", "s2"]

    def test_rng_shuffles_fanout_order(self):
        proto = MembershipProtocol(
            "s0",
            [f"p{i}" for i in range(8)],
            CFG,
            incarnation=1,
            rng=random.Random(3),
        )
        order = beats(proto.on_event(ClockTick(0.0)))
        assert sorted(order) == [f"p{i}" for i in range(8)]
        assert order != sorted(order)  # Random(3) shuffles this length

    def test_dead_peers_still_receive_probes(self):
        # Probing the dead is how a healed partition is noticed.
        proto = machine(now=0.0)
        proto.on_event(ClockTick(10.0))
        assert proto.state_of("s1") == DEAD
        assert "s1" in beats(proto.on_event(ClockTick(10.5)))


class TestGossip:
    def test_gossip_teaches_unknown_peers_as_suspect(self):
        proto = machine(now=0.0)
        changed = transitions(
            beat(proto, "s1", view=(("s9", ALIVE, 4),), now=1.0)
        )
        assert ("s9", None, SUSPECT) in {
            (t.peer, t.old_state, t.new_state) for t in changed
        }
        # Routable (benefit of the doubt) but one silence step from dead.
        assert "s9" in proto.routable_peers()
        changed = transitions(proto.on_event(ClockTick(1.0 + CFG.dead_after)))
        assert ("s9", DEAD) in {(t.peer, t.new_state) for t in changed}

    def test_gossip_never_overrides_local_state_verdict(self):
        proto = machine(now=0.0)
        beat(proto, "s1", now=1.0)
        # s2 gossips that s1 is dead; we just heard s1 ourselves.
        beat(proto, "s2", view=(("s1", DEAD, 1),), now=1.5)
        assert proto.state_of("s1") == ALIVE

    def test_gossip_teaches_higher_incarnations(self):
        proto = machine(now=0.0)
        beat(proto, "s1", incarnation=1, now=1.0)
        beat(proto, "s2", view=(("s1", ALIVE, 7),), now=1.5)
        # Now a direct beat with incarnation 3 is stale and ignored.
        assert transitions(beat(proto, "s1", incarnation=3, now=2.0)) == []

    def test_own_row_in_gossip_is_ignored(self):
        proto = machine(now=0.0)
        beat(proto, "s1", view=(("s0", DEAD, 99),), now=1.0)
        assert proto.state_of("s0") == ALIVE
        assert proto.incarnation == 1


class TestViewSurface:
    def test_view_includes_self_sorted(self):
        proto = machine(now=0.0)
        rows = proto.view()
        assert [row.name for row in rows] == ["s0", "s1", "s2"]
        assert rows[0].state == ALIVE
        assert rows[0].incarnation == 1

    def test_wire_view_round_trips_through_heartbeat_seen(self):
        a = machine(now=0.0)
        b = MembershipProtocol("s3", ["s0"], CFG, incarnation=2, now=0.0)
        b.on_event(HeartbeatSeen("s0", 1, a.wire_view(), now=0.5))
        # b learned s1 and s2 from a's gossip.
        assert b.state_of("s1") == SUSPECT
        assert b.state_of("s2") == SUSPECT

    def test_counts_match_states(self):
        proto = machine(now=0.0)
        proto.on_event(ClockTick(2.0))
        counts = proto.counts()
        assert counts[SUSPECT] == 2
        assert counts[ALIVE] == 0
        assert sum(counts.values()) == 2

    def test_unconsumable_event_raises(self):
        proto = machine(now=0.0)
        with pytest.raises(TypeError):
            proto.on_event(MessageReceived("s1", object()))
