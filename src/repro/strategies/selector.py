"""Executable scheme selection: Figure 3 plus the paper's rules of thumb.

The paper classifies the five strategies along two axes (Figure 3) —
does the scheme guarantee every entry is stored somewhere, and does it
randomize — and scatters "rules of thumb" through Sections 4 and 6:

- §4.2: avoid Hash-y when targets are smaller than the per-server
  entry count; Round-y has the lowest lookup cost unless the target
  slightly exceeds the per-server count.
- §4.3: Round-y and Hash-y when clients need large/complete coverage.
- §4.4: Fixed-x for best fault tolerance when coverage doesn't matter;
  RandomServer-x / Round-y for large / complete coverage; avoid Hash-y
  unless targets are very large.
- §4.5: only full replication and Round-y give zero unfairness.
- §6.3: RandomServer-x and Round-y suit static environments; Fixed-x
  and Hash-y are cheaper under high update rates.
- §6.4: Fixed-x beats Hash-y on update overhead when t/h < 1/n,
  roughly.

This module turns those rules into code: :func:`classify` reproduces
the Figure 3 taxonomy, and :func:`recommend` ranks strategies for a
declared workload profile, returning machine-readable reasons.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.exceptions import InvalidParameterError


@dataclass(frozen=True)
class SchemeTraits:
    """Figure 3 coordinates plus the coarse Table 2 characteristics."""

    name: str
    full_replication: bool
    guarantees_all_entries_stored: bool
    randomized: bool
    zero_unfairness: bool
    constant_storage: bool  # storage grows with n, not with h (Fixed/RandomServer)
    broadcast_free_updates: bool


_TRAITS: Dict[str, SchemeTraits] = {
    "full_replication": SchemeTraits(
        "full_replication",
        full_replication=True,
        guarantees_all_entries_stored=True,
        randomized=False,
        zero_unfairness=True,
        constant_storage=False,
        broadcast_free_updates=False,
    ),
    "fixed": SchemeTraits(
        "fixed",
        full_replication=False,
        guarantees_all_entries_stored=False,
        randomized=False,
        zero_unfairness=False,
        constant_storage=True,
        broadcast_free_updates=False,
    ),
    "random_server": SchemeTraits(
        "random_server",
        full_replication=False,
        guarantees_all_entries_stored=False,
        randomized=True,
        zero_unfairness=False,
        constant_storage=True,
        broadcast_free_updates=False,
    ),
    "round_robin": SchemeTraits(
        "round_robin",
        full_replication=False,
        guarantees_all_entries_stored=True,
        randomized=False,
        zero_unfairness=True,
        constant_storage=False,
        broadcast_free_updates=False,
    ),
    "hash": SchemeTraits(
        "hash",
        full_replication=False,
        guarantees_all_entries_stored=True,
        randomized=True,
        zero_unfairness=False,
        constant_storage=False,
        broadcast_free_updates=True,
    ),
}


def classify(
    use_full_replication: bool,
    guarantee_all_entries_stored: bool = False,
    use_randomization: bool = False,
) -> str:
    """Walk the Figure 3 decision tree to a strategy name.

    >>> classify(False, guarantee_all_entries_stored=True, use_randomization=True)
    'hash'
    >>> classify(True)
    'full_replication'
    """
    if use_full_replication:
        return "full_replication"
    if guarantee_all_entries_stored:
        return "round_robin" if not use_randomization else "hash"
    return "fixed" if not use_randomization else "random_server"


def traits(name: str) -> SchemeTraits:
    """The Figure 3 / Table 2 traits of a named scheme."""
    try:
        return _TRAITS[name]
    except KeyError:
        raise InvalidParameterError(f"unknown scheme {name!r}") from None


@dataclass(frozen=True)
class WorkloadProfile:
    """A declarative description of the deployment the paper's rules need.

    Parameters
    ----------
    entry_count:
        Expected number of entries per key, ``h``.
    server_count:
        Number of servers, ``n``.
    target_answer_size:
        Typical ``t`` clients ask for.
    update_rate:
        Updates per lookup; ``0`` means a static placement.
    needs_complete_coverage:
        Some clients eventually want *every* entry.
    needs_fairness:
        Entries represent load-bearing resources (the Napster-provider
        example of §4.5), so retrieval probabilities should be even.
    storage_is_fixed:
        Per-server storage is provisioned up front and cannot grow
        with the entry population (e.g. entries must fit in RAM, §4.1).
    """

    entry_count: int
    server_count: int
    target_answer_size: int
    update_rate: float = 0.0
    needs_complete_coverage: bool = False
    needs_fairness: bool = False
    storage_is_fixed: bool = False

    def __post_init__(self) -> None:
        if self.entry_count < 1 or self.server_count < 1:
            raise InvalidParameterError("entry_count and server_count must be >= 1")
        if self.target_answer_size < 1:
            raise InvalidParameterError("target_answer_size must be >= 1")
        if self.target_answer_size > self.entry_count:
            raise InvalidParameterError(
                "target_answer_size cannot exceed entry_count"
            )
        if self.update_rate < 0:
            raise InvalidParameterError("update_rate must be non-negative")

    @property
    def target_ratio(self) -> float:
        """The §6.4 ratio ``t/h`` driving the Fixed-vs-Hash choice."""
        return self.target_answer_size / self.entry_count

    @property
    def is_dynamic(self) -> bool:
        return self.update_rate > 0


@dataclass(frozen=True)
class SchemeRecommendation:
    """A ranked scheme suggestion with the rules that produced it."""

    name: str
    score: float
    reasons: Tuple[str, ...] = ()


def recommend(profile: WorkloadProfile) -> List[SchemeRecommendation]:
    """Rank the five schemes for ``profile`` using the paper's rules.

    The scoring is an additive encoding of the rules of thumb: each
    rule contributes points (positive or negative) to the schemes it
    speaks about, and every contribution is recorded as a reason
    string citing the section it came from.  The result is sorted
    best-first; ties break alphabetically for determinism.

    >>> static_fair = WorkloadProfile(
    ...     entry_count=100, server_count=10, target_answer_size=5,
    ...     needs_complete_coverage=True, needs_fairness=True)
    >>> recommend(static_fair)[0].name
    'round_robin'
    """
    scores: Dict[str, float] = {name: 0.0 for name in _TRAITS}
    reasons: Dict[str, List[str]] = {name: [] for name in _TRAITS}

    def credit(name: str, points: float, reason: str) -> None:
        scores[name] += points
        sign = "+" if points >= 0 else ""
        reasons[name].append(f"{sign}{points:g}: {reason}")

    t = profile.target_answer_size
    h = profile.entry_count
    n = profile.server_count

    # §4.1: partial schemes dominate full replication on storage unless
    # the key is tiny; full replication's h·n storage is the baseline
    # the whole paper argues against.
    if h > n:
        credit("full_replication", -2, "storage h·n dominates all others (§4.1)")
    if profile.storage_is_fixed:
        for name in ("fixed", "random_server"):
            credit(
                name, 2, "constant per-server storage fits fixed provisioning (§4.1)"
            )

    # §4.3 / §4.4: coverage needs.
    if profile.needs_complete_coverage:
        for name in ("full_replication", "round_robin", "hash"):
            credit(name, 2, "complete coverage guaranteed (§4.3)")
        credit("random_server", 1, "near-complete expected coverage (§4.3)")
        credit("fixed", -3, "coverage capped at x (§4.3)")
    else:
        credit("fixed", 1, "best fault tolerance when coverage is moot (§4.4)")

    # §4.2: lookup cost.
    per_server = max(1, (t * n) // max(1, h))  # entries/server at matched budget
    if t <= h // n:
        credit("hash", -1, "lookup cost >1 even for small targets (§4.2)")
    credit("round_robin", 1, "lowest lookup cost of the partial schemes (§4.2)")
    del per_server  # documented intermediate; ratio rules below use t/h directly

    # §4.5: fairness.
    if profile.needs_fairness:
        for name in ("full_replication", "round_robin"):
            credit(name, 2, "zero unfairness (§4.5)")
        if not profile.is_dynamic:
            credit("random_server", 1, "low static unfairness (§4.5)")
        else:
            credit(
                "random_server",
                -1,
                "fairness decays to ~Fixed-x under churn (§6.3, Fig 13)",
            )
        credit("fixed", -2, "returns only the fixed x-subset (§4.5)")

    # §6.3: dynamic suitability.
    if profile.is_dynamic:
        credit("round_robin", -2, "counter-host bottleneck + delete migration (§6.3)")
        credit("random_server", -1, "broadcast per update (§6.3)")
        credit("hash", 2, "pinpointed point-to-point updates (§5.5)")
        credit("fixed", 1, "selective broadcast keeps update traffic low (§5.2)")
        # §6.4 crossover: small t/h favours Fixed-x, large favours Hash-y.
        if profile.target_ratio < 1.0 / n:
            credit("fixed", 2, f"t/h={profile.target_ratio:.3f} < 1/n (§6.4)")
            credit("hash", -1, "must store every entry ≥ once regardless (§6.4)")
        else:
            credit("hash", 1, f"t/h={profile.target_ratio:.3f} ≥ 1/n (§6.4)")
    else:
        credit("random_server", 1, "static placement suits RandomServer-x (§6.3)")
        credit("round_robin", 1, "static placement suits Round-y (§6.3)")

    ranked = sorted(scores, key=lambda name: (-scores[name], name))
    return [
        SchemeRecommendation(name, scores[name], tuple(reasons[name]))
        for name in ranked
    ]
