"""Diverse-clients experiment: mixed target answer sizes (§4.3).

§4.3 motivates coverage with "a larger coverage implies a strategy can
support a more diverse group of clients with different target answer
size requirements" — e.g. mostly small-t downloaders plus a few
crawlers that want everything.  This experiment (not a numbered paper
figure) drives each scheme with a two-population client mix at a
matched storage budget and reports, per scheme and population, the
mean lookup cost and failure rate.

Expected shapes: every scheme serves the small-t majority in ~1
contact; only the complete-coverage schemes (Round-Robin, Hash) can
serve the crawlers at all, RandomServer serves them *most* of the time
(expected coverage < h), and Fixed-x fails every crawler — coverage is
exactly its cap.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Dict, Optional, Tuple

from repro.cluster.cluster import Cluster
from repro.core.entry import make_entries
from repro.experiments.parallel import make_executor
from repro.experiments.runner import ExperimentResult, average_runs_multi
from repro.strategies.fixed import FixedX
from repro.strategies.hashing import HashY
from repro.strategies.random_server import RandomServerX
from repro.strategies.round_robin import RoundRobinY


@dataclass(frozen=True)
class DiverseClientsConfig:
    entry_count: int = 100
    server_count: int = 10
    storage_budget: int = 200
    #: The majority population: small bounded targets.
    small_target_range: Tuple[int, int] = (2, 10)
    #: The minority population: wants every entry ("crawlers").
    crawler_target: int = 100
    small_lookups: int = 300
    crawler_lookups: int = 50
    runs: int = 5
    seed: int = 43


SCHEME_LABELS = ("fixed", "random_server", "round_robin", "hash")


def _build(label: str, config: DiverseClientsConfig, cluster: Cluster):
    x = max(1, config.storage_budget // config.server_count)
    y = max(1, config.storage_budget // config.entry_count)
    return {
        "fixed": lambda: FixedX(cluster, x=x),
        "random_server": lambda: RandomServerX(cluster, x=x),
        "round_robin": lambda: RoundRobinY(cluster, y=y),
        "hash": lambda: HashY(cluster, y=y),
    }[label]()


def measure_scheme(
    label: str, config: DiverseClientsConfig, seed: int
) -> Dict[str, float]:
    """One placement; both client populations issue their lookups."""
    cluster = Cluster(config.server_count, seed=seed)
    strategy = _build(label, config, cluster)
    strategy.place(make_entries(config.entry_count))

    low, high = config.small_target_range
    small_costs = 0
    small_failures = 0
    for _ in range(config.small_lookups):
        target = cluster.rng.randint(low, high)
        result = strategy.partial_lookup(target)
        small_costs += result.lookup_cost
        small_failures += 0 if result.success else 1

    crawler_costs = 0
    crawler_failures = 0
    for _ in range(config.crawler_lookups):
        result = strategy.partial_lookup(config.crawler_target)
        crawler_costs += result.lookup_cost
        crawler_failures += 0 if result.success else 1

    return {
        "small_cost": small_costs / config.small_lookups,
        "small_fail": small_failures / config.small_lookups,
        "crawler_cost": crawler_costs / config.crawler_lookups,
        "crawler_fail": crawler_failures / config.crawler_lookups,
    }


def run(
    config: DiverseClientsConfig = DiverseClientsConfig(),
    *,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """Per-scheme service quality for the two client populations."""
    result = ExperimentResult(
        name="Diverse clients: small-target majority + want-it-all crawlers",
        headers=[
            "scheme",
            "small_cost",
            "small_fail",
            "crawler_cost",
            "crawler_fail",
        ],
        meta={
            "h": config.entry_count,
            "n": config.server_count,
            "budget": config.storage_budget,
            "small_t": list(config.small_target_range),
            "crawler_t": config.crawler_target,
            "runs": config.runs,
        },
    )
    with make_executor(jobs) as executor:
        for label in SCHEME_LABELS:
            averaged = average_runs_multi(
                partial(measure_scheme, label, config),
                master_seed=config.seed,
                runs=config.runs,
                executor=executor,
            )
            _append_scheme_row(result, label, averaged)
    return result


def _append_scheme_row(result: ExperimentResult, label: str, averaged) -> None:
    result.rows.append(
        {
            "scheme": label,
            "small_cost": round(averaged["small_cost"].mean, 3),
            "small_fail": round(averaged["small_fail"].mean, 4),
            "crawler_cost": round(averaged["crawler_cost"].mean, 3),
            "crawler_fail": round(averaged["crawler_fail"].mean, 4),
        }
    )
