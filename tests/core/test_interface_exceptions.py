"""Unit tests for the service interfaces and error taxonomy."""

import pytest

from repro.core.exceptions import (
    CoverageExceededError,
    InvalidParameterError,
    LookupFailedError,
    NoOperationalServerError,
    ReproError,
    UnknownKeyError,
    UnknownStrategyError,
)
from repro.core.interface import PartialLookupService, TraditionalLookupService
from repro.core.result import LookupResult
from repro.core.entry import Entry, make_entries


class TestExceptionTaxonomy:
    def test_all_derive_from_repro_error(self):
        for exc_class in (
            InvalidParameterError,
            LookupFailedError,
            CoverageExceededError,
            NoOperationalServerError,
            UnknownKeyError,
            UnknownStrategyError,
        ):
            assert issubclass(exc_class, ReproError)

    def test_invalid_parameter_is_value_error(self):
        assert issubclass(InvalidParameterError, ValueError)

    def test_unknown_key_is_key_error(self):
        assert issubclass(UnknownKeyError, KeyError)

    def test_lookup_failed_carries_counts(self):
        error = LookupFailedError(target=10, retrieved=4)
        assert error.target == 10
        assert error.retrieved == 4
        assert "10" in str(error) and "4" in str(error)

    def test_coverage_exceeded_is_lookup_failure(self):
        assert issubclass(CoverageExceededError, LookupFailedError)

    def test_custom_message(self):
        error = LookupFailedError(5, 1, message="nope")
        assert str(error) == "nope"


class _MiniPartialService(PartialLookupService):
    """Minimal in-memory implementation to exercise interface defaults."""

    def __init__(self):
        self.data = {}

    def place(self, key, entries):
        self.data[key] = set(entries)

    def add(self, key, entry):
        self.data.setdefault(key, set()).add(entry)

    def delete(self, key, entry):
        self.data.get(key, set()).discard(entry)

    def partial_lookup(self, key, target):
        entries = tuple(sorted(self.data.get(key, set())))
        if target > 0:
            entries = entries[: max(target, 0)] if len(entries) >= target else entries
        return LookupResult(entries=entries, target=target)


class TestInterfaceDefaults:
    def test_default_lookup_uses_partial_lookup(self):
        service = _MiniPartialService()
        service.place("k", make_entries(5))
        assert service.lookup("k") == set(make_entries(5))

    def test_abstract_instantiation_rejected(self):
        with pytest.raises(TypeError):
            TraditionalLookupService()
        with pytest.raises(TypeError):
            PartialLookupService()

    def test_mini_service_semantics(self):
        service = _MiniPartialService()
        service.place("k", make_entries(3))
        service.add("k", Entry("extra"))
        service.delete("k", Entry("v1"))
        assert service.lookup("k") == {Entry("v2"), Entry("v3"), Entry("extra")}
