"""Sans-IO protocol cores shared by the simulator and the network service.

The paper's ``partial_lookup(k, t)`` protocol is a pure state machine:
a client contacts servers in some order, merges distinct entries from
each reply, stops once the target is met, and (in this reproduction)
makes bounded retry passes over unanswered servers.  None of that
depends on *how* messages move.  This package isolates the protocol
from transport, following the sans-IO pattern:

- :class:`~repro.protocol.lookup.LookupSession` — the client-side
  walk.  It consumes :mod:`events <repro.protocol.events>` (a reply
  arrived, a contact failed, a backoff elapsed) and emits
  :mod:`effects <repro.protocol.effects>` (send this request, sleep
  this long, record this trace event, complete with this result).
- :class:`~repro.protocol.server.ServerProtocol` — the server-side
  request core: idempotent delivery dedupe plus dispatch of
  lookup/update/verify messages to the installed per-key logic.
- :class:`~repro.protocol.membership.MembershipProtocol` — the
  sharded deployment's failure detector: heartbeat scheduling,
  timeout-driven alive → suspect → dead escalation, incarnation-
  numbered rejoin with quarantine, and peer-view gossip, all driven
  by :class:`~repro.protocol.events.ClockTick` /
  :class:`~repro.protocol.events.HeartbeatSeen` events with every
  clock reading injected.

Drivers pump the machines:

- the simulated path (:class:`repro.cluster.client.Client` over
  :class:`repro.cluster.network.Network`) enacts effects synchronously
  and *accounts* sleeps without enacting them;
- the asyncio path (:mod:`repro.net`) enacts the same effects over
  real sockets with real timeouts as the backoff clock, and pumps the
  membership machine from a periodic timer
  (:class:`repro.net.membership.MembershipPump`).

All randomness is injected (``rng`` parameters), so a seeded session
replays bit-for-bit regardless of the driver.
"""

from repro.protocol.effects import (
    Complete,
    Effect,
    PeerTransition,
    Reply,
    SendHeartbeat,
    SendRequest,
    Sleep,
    SpanEnd,
    SpanEvent,
    SpanStart,
)
from repro.protocol.events import (
    SLEPT,
    ClockTick,
    ContactFailed,
    Event,
    HeartbeatSeen,
    MessageReceived,
    ReplyReceived,
    Slept,
)
from repro.protocol.lookup import (
    LookupSession,
    ProtocolStateError,
    random_order,
    stride_order,
)
from repro.protocol.membership import (
    ALIVE,
    DEAD,
    PEER_STATES,
    QUARANTINED,
    ROUTABLE_STATES,
    SUSPECT,
    MembershipConfig,
    MembershipProtocol,
    PeerStatus,
)
from repro.protocol.server import ServerProtocol, answer_lookup

__all__ = [
    "ALIVE",
    "Complete",
    "ClockTick",
    "ContactFailed",
    "DEAD",
    "Effect",
    "Event",
    "HeartbeatSeen",
    "LookupSession",
    "MembershipConfig",
    "MembershipProtocol",
    "MessageReceived",
    "PEER_STATES",
    "PeerStatus",
    "PeerTransition",
    "ProtocolStateError",
    "QUARANTINED",
    "ROUTABLE_STATES",
    "Reply",
    "ReplyReceived",
    "SLEPT",
    "SUSPECT",
    "SendHeartbeat",
    "SendRequest",
    "ServerProtocol",
    "Sleep",
    "Slept",
    "SpanEnd",
    "SpanEvent",
    "SpanStart",
    "answer_lookup",
    "random_order",
    "stride_order",
]
