"""Cross-strategy contract tests: the Section 2 semantics all five share.

Every strategy, whatever its placement, must satisfy the partial
lookup service definition: placed entries are retrievable, lookups
return at least ``t`` distinct live entries (when coverage allows),
adds become retrievable, deletes become unretrievable, and failures
never produce phantom entries.
"""

import pytest

from repro.cluster.cluster import Cluster
from repro.core.entry import Entry, make_entries

STRATEGY_CASES = [
    ("full_replication", {}),
    ("fixed", {"x": 20}),
    ("random_server", {"x": 20}),
    ("round_robin", {"y": 2}),
    ("hash", {"y": 2}),
]


def _build(name, params, seed=42, n=10):
    from repro.strategies.registry import create_strategy

    return create_strategy(name, Cluster(n, seed=seed), **params)


@pytest.fixture(params=STRATEGY_CASES, ids=[c[0] for c in STRATEGY_CASES])
def placed_strategy(request):
    name, params = request.param
    strategy = _build(name, params)
    strategy.place(make_entries(100))
    return strategy


class TestPlacementContract:
    def test_lookup_returns_at_least_target(self, placed_strategy):
        target = min(10, placed_strategy.coverage())
        result = placed_strategy.partial_lookup(target)
        assert result.success
        assert len(result) >= target

    def test_lookup_entries_are_placed_entries(self, placed_strategy):
        placed = set(make_entries(100))
        result = placed_strategy.partial_lookup(10)
        assert set(result.entries) <= placed

    def test_lookup_entries_distinct(self, placed_strategy):
        result = placed_strategy.partial_lookup(15)
        ids = [e.entry_id for e in result.entries]
        assert len(ids) == len(set(ids))

    def test_repeated_lookups_all_succeed(self, placed_strategy):
        for _ in range(20):
            assert placed_strategy.partial_lookup(5).success

    def test_coverage_bounded_by_population(self, placed_strategy):
        assert 1 <= placed_strategy.coverage() <= 100

    def test_storage_at_least_coverage(self, placed_strategy):
        assert placed_strategy.storage_cost() >= placed_strategy.coverage()

    def test_full_lookup_equals_coverage(self, placed_strategy):
        assert len(placed_strategy.lookup_all()) == placed_strategy.coverage()

    def test_replace_supersedes(self, placed_strategy):
        placed_strategy.place(make_entries(30, prefix="w"))
        retrievable = placed_strategy.lookup_all()
        assert retrievable <= set(make_entries(30, prefix="w"))
        assert not retrievable & set(make_entries(100))


class TestUpdateContract:
    def test_added_entry_retrievable(self, placed_strategy):
        placed_strategy.add(Entry("fresh"))
        # Added entries must appear in the full coverage (they may not
        # show in every bounded lookup, e.g. RandomServer eviction
        # keeps them with probability < 1 per server, but full
        # replication/fixed/round/hash must all store them somewhere;
        # random_server may legitimately drop it only when all servers
        # reject the reservoir flip, which is astronomically unlikely
        # at x=20, h=101 per server... but not impossible, so we check
        # the weaker always-true property below for it.)
        if placed_strategy.name == "random_server":
            assert placed_strategy.coverage() >= 1
        elif placed_strategy.name == "fixed":
            # The shared store is full (x entries), so the add is
            # legitimately ignored; nothing to assert beyond safety.
            assert placed_strategy.coverage() == 20
        else:
            assert Entry("fresh") in placed_strategy.lookup_all()

    def test_deleted_entry_not_retrievable(self, placed_strategy):
        victim = next(iter(placed_strategy.lookup_all()))
        placed_strategy.delete(victim)
        assert victim not in placed_strategy.lookup_all()

    def test_delete_then_lookup_still_succeeds_for_small_targets(
        self, placed_strategy
    ):
        victim = next(iter(placed_strategy.lookup_all()))
        placed_strategy.delete(victim)
        assert placed_strategy.partial_lookup(5).success

    def test_updates_report_messages(self, placed_strategy):
        victim = next(iter(placed_strategy.lookup_all()))
        result = placed_strategy.delete(victim)
        assert result.messages >= 1


class TestFailureContract:
    def test_lookup_survives_one_failure(self, placed_strategy):
        placed_strategy.cluster.fail(0)
        result = placed_strategy.partial_lookup(5)
        assert result.success
        assert 0 not in result.servers_contacted

    def test_no_entries_from_failed_servers(self, placed_strategy):
        placed_strategy.cluster.fail_many(range(5))
        result = placed_strategy.partial_lookup(3)
        assert all(sid >= 5 for sid in result.servers_contacted)

    def test_recovery_restores_participation(self, placed_strategy):
        placed_strategy.cluster.fail_many(range(9))
        assert placed_strategy.partial_lookup(1).servers_contacted == (9,)
        placed_strategy.cluster.recover_all()
        seen = set()
        for _ in range(50):
            seen.update(placed_strategy.partial_lookup(1).servers_contacted)
        assert len(seen) > 1


class TestDeterminism:
    @pytest.mark.parametrize("name,params", STRATEGY_CASES, ids=[c[0] for c in STRATEGY_CASES])
    def test_seeded_runs_identical(self, name, params):
        outcomes = []
        for _ in range(2):
            strategy = _build(name, params, seed=7)
            strategy.place(make_entries(50))
            lookups = [
                tuple(e.entry_id for e in strategy.partial_lookup(5).entries)
                for _ in range(10)
            ]
            outcomes.append((strategy.placement(), lookups))
        assert outcomes[0] == outcomes[1]
