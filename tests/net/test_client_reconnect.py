"""AsyncLookupClient reconnect-after-timeout behaviour.

The wire protocol has no request ids — correctness after a timeout
rests entirely on the client abandoning the old stream.  These tests
pin that down against a hostile in-process server:

- a reply that arrives *after* the client timed out is never matched
  to the next request (the next request runs on a fresh connection,
  and the stale connection is gone);
- enacted backoff sleeps follow the :class:`RetryPolicy` schedule and
  stop when the remaining budget is exhausted.
"""

import asyncio
import random

import pytest

from repro.cluster.client import RetryPolicy
from repro.cluster.messages import LookupRequest
from repro.net.client import AsyncLookupClient
from repro.net.codec import read_frame, write_frame
from repro.protocol.events import ContactFailed, ReplyReceived


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=30))


#: The genuine sleep, captured before any test monkeypatches
#: ``asyncio.sleep`` to observe the client's backoff schedule — the
#: hostile servers below must still be able to stall for real.
REAL_SLEEP = asyncio.sleep


class SlowThenHonestServer:
    """First request: reply late (past the client timeout), tagged so a
    mismatched delivery is detectable.  Every later request: reply
    immediately, tagged with its own sequence number."""

    def __init__(self, late_by=0.6):
        self.late_by = late_by
        self.request_seq = 0
        self.stale_write_failed = False
        self._server = None

    async def handle(self, reader, writer):
        try:
            while True:
                envelope = await read_frame(reader)
                if envelope is None:
                    break
                self.request_seq += 1
                seq = self.request_seq
                if seq == 1:
                    await REAL_SLEEP(self.late_by)
                try:
                    await write_frame(writer, {"ok": True, "value": f"reply-{seq}"})
                except (ConnectionError, OSError):
                    # The client hung up — the stale reply went nowhere.
                    self.stale_write_failed = True
                    break
        except (ConnectionError, OSError):
            self.stale_write_failed = True
        finally:
            writer.close()

    async def start(self):
        self._server = await asyncio.start_server(self.handle, "127.0.0.1", 0)
        return self._server.sockets[0].getsockname()[:2]

    async def stop(self):
        self._server.close()
        await self._server.wait_closed()


class TestStaleReplies:
    def test_late_reply_never_matches_next_request(self):
        async def scenario():
            server = SlowThenHonestServer(late_by=0.6)
            host, port = await server.start()
            client = AsyncLookupClient(host, port, timeout=0.2)
            try:
                first = await client.contact_server(3, "hash", LookupRequest(2))
                assert isinstance(first, ContactFailed)
                assert first.server_id == 3
                assert first.dropped  # a timeout is a lost message
                # The next contact must see *its own* reply, not the
                # first request's late one.
                second = await client.contact_server(4, "hash", LookupRequest(2))
                assert isinstance(second, ReplyReceived)
                assert second.server_id == 4
                # "reply-2" proves the second request was answered by
                # its own reply; the late "reply-1" went to the closed
                # stream, never to this request.
                assert second.entries == "reply-2"
            finally:
                await client.close()
                await server.stop()

        run(scenario())

    def test_timeout_reconnect_uses_fresh_connection(self):
        async def scenario():
            server = SlowThenHonestServer(late_by=0.6)
            host, port = await server.start()
            client = AsyncLookupClient(host, port, timeout=0.2)
            try:
                await client.contact_server(0, "hash", LookupRequest(1))
                writer_after_timeout = client._writer
                assert writer_after_timeout is not None
                third = await client.contact_server(1, "hash", LookupRequest(1))
                assert isinstance(third, ReplyReceived)
                # Same (fresh) connection serves subsequent requests.
                assert client._writer is writer_after_timeout
            finally:
                await client.close()
                await server.stop()

        run(scenario())


class AlwaysLateServer:
    """Every reply is slower than the client timeout: the lookup can
    only end by exhausting its retry schedule."""

    def __init__(self, late_by=0.5):
        self.late_by = late_by
        self._server = None

    async def handle(self, reader, writer):
        try:
            while True:
                envelope = await read_frame(reader)
                if envelope is None:
                    break
                if envelope.get("op") == "info":
                    await write_frame(writer, {"ok": True, "value": INFO})
                    continue
                await REAL_SLEEP(self.late_by)
                await write_frame(writer, {"ok": True, "value": []})
        except (ConnectionError, OSError):
            pass
        finally:
            writer.close()

    async def start(self):
        self._server = await asyncio.start_server(self.handle, "127.0.0.1", 0)
        return self._server.sockets[0].getsockname()[:2]

    async def stop(self):
        self._server.close()
        await self._server.wait_closed()


INFO = {
    "servers": 2,
    "entries": 4,
    "seed": 0,
    "schemes": {
        "hash": {
            "params": {"y": 2},
            "profile": {"order": "random", "max_servers": None},
        }
    },
}


class TestBackoffBudget:
    def test_sleeps_follow_policy_and_respect_budget(self, monkeypatch):
        # A budget below the first delay: the session must give up
        # without sleeping at all, despite max_attempts allowing more.
        policy = RetryPolicy(
            max_attempts=5,
            base_backoff=2.0,
            backoff_multiplier=2.0,
            backoff_budget=1.0,
            jitter=0.0,
        )
        slept = []

        async def fake_sleep(delay):
            slept.append(delay)

        import repro.net.client as client_module

        monkeypatch.setattr(client_module.asyncio, "sleep", fake_sleep)

        async def scenario():
            server = AlwaysLateServer(late_by=0.5)
            host, port = await server.start()
            client = AsyncLookupClient(
                host, port, rng=random.Random(3), timeout=0.1, retry_policy=policy
            )
            try:
                result = await client.lookup("hash", 3)
                assert not result.success
                assert result.retries == 0
                assert slept == []
                assert sum(slept) <= policy.backoff_budget
            finally:
                await client.close()
                await server.stop()

        run(scenario())

    def test_backoff_schedule_is_enacted_within_budget(self, monkeypatch):
        policy = RetryPolicy(
            max_attempts=3,
            base_backoff=0.25,
            backoff_multiplier=2.0,
            backoff_budget=10.0,
            jitter=0.0,
        )
        slept = []

        async def fake_sleep(delay):
            slept.append(delay)

        import repro.net.client as client_module

        monkeypatch.setattr(client_module.asyncio, "sleep", fake_sleep)

        async def scenario():
            server = AlwaysLateServer(late_by=0.5)
            host, port = await server.start()
            client = AsyncLookupClient(
                host, port, rng=random.Random(3), timeout=0.1, retry_policy=policy
            )
            try:
                result = await client.lookup("hash", 3)
                assert not result.success
                # Two retry passes after the first: delays 0.25, 0.5.
                assert result.retries == 2
                assert slept == [0.25, 0.5]
                assert sum(slept) <= policy.backoff_budget
                assert result.backoff == sum(slept)
            finally:
                await client.close()
                await server.stop()

        run(scenario())


class TestRemovedRequestShim:
    def test_request_raises_with_migration_hint(self):
        client = AsyncLookupClient("127.0.0.1", 1)
        with pytest.raises(AttributeError, match="_request"):
            client.request

    def test_other_missing_attributes_raise_plainly(self):
        client = AsyncLookupClient("127.0.0.1", 1)
        with pytest.raises(AttributeError, match="no attribute"):
            client.no_such_method
