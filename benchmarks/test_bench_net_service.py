"""Net-service throughput: concurrent partial lookups over real sockets.

Boots one in-process :class:`~repro.net.service.LookupService` on an
ephemeral loopback port and measures sustained lookups/second with a
small fleet of concurrent async clients — the socket path's end-to-end
cost (framing, JSON codec, event-loop scheduling, protocol pump) on
top of the simulator work the other benches already measure.  Records
``net_lookups_per_sec`` into the ``--bench-json`` artifact.
"""

import asyncio
import random
import time

from repro.net.client import AsyncLookupClient
from repro.net.service import LookupService, ServiceConfig

CLIENTS = 4
LOOKUPS_PER_CLIENT = 75
TARGET = 8
SCHEME = "round_robin"


async def _drive(host, port, seed):
    async with AsyncLookupClient(host, port, rng=random.Random(seed)) as client:
        await client.info()  # warm the topology cache before timing
        for _ in range(LOOKUPS_PER_CLIENT):
            result = await client.lookup(SCHEME, TARGET)
            assert result.success
    return LOOKUPS_PER_CLIENT


async def _throughput():
    service = LookupService(ServiceConfig(server_count=16, entry_count=40, seed=3))
    host, port = await service.start(port=0)
    try:
        started = time.perf_counter()
        counts = await asyncio.gather(
            *(_drive(host, port, seed) for seed in range(CLIENTS))
        )
        elapsed = time.perf_counter() - started
    finally:
        await service.stop()
    return sum(counts) / elapsed


def test_bench_net_service_throughput(bench_json_record):
    lookups_per_sec = asyncio.run(asyncio.wait_for(_throughput(), timeout=120))
    print(
        f"\nnet service: {CLIENTS} clients x {LOOKUPS_PER_CLIENT} lookups "
        f"(target {TARGET}, {SCHEME}) -> {lookups_per_sec:,.0f} lookups/s"
    )
    bench_json_record("net_lookups_per_sec", round(lookups_per_sec, 1))
    # Sanity floor, far below any plausible loopback result: catches a
    # pathological regression (e.g. an accidental per-lookup reconnect)
    # without being machine-sensitive.
    assert lookups_per_sec > 50
