"""Service-level crash recovery: a --store log service becomes its former self."""

import random

import pytest

from repro.cluster.messages import AddRequest, DeleteRequest, LookupRequest
from repro.core.entry import Entry
from repro.core.exceptions import InvalidParameterError
from repro.net.codec import encode_message
from repro.net.service import LookupService, ServiceConfig


def _config(tmp_path, **overrides):
    base = dict(
        server_count=8,
        entry_count=12,
        seed=3,
        store="log",
        data_dir=str(tmp_path),
    )
    base.update(overrides)
    return ServiceConfig(**base)


def _send(key, message, server=0):
    return {
        "op": "send",
        "server": server,
        "key": key,
        "message": encode_message(message),
    }


def _masks(service, key):
    return [server.store(key).mask for server in service.cluster.servers]


def _mutate(service):
    assert service.handle_envelope(
        _send("full_replication", AddRequest(entry=Entry("w1")))
    )["ok"]
    assert service.handle_envelope(
        _send("full_replication", DeleteRequest(entry=Entry("v2")))
    )["ok"]
    assert service.handle_envelope(_send("hash", AddRequest(entry=Entry("w2"))))["ok"]


class TestConfigValidation:
    def test_log_store_requires_a_data_dir(self):
        with pytest.raises(InvalidParameterError):
            ServiceConfig(store="log")

    def test_unknown_store_is_rejected(self):
        with pytest.raises(InvalidParameterError):
            ServiceConfig(store="clay-tablet")

    def test_memory_store_never_opens_a_journal(self):
        service = LookupService(ServiceConfig(server_count=4, entry_count=6))
        assert service.journal is None
        assert not service.recovered


class TestCrashRecovery:
    def test_recovery_rebuilds_every_store_bit_identically(self, tmp_path):
        crashed = LookupService(_config(tmp_path))
        _mutate(crashed)
        crashed.journal.close()  # the process "dies"; no shutdown logic runs

        reborn = LookupService(_config(tmp_path))
        assert reborn.recovered
        for key in crashed.strategies:
            assert _masks(reborn, key) == _masks(crashed, key)
            for sid in range(crashed.cluster.size):
                a = crashed.cluster.server(sid).store(key)
                b = reborn.cluster.server(sid).store(key)
                assert b.as_list() == a.as_list()
                assert b.indices() == a.indices()

    def test_recovered_rng_resumes_the_exact_stream(self, tmp_path):
        crashed = LookupService(_config(tmp_path))
        _mutate(crashed)
        expected = crashed.cluster.rng.getstate()
        crashed.journal.close()
        reborn = LookupService(_config(tmp_path))
        assert reborn.cluster.rng.getstate() == expected

    def test_full_store_replies_are_identical(self, tmp_path):
        crashed = LookupService(_config(tmp_path))
        _mutate(crashed)
        control = {
            key: [
                crashed.handle_envelope(_send(key, LookupRequest(0), server=sid))
                for sid in range(crashed.cluster.size)
            ]
            for key in sorted(crashed.strategies)
        }
        crashed.journal.close()
        reborn = LookupService(_config(tmp_path))
        for key, replies in control.items():
            for sid, expected in enumerate(replies):
                got = reborn.handle_envelope(_send(key, LookupRequest(0), server=sid))
                assert got == expected

    def test_sampled_lookup_after_mutation_is_byte_identical(self, tmp_path):
        # The RNG is journaled at every mutation sync point, so a
        # sampled (RNG-consuming) lookup right after the last mutation
        # answers identically on the recovered twin.
        crashed = LookupService(_config(tmp_path))
        _mutate(crashed)
        crashed.journal.close()
        reborn = LookupService(_config(tmp_path))
        probe = _send("random_server", LookupRequest(5), server=2)
        assert reborn.handle_envelope(probe) == crashed.handle_envelope(probe)

    def test_hash_params_survive_recovery(self, tmp_path):
        crashed = LookupService(_config(tmp_path))
        params = crashed.strategies["hash"].params()
        _mutate(crashed)
        crashed.journal.close()
        reborn = LookupService(_config(tmp_path))
        assert reborn.strategies["hash"].params() == params

    def test_fresh_boot_is_not_recovered(self, tmp_path):
        service = LookupService(_config(tmp_path))
        assert not service.recovered
        assert service.recovered_epoch == 0

    def test_recovery_adopts_journaled_epochs(self, tmp_path):
        crashed = LookupService(_config(tmp_path))
        _mutate(crashed)
        crashed.journal.record_epoch("full_replication", 7)
        crashed.journal.record_epoch("hash", 4)
        crashed.journal.close()
        reborn = LookupService(_config(tmp_path))
        assert reborn.recovered_epoch == 7
        assert reborn.shared_epoch("full_replication") == 7
        assert reborn.shared_epoch("hash") == 4


class TestCompactionAndObservability:
    def test_recovery_after_compaction_is_identical(self, tmp_path):
        crashed = LookupService(_config(tmp_path))
        _mutate(crashed)
        crashed.compact_journal()
        assert crashed.handle_envelope(
            _send("full_replication", AddRequest(entry=Entry("w3")))
        )["ok"]
        crashed.journal.close()
        reborn = LookupService(_config(tmp_path))
        assert reborn.recovered
        for key in crashed.strategies:
            assert _masks(reborn, key) == _masks(crashed, key)

    def test_auto_compaction_triggers_from_the_threshold(self, tmp_path):
        service = LookupService(_config(tmp_path, log_compact_records=10))
        for n in range(8):
            service.handle_envelope(
                _send("full_replication", AddRequest(entry=Entry(f"w{n}")))
            )
        assert service.journal.compactions >= 1

    def test_capabilities_surface_the_backend(self, tmp_path):
        service = LookupService(_config(tmp_path))
        storage = service.capabilities()["storage"]
        assert storage["kind"] == "log"
        assert storage["data_dir"] == str(tmp_path)
        assert storage["recovered"] is False
        assert storage["log_records"] > 0  # boot records landed

    def test_memory_capabilities_say_memory(self):
        service = LookupService(ServiceConfig(server_count=4, entry_count=6))
        storage = service.capabilities()["storage"]
        assert storage == {"kind": "memory", "recovered": False}

    def test_metrics_mirror_the_journal(self, tmp_path):
        crashed = LookupService(_config(tmp_path))
        _mutate(crashed)
        crashed.journal.close()
        reborn = LookupService(_config(tmp_path))
        reborn.capabilities()  # an info probe publishes the gauges
        snapshot = reborn.metrics.snapshot()
        assert snapshot["storage_recovered"] == 1
        assert snapshot["storage_log_records"] > 0
        assert snapshot["storage_log_bytes"] > 0

    def test_read_only_service_recovers_but_never_writes(self, tmp_path):
        writer = LookupService(_config(tmp_path))
        _mutate(writer)
        writer.journal.close()
        reader = LookupService(_config(tmp_path, store_read_only=True))
        assert reader.recovered
        assert reader.journal.read_only
        before = sorted(p.name for p in tmp_path.iterdir())
        reader.handle_envelope(
            _send("full_replication", AddRequest(entry=Entry("w9")))
        )
        assert sorted(p.name for p in tmp_path.iterdir()) == before
