"""Binary wire codec: property round-trips, hostile frames, negotiation.

The binary codec must be a drop-in peer of the JSON codec: every value
and every registered message type round-trips identically through
both, and structurally hostile bytes (truncation, garbage tags, bogus
lengths) surface as :class:`FrameError`/:class:`WireError` — never as
a stray exception or a silently wrong value.  Property tests use
hypothesis; deterministic regressions (the empty-dict write-back, the
fast-path prefixes) are pinned explicitly.
"""

import dataclasses
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.messages import LookupRequest
from repro.core.entry import Entry, make_entries
from repro.net.codec import (
    BINARY_MAGIC,
    BINARY_OPS,
    BINARY_VERSION,
    CODEC_BINARY,
    CODEC_JSON,
    MAX_FRAME,
    MESSAGE_TYPES,
    SUPPORTED_CODECS,
    FrameError,
    Prepacked,
    WireError,
    decode_envelope_binary,
    decode_frame_body,
    decode_message,
    decode_value,
    encode_envelope,
    encode_envelope_as,
    encode_envelope_binary,
    encode_envelope_fragments,
    encode_frame_fragments,
    encode_message,
    encode_value,
    hello_envelope,
    negotiate_codec,
    pack_send_envelope,
    pack_send_reply,
    pack_value_bytes,
)

# --------------------------------------------------------------------------
# Strategies
# --------------------------------------------------------------------------

#: Entries in the dense ``v<i>`` universe (ship as one varint) and
#: outside it (ship as ordinary tagged entries), with and without
#: payloads — the codec must not care which is which.
dense_entries = st.integers(min_value=1, max_value=5000).map(
    lambda i: Entry(f"v{i}")
)
odd_entries = st.builds(
    Entry,
    st.sampled_from(["v01", "v1x", "w2", "V3", "note", "v0"]),
    st.one_of(st.none(), st.text(max_size=12), st.integers(-99, 99)),
)
entries = dense_entries | odd_entries

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**70), max_value=2**70),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=40),
)

#: ``"!"`` is the JSON codec's reserved tag key; both codecs reject it
#: at encode time, so it is excluded from *valid*-value strategies.
dict_keys = st.text(max_size=12).filter(lambda k: k != "!")

wire_values = st.recursive(
    scalars | entries,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.lists(children, max_size=4).map(tuple),
        st.dictionaries(dict_keys, children, max_size=4),
    ),
    max_leaves=20,
)

#: Field-type → strategy for building every registered message class
#: generically.  ``test_every_message_type_is_generated`` fails loudly
#: if a new message adds a field type with no strategy, keeping the
#: property sweep complete by construction.
FIELD_STRATEGIES = {
    "Entry": entries,
    "int": st.integers(min_value=-(2**40), max_value=2**40),
    "str": st.text(max_size=16),
    "tuple[str, ...]": st.lists(st.text(max_size=8), max_size=4).map(tuple),
    "tuple[Entry, ...]": st.lists(entries, max_size=5).map(tuple),
    "tuple[tuple[str, str, int], ...]": st.lists(
        st.tuples(
            st.text(max_size=8), st.text(max_size=8), st.integers(0, 999)
        ),
        max_size=3,
    ).map(tuple),
}


def _message_strategy(cls):
    return st.builds(
        cls,
        **{
            field.name: FIELD_STRATEGIES[field.type]
            for field in dataclasses.fields(cls)
        },
    )


messages = st.one_of(
    [_message_strategy(cls) for _, cls in sorted(MESSAGE_TYPES.items())]
)


def binary_roundtrip(value):
    """One value through the binary envelope path and back."""
    framed = encode_envelope_binary({"v": value})
    return decode_envelope_binary(framed[4:])["v"]


def json_roundtrip(value):
    """One value through the JSON envelope path (tagged) and back."""
    framed = encode_envelope({"v": encode_value(value)})
    return decode_value(decode_frame_body(framed[4:])["v"])


# --------------------------------------------------------------------------
# Round-trip properties
# --------------------------------------------------------------------------


class TestValueProperties:
    @given(value=wire_values)
    def test_binary_roundtrip(self, value):
        assert binary_roundtrip(value) == value

    @given(value=wire_values)
    def test_codecs_agree(self, value):
        assert binary_roundtrip(value) == json_roundtrip(value)

    @given(value=wire_values)
    def test_list_tuple_distinction(self, value):
        got = binary_roundtrip([value, (value,)])
        assert isinstance(got, list)
        assert isinstance(got[1], tuple)

    @given(entry=entries)
    def test_entry_payload_survives(self, entry):
        # Entry equality ignores payloads, so assert it explicitly.
        for got in (binary_roundtrip(entry), json_roundtrip(entry)):
            assert got == entry and got.payload == entry.payload

    def test_dense_entry_reply_shapes(self):
        # The dominant wire shape: a lookup reply's list (and the
        # simulator's tuple) of payload-free dense entries.
        reply = list(make_entries(12))
        assert binary_roundtrip(reply) == reply
        assert isinstance(binary_roundtrip(reply), list)
        assert binary_roundtrip(tuple(reply)) == tuple(reply)
        assert isinstance(binary_roundtrip(tuple(reply)), tuple)
        # Mixed sequences fall back to the generic form, same answer.
        mixed = reply + [Entry("v2", payload="copy")]
        assert binary_roundtrip(mixed) == mixed

    def test_empty_containers(self):
        # Regression: a zero-entry dict must still advance the read
        # cursor (the decoder's position write-back ran only inside
        # the pair loop once).
        for value in ({}, [], (), {"params": {}}, {"a": {}, "b": 1}, [{}, {}]):
            assert binary_roundtrip(value) == value

    def test_unencodable_rejected(self):
        for bad in (object(), {1: "non-string key"}, {"!": "reserved"}):
            with pytest.raises(WireError):
                encode_envelope_binary({"v": bad})

    def test_prepacked_splices_verbatim(self):
        value = {"deep": [Entry("v3"), (1, "two")]}
        packed = Prepacked(pack_value_bytes(value))
        assert binary_roundtrip([packed, packed]) == [value, value]
        with pytest.raises(WireError):
            encode_value(packed)  # JSON side must reject it


class TestMessageProperties:
    def test_every_message_type_is_generated(self):
        # Completeness: the strategy map must cover every field of
        # every registered message class, or the sweep is partial.
        for name, cls in MESSAGE_TYPES.items():
            for field in dataclasses.fields(cls):
                assert field.type in FIELD_STRATEGIES, (name, field.name)

    @given(message=messages)
    def test_binary_roundtrip(self, message):
        got = binary_roundtrip(message)
        assert got == message and type(got) is type(message)

    @given(message=messages)
    def test_codecs_agree(self, message):
        # The JSON path additionally crosses a real json.dumps/loads
        # so both serializations are exercised end to end.
        wire = json.loads(json.dumps(encode_message(message)))
        assert decode_message(wire) == message
        assert binary_roundtrip(message) == decode_message(wire)

    def test_unknown_message_index_is_wire_error(self):
        # A well-formed frame naming a message this side doesn't know
        # is schema drift (WireError → bad-request), not stream rot.
        # Body: {"v": <message #16383>} — dict of 1, key "v", _T_MSG
        # tag (0x0B) with varint index 16383 (0xFF 0x7F).
        body = bytes(
            (BINARY_MAGIC, BINARY_VERSION, 0, 0x08, 1, 1, ord("v"), 0x0B, 0xFF, 0x7F)
        )
        with pytest.raises(WireError):
            decode_envelope_binary(body)


# --------------------------------------------------------------------------
# Envelopes and hostile frames
# --------------------------------------------------------------------------


class TestBinaryEnvelopes:
    @given(
        op=st.sampled_from([name for name in BINARY_OPS if name]),
        body=st.dictionaries(
            dict_keys.filter(lambda k: k != "op"), wire_values, max_size=3
        ),
    )
    def test_envelope_roundtrip(self, op, body):
        envelope = {"op": op, **body}
        framed = encode_envelope_binary(envelope)
        assert framed[4] == BINARY_MAGIC
        assert framed[5] == BINARY_VERSION
        assert decode_frame_body(framed[4:]) == envelope

    def test_unregistered_op_rides_in_body(self):
        # Ops outside the opcode table still work (opcode 0, op key
        # stays in the payload) — forward compatibility for new ops.
        envelope = {"op": "someday", "x": 1}
        framed = encode_envelope_binary(envelope)
        assert framed[6] == 0
        assert decode_envelope_binary(framed[4:]) == envelope

    @given(value=wire_values)
    @settings(max_examples=40)
    def test_truncation_always_raises(self, value):
        framed = encode_envelope_binary({"v": value})
        body = framed[4:]
        for cut in range(len(body)):
            with pytest.raises((FrameError, WireError)):
                decode_envelope_binary(body[:cut])

    @given(junk=st.binary(max_size=120))
    def test_garbage_never_escapes(self, junk):
        # Arbitrary bytes after a valid header must decode to a dict
        # or raise the codec's own errors — nothing else.
        try:
            got = decode_envelope_binary(
                bytes((BINARY_MAGIC, BINARY_VERSION, 0)) + junk
            )
        except (FrameError, WireError):
            return
        assert isinstance(got, dict)

    def test_bad_header_rejected(self):
        good = encode_envelope_binary({"op": "ping"})[4:]
        with pytest.raises(FrameError):  # wrong magic
            decode_envelope_binary(b"\x00" + good[1:])
        with pytest.raises(FrameError):  # future version
            decode_envelope_binary(good[:1] + bytes((BINARY_VERSION + 1,)) + good[2:])
        with pytest.raises(FrameError):  # unknown opcode
            decode_envelope_binary(good[:2] + bytes((0xEE,)) + good[3:])
        with pytest.raises(FrameError):  # trailing bytes
            decode_envelope_binary(good + b"\x00")
        with pytest.raises(FrameError):  # non-dict envelope body
            decode_envelope_binary(bytes((BINARY_MAGIC, BINARY_VERSION, 0, 0x00)))

    def test_oversized_frame_rejected(self):
        with pytest.raises(WireError):
            encode_envelope_binary({"v": "x" * (MAX_FRAME + 1)})

    def test_frame_sniffing(self):
        binary = encode_envelope_as({"op": "ping"}, CODEC_BINARY)[4:]
        as_json = encode_envelope_as({"op": "ping"}, CODEC_JSON)[4:]
        assert decode_frame_body(binary) == {"op": "ping"}
        assert decode_frame_body(as_json) == {"op": "ping"}
        assert as_json[:1] == b"{"
        with pytest.raises(WireError):
            encode_envelope_as({"op": "ping"}, "zstd")


class TestFastPathEquivalence:
    """The prepacked send/reply shortcuts must be byte-level dialects
    of the generic encoding: whatever they emit, the generic decoder
    must read back as the exact envelope, fast path or not."""

    @given(
        request_id=st.integers(min_value=0, max_value=2**31),
        server=st.one_of(st.integers(-5, 2**20), st.text(max_size=8)),
        key=st.text(max_size=16),
        message=messages,
    )
    def test_send_envelope(self, request_id, server, key, message):
        plain = {
            "op": "send",
            "id": request_id,
            "server": server,
            "key": key,
            "message": message,
        }
        packed = pack_send_envelope(request_id, server, key, message)
        framed = encode_envelope_binary({"op": "batch", "requests": [packed]})
        generic = encode_envelope_binary({"op": "batch", "requests": [plain]})
        assert decode_envelope_binary(framed[4:])["requests"][0] == plain
        assert decode_envelope_binary(generic[4:])["requests"][0] == plain

    @given(request_id=st.integers(min_value=0, max_value=2**31), value=wire_values)
    def test_send_reply(self, request_id, value):
        plain = {"ok": True, "value": value, "id": request_id}
        packed = pack_send_reply(request_id, value)
        framed = encode_envelope_binary({"replies": [packed]})
        assert decode_envelope_binary(framed[4:])["replies"][0] == plain


# --------------------------------------------------------------------------
# Negotiation
# --------------------------------------------------------------------------


class TestNegotiation:
    def test_supported_codecs(self):
        assert CODEC_JSON in SUPPORTED_CODECS  # JSON is mandatory
        assert CODEC_BINARY in SUPPORTED_CODECS

    @pytest.mark.parametrize(
        ("offered", "want"),
        [
            (["binary", "json"], "binary"),
            (["json", "binary"], "json"),  # the peer's preference wins
            (["binary"], "binary"),
            (["json"], "json"),
            (["zstd", "binary"], "binary"),
            (["zstd"], "json"),  # all-unknown offer → mandatory JSON
            ([], "json"),
            (None, "json"),
            ("binary", "json"),  # a bare string is not an offer list
            ([42, None], "json"),
        ],
    )
    def test_negotiate_codec(self, offered, want):
        assert negotiate_codec(offered) == want

    def test_hello_envelope_shape(self):
        hello = hello_envelope()
        assert hello["op"] == "hello"
        assert hello["codecs"] == list(SUPPORTED_CODECS)
        # The hello must itself be expressible as JSON: it is the one
        # envelope that always goes out in the mandatory codec.
        assert json.dumps(hello)


def test_lookup_request_binary_is_compact():
    # The point of the codec: a lookup send is an order of magnitude
    # smaller than its JSON form.
    envelope = {
        "op": "send",
        "id": 12,
        "server": 3,
        "key": "round_robin",
        "message": LookupRequest(8),
    }
    binary = encode_envelope_binary(envelope)
    as_json = encode_envelope({**envelope, "message": encode_message(LookupRequest(8))})
    assert len(binary) < len(as_json) / 2


# --------------------------------------------------------------------------
# The zero-copy fragment encoder
# --------------------------------------------------------------------------


def _joined(fragments):
    return b"".join(bytes(buffer) for buffer in fragments)


class TestFragmentEncoder:
    """`encode_envelope_fragments` must be `encode_envelope_binary`
    with different chunking: same bytes, always, for every envelope —
    that identity is what lets the service swap the flat encoder for
    the scatter-gather one without a wire version bump."""

    @given(value=wire_values)
    @settings(deadline=None)
    def test_fragment_join_matches_flat_encoding(self, value):
        envelope = {"op": "send", "v": value}
        assert _joined(encode_envelope_fragments(envelope)) == encode_envelope_binary(
            envelope
        )

    @given(
        request_ids=st.lists(
            st.integers(min_value=0, max_value=2**20), min_size=1, max_size=6
        ),
        value=wire_values,
    )
    @settings(deadline=None)
    def test_prepacked_splices_are_byte_identical(self, request_ids, value):
        requests = [
            pack_send_envelope(rid, rid % 7, "hash", LookupRequest(0))
            for rid in request_ids
        ]
        replies = [pack_send_reply(rid, value) for rid in request_ids]
        envelope = {
            "op": "batch",
            "requests": requests,
            "replies": replies,
            "extra": value,
        }
        flat = _joined(encode_envelope_fragments(envelope))
        assert flat == encode_envelope_binary(envelope)
        assert decode_envelope_binary(flat[4:])["op"] == "batch"

    def test_large_splices_earn_their_own_fragments(self):
        reply = pack_send_reply(1, tuple(Entry(f"v{i}") for i in range(1, 400)))
        envelope = {"op": "batch", "replies": [reply, reply]}
        fragments = encode_envelope_fragments(envelope)
        # length prefix + scratch + two by-reference splices at least
        assert len(fragments) >= 4
        assert any(isinstance(buffer, memoryview) for buffer in fragments)
        assert _joined(fragments) == encode_envelope_binary(envelope)

    def test_small_splices_fold_into_scratch(self):
        tiny = pack_send_reply(2, ())
        envelope = {"op": "batch", "replies": [tiny] * 8}
        fragments = encode_envelope_fragments(envelope)
        assert len(fragments) == 2  # length prefix + one sealed scratch
        assert _joined(fragments) == encode_envelope_binary(envelope)

    def test_json_frame_fragments_are_the_legacy_bytes(self):
        envelope = {"op": "ping"}
        assert encode_frame_fragments(envelope, CODEC_JSON) == [
            encode_envelope_as(envelope, CODEC_JSON)
        ]
