"""Pure tests for the key→shard placement core (no sockets, no clocks)."""

import pytest

from repro.core.entry import make_entries
from repro.core.exceptions import InvalidParameterError
from repro.net.sharding import ShardMap, partial_replica, ring_position


class TestShardMap:
    def test_home_is_deterministic_and_order_insensitive(self):
        a = ShardMap(["s0", "s1", "s2", "s3"])
        b = ShardMap(["s3", "s1", "s0", "s2"])
        for key in ["fixed", "hash", "round_robin"]:
            assert a.home(key, 2) == b.home(key, 2)
            assert a.home(key, 2) == a.home(key, 2)

    def test_home_returns_distinct_shards_primary_first(self):
        shard_map = ShardMap([f"s{i}" for i in range(5)])
        home = shard_map.home("round_robin", 3)
        assert len(home) == 3
        assert len(set(home)) == 3
        assert home[0] == shard_map.home("round_robin", 1)[0]
        # Growing the replica count only appends, never reorders —
        # the probe ranking is a total order over shards.
        assert shard_map.home("round_robin", 2) == home[:2]

    def test_replicas_clamped_to_shard_count(self):
        shard_map = ShardMap(["s0", "s1"])
        assert len(shard_map.home("k", 5)) == 2

    def test_keys_spread_over_shards(self):
        # The point of the splitmix finalizer: similar shard names
        # must not collapse onto one ring arc.  With 50 keys on 5
        # shards every shard should be *somebody's* primary.
        shard_map = ShardMap([f"s{i}" for i in range(5)])
        primaries = {shard_map.home(f"key-{i}", 1)[0] for i in range(50)}
        assert primaries == set(shard_map.shards)

    def test_removing_other_shard_does_not_move_assignment(self):
        # Consistent hashing's defining property: a key's ranking of
        # surviving shards is stable when an unrelated shard leaves.
        full = ShardMap([f"s{i}" for i in range(5)])
        for key in [f"key-{i}" for i in range(20)]:
            ranking = full.home(key, 5)
            survivor_map = ShardMap([s for s in full.shards if s != ranking[-1]])
            assert survivor_map.home(key, 4) == ranking[:-1]

    def test_role_is_index_in_home_or_none(self):
        shard_map = ShardMap(["s0", "s1", "s2"])
        home = shard_map.home("fixed", 2)
        assert shard_map.role("fixed", home[0], 2) == 0
        assert shard_map.role("fixed", home[1], 2) == 1
        (other,) = set(shard_map.shards) - set(home)
        assert shard_map.role("fixed", other, 2) is None

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            ShardMap([])
        with pytest.raises(InvalidParameterError):
            ShardMap(["s0"], probes=0)
        with pytest.raises(InvalidParameterError):
            ShardMap(["s0"]).home("k", 0)


class TestRingPosition:
    def test_similar_labels_are_spread(self):
        positions = [ring_position(f"shard|s{i}") for i in range(8)]
        assert len(set(positions)) == 8
        # Neighbouring names must land far apart (the raw FNV digest
        # keeps them within a ~2^50 cluster; finalized they span the
        # full 64-bit ring).
        spread = max(positions) - min(positions)
        assert spread > 2**60

    def test_stable_across_calls(self):
        assert ring_position("key|fixed|0") == ring_position("key|fixed|0")


class TestPartialReplica:
    def test_size_and_determinism(self):
        entries = make_entries(30)
        subset = partial_replica("fixed", entries, 1, 0.25)
        assert len(subset) == 8  # round(0.25 * 30)
        assert subset == partial_replica("fixed", entries, 1, 0.25)
        assert {e.entry_id for e in subset} <= {e.entry_id for e in entries}

    def test_distinct_roles_pick_different_subsets(self):
        entries = make_entries(30)
        first = {e.entry_id for e in partial_replica("fixed", entries, 1, 0.25)}
        second = {e.entry_id for e in partial_replica("fixed", entries, 2, 0.25)}
        assert first != second

    def test_keeps_at_least_one_entry(self):
        entries = make_entries(3)
        assert len(partial_replica("k", entries, 1, 0.01)) == 1
        assert partial_replica("k", [], 1, 0.5) == []

    def test_full_fraction_keeps_everything(self):
        entries = make_entries(10)
        subset = partial_replica("k", entries, 1, 1.0)
        assert {e.entry_id for e in subset} == {e.entry_id for e in entries}

    def test_validation(self):
        entries = make_entries(4)
        with pytest.raises(InvalidParameterError):
            partial_replica("k", entries, 0, 0.5)
        with pytest.raises(InvalidParameterError):
            partial_replica("k", entries, 1, 0.0)
        with pytest.raises(InvalidParameterError):
            partial_replica("k", entries, 1, 1.5)
