"""Server load balance under lookup traffic.

The paper's conclusion claims partial lookup services "are insensitive
to the popular key or hot-spot problems which plague traditional
hashing-based lookup services": a popular key's lookups spread over
all ``n`` servers instead of hammering the key's single hash owner.
This module measures that — per-server lookup-request counts for a
stream of lookups — so the claim is reproducible rather than asserted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.exceptions import InvalidParameterError
from repro.strategies.base import PlacementStrategy


@dataclass(frozen=True)
class LoadProfile:
    """Per-server lookup load for one measured traffic stream."""

    requests_per_server: Dict[int, int]
    total_requests: int
    lookups: int

    @property
    def peak_load(self) -> int:
        """Requests absorbed by the busiest server."""
        return max(self.requests_per_server.values(), default=0)

    @property
    def peak_share(self) -> float:
        """Fraction of all requests hitting the busiest server.

        1.0 is a perfect hot spot (one server does everything);
        ``1/n`` is a perfectly spread load.
        """
        if self.total_requests == 0:
            return 0.0
        return self.peak_load / self.total_requests

    @property
    def busy_servers(self) -> int:
        """Servers that received at least one request."""
        return sum(1 for count in self.requests_per_server.values() if count > 0)

    def imbalance(self) -> float:
        """Peak-to-mean ratio over servers that could take traffic.

        1.0 means perfectly even; ``n`` means one server takes it all.
        """
        counts = list(self.requests_per_server.values())
        if not counts or self.total_requests == 0:
            return 0.0
        mean = self.total_requests / len(counts)
        return self.peak_load / mean


def measure_lookup_load(
    strategy: PlacementStrategy, target: int, lookups: int = 1000
) -> LoadProfile:
    """Drive ``lookups`` partial lookups and count per-server requests.

    Uses the network's per-server processed-message counters, so
    forwarded traffic (e.g. key-partitioning's owner hops) is charged
    to the server that actually does the work.
    """
    if lookups < 1:
        raise InvalidParameterError(f"lookups must be >= 1, got {lookups}")
    stats = strategy.cluster.network.stats
    before = dict(stats.per_server)
    before_lookup_messages = stats.lookup_messages
    for _ in range(lookups):
        strategy.partial_lookup(target)
    per_server = {
        server.server_id: stats.per_server.get(server.server_id, 0)
        - before.get(server.server_id, 0)
        for server in strategy.cluster.servers
    }
    return LoadProfile(
        requests_per_server=per_server,
        total_requests=stats.lookup_messages - before_lookup_messages,
        lookups=lookups,
    )
