"""Event types for the discrete-event simulation.

Events are plain data: a timestamp plus what happened.  The engine
orders them by ``(time, sequence)`` so simultaneous events replay in
creation order, keeping seeded runs exactly reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.core.entry import Entry


@dataclass(frozen=True)
class Event:
    """Base event: something that happens at a virtual time."""

    time: float

    def describe(self) -> str:
        return f"{type(self).__name__}@{self.time:g}"


@dataclass(frozen=True)
class AddEvent(Event):
    """An entry enters the system (``add(v)``)."""

    entry: Entry = None  # type: ignore[assignment]

    def describe(self) -> str:
        return f"add({self.entry})@{self.time:g}"


@dataclass(frozen=True)
class DeleteEvent(Event):
    """An entry's lifetime expires (``delete(v)``)."""

    entry: Entry = None  # type: ignore[assignment]

    def describe(self) -> str:
        return f"delete({self.entry})@{self.time:g}"


@dataclass(frozen=True)
class LookupEvent(Event):
    """A client performs ``partial_lookup(target)``."""

    target: int = 1

    def describe(self) -> str:
        return f"lookup(t={self.target})@{self.time:g}"


@dataclass(frozen=True)
class FailureEvent(Event):
    """A server crashes at this time."""

    server_id: int = 0


@dataclass(frozen=True)
class RecoveryEvent(Event):
    """A failed server comes back at this time."""

    server_id: int = 0


@dataclass(frozen=True)
class CallbackEvent(Event):
    """A self-dispatching event: the engine invokes ``callback(time)``.

    Unlike other event types, no handler registration is needed — the
    engine runs the callback directly.  This is the hook for periodic
    maintenance tasks (e.g. the anti-entropy sweep) that attach to an
    engine someone else owns without touching its handler table.
    """

    callback: Optional[Callable[[float], None]] = None
    label: str = "callback"

    def describe(self) -> str:
        return f"call({self.label})@{self.time:g}"


@dataclass(frozen=True)
class ProbeEvent(Event):
    """A measurement hook: the replayer calls ``probe(time, strategy)``.

    Used by experiments that sample system state on a schedule (e.g.
    Figure 13 samples unfairness every ``k`` updates) without coupling
    the engine to any particular metric.
    """

    probe: Optional[Callable[[float, Any], None]] = None
    label: str = "probe"

    def describe(self) -> str:
        return f"probe({self.label})@{self.time:g}"
