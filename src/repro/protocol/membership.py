"""The sans-IO shard-membership state machine.

:class:`MembershipProtocol` is the failure detector that lets a
sharded deployment of lookup services (``repro serve --shard i/N``)
survive shard death the way the paper's model survives simulated
server failure: every shard heartbeats every peer, silence drives the
classic *alive → suspect → dead* escalation, and a returning shard is
*quarantined* for a probation period before the routers trust it
again.  Restarts are distinguished from partitions by an
**incarnation number** the shard bumps on every boot, the replica-
maintenance framing of Leslie 2005: a death verdict is a statement
about a specific incarnation, never about the shard name forever.

Like :class:`~repro.protocol.lookup.LookupSession`, the machine is
pure state: it never reads a clock, never sleeps, and never touches a
socket.  The driver (:mod:`repro.net.membership`) feeds it events —
:class:`~repro.protocol.events.ClockTick` with the current time,
:class:`~repro.protocol.events.HeartbeatSeen` when a peer's heartbeat
arrives — and enacts the returned effects
(:class:`~repro.protocol.effects.SendHeartbeat`,
:class:`~repro.protocol.effects.PeerTransition`).  All timestamps are
whatever monotonic scale the driver chooses; tests drive the machine
with hand-picked floats and zero sockets (``tests/protocol/
test_membership.py``).

State rules, in full:

- A peer starts **alive** (grace: it has ``suspect_after`` to prove
  itself) and is refreshed by every heartbeat bearing its current (or
  newer) incarnation.
- No heartbeat for ``suspect_after`` → **suspect**; for
  ``dead_after`` → **dead**.  Suspect peers are still routed to (they
  may merely be slow); dead peers are not.
- A heartbeat from a **dead** peer — same incarnation (partition
  healed) or higher (restart) — moves it to **quarantined** for
  ``quarantine`` time units.  A quarantined peer that keeps
  heartbeating is re-admitted (**alive**) when the probation expires;
  one that falls silent again goes back to **dead**.  A restart
  *during* quarantine restarts the probation.
- Gossip: each heartbeat carries the sender's peer view.  Gossip
  never overrides the local failure detector's state verdicts — it
  only teaches this node higher incarnations and previously unknown
  peers (which enter as **suspect** until heard from directly).

The RNG is injected and used for exactly one thing: shuffling the
heartbeat fan-out order so a fleet of shards does not probe peers in
lock-step.  Pass ``rng=None`` for the deterministic sorted order.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.exceptions import InvalidParameterError
from repro.protocol.effects import Effect, PeerTransition, SendHeartbeat
from repro.protocol.events import ClockTick, Event, HeartbeatSeen

#: Peer lifecycle states, in escalation order.  Plain strings so they
#: cross the wire inside :class:`~repro.cluster.messages.Heartbeat`
#: views without codec support.
ALIVE = "alive"
SUSPECT = "suspect"
DEAD = "dead"
QUARANTINED = "quarantined"

#: Every valid peer state.
PEER_STATES = frozenset({ALIVE, SUSPECT, DEAD, QUARANTINED})

#: States a router may send lookups to.  Suspect peers are still
#: routed (slow is not dead); quarantined peers are not re-admitted
#: until probation ends.
ROUTABLE_STATES = frozenset({ALIVE, SUSPECT})


@dataclass(frozen=True)
class MembershipConfig:
    """Failure-detection timing, in the driver's clock units.

    Parameters
    ----------
    heartbeat_interval:
        Time between heartbeat fan-outs to every peer.
    suspect_after:
        Silence before a peer is suspected.
    dead_after:
        Silence before a peer is declared dead.  Must exceed
        ``suspect_after`` (the escalation must pass through suspect).
    quarantine:
        Probation a returning peer serves before re-admission.
    """

    heartbeat_interval: float = 0.5
    suspect_after: float = 2.0
    dead_after: float = 5.0
    quarantine: float = 3.0

    def __post_init__(self) -> None:
        if self.heartbeat_interval <= 0:
            raise InvalidParameterError(
                f"heartbeat_interval must be positive, got {self.heartbeat_interval}"
            )
        if self.suspect_after <= 0:
            raise InvalidParameterError(
                f"suspect_after must be positive, got {self.suspect_after}"
            )
        if self.dead_after <= self.suspect_after:
            raise InvalidParameterError(
                f"dead_after ({self.dead_after}) must exceed "
                f"suspect_after ({self.suspect_after})"
            )
        if self.quarantine < 0:
            raise InvalidParameterError(
                f"quarantine must be non-negative, got {self.quarantine}"
            )


@dataclass(frozen=True)
class PeerStatus:
    """One row of the membership view."""

    name: str
    state: str
    incarnation: int
    last_heard: float


class _Peer:
    __slots__ = ("state", "incarnation", "last_heard", "quarantine_until")

    def __init__(self, state: str, incarnation: int, last_heard: float) -> None:
        self.state = state
        self.incarnation = incarnation
        self.last_heard = last_heard
        self.quarantine_until = 0.0


class MembershipProtocol:
    """Heartbeat bookkeeping and failure detection for one shard.

    Parameters
    ----------
    self_name:
        This shard's name (e.g. ``"s0"``).
    peers:
        The other shards' names.  More may be learned via gossip.
    config:
        Timing knobs; see :class:`MembershipConfig`.
    incarnation:
        This shard's boot incarnation.  The driver must hand a value
        strictly greater than any earlier boot of the same shard (the
        serve CLI uses wall-clock seconds); tests pass small ints.
    now:
        The clock reading at construction; peers get a full
        ``suspect_after`` of grace from this instant.
    rng:
        Optional randomness for heartbeat fan-out order only.
    """

    def __init__(
        self,
        self_name: str,
        peers: Iterable[str],
        config: Optional[MembershipConfig] = None,
        *,
        incarnation: int = 0,
        now: float = 0.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.self_name = self_name
        self.config = config if config is not None else MembershipConfig()
        self.incarnation = incarnation
        self._rng = rng
        self._peers: Dict[str, _Peer] = {}
        for name in peers:
            if name == self_name:
                continue
            self._peers[name] = _Peer(ALIVE, -1, now)
        self._next_heartbeat = now  # fire on the first tick

    # -- the event interface -------------------------------------------------

    def on_event(self, event: Event) -> List[Effect]:
        """Feed one event; returns the effects to enact."""
        if isinstance(event, ClockTick):
            return self._on_tick(event.now)
        if isinstance(event, HeartbeatSeen):
            return self._on_heartbeat(event)
        raise TypeError(
            f"MembershipProtocol cannot consume {type(event).__name__}"
        )

    def _on_tick(self, now: float) -> List[Effect]:
        effects: List[Effect] = []
        cfg = self.config
        for name in sorted(self._peers):
            peer = self._peers[name]
            silence = now - peer.last_heard
            if peer.state in (ALIVE, SUSPECT) and silence >= cfg.dead_after:
                self._transition(effects, name, peer, DEAD, now)
            elif peer.state == ALIVE and silence >= cfg.suspect_after:
                self._transition(effects, name, peer, SUSPECT, now)
            elif peer.state == QUARANTINED:
                if silence >= cfg.dead_after:
                    # Came back, then fell silent again mid-probation.
                    self._transition(effects, name, peer, DEAD, now)
                elif now >= peer.quarantine_until:
                    # Probation served while heartbeating: re-admit.
                    self._transition(effects, name, peer, ALIVE, now)
        if now >= self._next_heartbeat:
            self._next_heartbeat = now + cfg.heartbeat_interval
            order = sorted(self._peers)
            if self._rng is not None:
                self._rng.shuffle(order)
            effects.extend(SendHeartbeat(name) for name in order)
        return effects

    def _on_heartbeat(self, event: HeartbeatSeen) -> List[Effect]:
        effects: List[Effect] = []
        now = event.now
        if event.peer != self.self_name:
            peer = self._peers.get(event.peer)
            if peer is None:
                # First direct contact with a gossiped-only (or
                # late-configured) peer: it just proved itself.
                peer = _Peer(ALIVE, event.incarnation, now)
                self._peers[event.peer] = peer
                effects.append(
                    PeerTransition(event.peer, None, ALIVE, event.incarnation, now)
                )
            else:
                self._absorb_direct(effects, event.peer, peer, event.incarnation, now)
        for entry in event.view:
            self._absorb_gossip(effects, entry, now)
        return effects

    def _absorb_direct(
        self,
        effects: List[Effect],
        name: str,
        peer: _Peer,
        incarnation: int,
        now: float,
    ) -> None:
        if incarnation < peer.incarnation:
            # A zombie heartbeat from a dead incarnation (delayed in
            # flight across a restart): evidence about the past, not
            # about the peer as it is now.
            return
        restarted = incarnation > peer.incarnation
        peer.incarnation = incarnation
        peer.last_heard = now
        if peer.state == DEAD:
            # Back from the dead — partition healed or restarted.
            # Either way it serves probation before re-admission.
            peer.quarantine_until = now + self.config.quarantine
            self._transition(effects, name, peer, QUARANTINED, now)
        elif peer.state == QUARANTINED and restarted:
            # Crashed *again* during probation; restart the clock.
            peer.quarantine_until = now + self.config.quarantine
        elif peer.state == SUSPECT:
            self._transition(effects, name, peer, ALIVE, now)

    def _absorb_gossip(
        self, effects: List[Effect], entry: Tuple[str, str, int], now: float
    ) -> None:
        name, state, incarnation = entry
        if name == self.self_name or state not in PEER_STATES:
            return
        peer = self._peers.get(name)
        if peer is None:
            # Discovery: believed about, never heard from.  Enters as
            # suspect — routable, but one silence step from dead — and
            # must heartbeat us directly to become alive.
            peer = _Peer(SUSPECT, incarnation, now - self.config.suspect_after)
            self._peers[name] = peer
            effects.append(PeerTransition(name, None, SUSPECT, incarnation, now))
        elif incarnation > peer.incarnation:
            # Gossip teaches incarnations, never states: the local
            # detector keeps its own verdict until direct evidence.
            peer.incarnation = incarnation

    def _transition(
        self, effects: List[Effect], name: str, peer: _Peer, state: str, now: float
    ) -> None:
        old = peer.state
        peer.state = state
        effects.append(PeerTransition(name, old, state, peer.incarnation, now))

    # -- the view surface ----------------------------------------------------

    def state_of(self, name: str) -> Optional[str]:
        """The peer's current state, or None if unknown."""
        if name == self.self_name:
            return ALIVE
        peer = self._peers.get(name)
        return peer.state if peer is not None else None

    def routable_peers(self) -> List[str]:
        """Peers a router may currently send lookups to, sorted."""
        return sorted(
            name
            for name, peer in self._peers.items()
            if peer.state in ROUTABLE_STATES
        )

    def view(self) -> Tuple[PeerStatus, ...]:
        """The full membership view, self included, sorted by name."""
        rows = [
            PeerStatus(name, peer.state, peer.incarnation, peer.last_heard)
            for name, peer in self._peers.items()
        ]
        rows.append(
            PeerStatus(self.self_name, ALIVE, self.incarnation, 0.0)
        )
        return tuple(sorted(rows, key=lambda row: row.name))

    def wire_view(self) -> Tuple[Tuple[str, str, int], ...]:
        """The gossip payload: ``(name, state, incarnation)`` triples."""
        return tuple(
            (row.name, row.state, row.incarnation) for row in self.view()
        )

    def counts(self) -> Dict[str, int]:
        """Peers per state — the MetricsRegistry gauge payload."""
        counts = {state: 0 for state in sorted(PEER_STATES)}
        for peer in self._peers.values():
            counts[peer.state] += 1
        return counts


__all__ = [
    "ALIVE",
    "DEAD",
    "PEER_STATES",
    "QUARANTINED",
    "ROUTABLE_STATES",
    "SUSPECT",
    "MembershipConfig",
    "MembershipProtocol",
    "PeerStatus",
]
