"""Typed results for the network client surface.

The asyncio client and the shard router used to answer with a mix of
the simulator's :class:`repro.core.result.LookupResult` and an ad-hoc
``RoutedLookup`` wrapper, and the CLI flattened both into row dicts.
This module is the one public answer shape for the network data path:

- :class:`LookupResult` — one lookup, frozen: the entries and targets
  the core result carried, plus the network-only attribution (which
  shard/servers answered, whether failover happened, which wire codec
  served it) and an explicit ``status`` (``"ok"`` / ``"degraded"`` /
  ``"failed"`` — the same trichotomy as the ``repro call`` exit
  codes).
- :class:`LookupReport` — an ordered batch of results, as returned by
  ``lookup_many``; owns the batch-level verdicts (``all_success``,
  ``exit_code``) so scripts stop re-deriving them.

Migration: the pre-redesign surfaces (``result["entries"]`` row-dict
indexing, the old ``RoutedLookup``-era ``.result`` inner object) had
a one-release :class:`DeprecationWarning` grace period and are now
gone — both raise with a hint naming the replacement.  ``as_row()``
is the supported way to get the CLI's JSON row and ``core()`` the
simulator's core result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, Tuple

from repro.core.entry import Entry
from repro.core.result import LookupResult as CoreLookupResult

#: Exit codes shared with ``repro call`` (see ``docs/protocols.md``).
STATUS_OK = "ok"
STATUS_DEGRADED = "degraded"
STATUS_FAILED = "failed"

_EXIT_BY_STATUS = {STATUS_OK: 0, STATUS_DEGRADED: 3, STATUS_FAILED: 4}


@dataclass(frozen=True)
class LookupResult:
    """One network lookup: the answer plus its attribution.

    Attributes
    ----------
    key:
        The scheme key the lookup ran under.
    entries, target, servers_contacted, failed_contacts, messages,
    retries, backoff:
        Exactly the simulator's :class:`repro.core.result.LookupResult`
        observations (see that class for the paper mapping).
    codec:
        Which wire codec carried the lookup (``"json"``/``"binary"``).
    home:
        The key's home shard group, primary first (empty for an
        unsharded client).
    routed:
        The shards the router actually admitted to the contact order.
    contacts:
        ``(shard, server_id)`` per answering contact, in contact
        order; unsharded lookups use the service's own shard name.
    """

    key: str
    entries: Tuple[Entry, ...]
    target: int
    servers_contacted: Tuple[int, ...] = ()
    failed_contacts: Tuple[int, ...] = ()
    messages: int = 0
    retries: int = 0
    backoff: float = 0.0
    codec: str = "json"
    home: Tuple[str, ...] = ()
    routed: Tuple[str, ...] = ()
    contacts: Tuple[Tuple[str, int], ...] = ()

    @classmethod
    def from_core(
        cls,
        key: str,
        core: CoreLookupResult,
        *,
        codec: str = "json",
        home: Tuple[str, ...] = (),
        routed: Tuple[str, ...] = (),
        contacts: Tuple[Tuple[str, int], ...] = (),
    ) -> "LookupResult":
        """Wrap a session's core result with its network attribution."""
        return cls(
            key=key,
            entries=core.entries,
            target=core.target,
            servers_contacted=core.servers_contacted,
            failed_contacts=core.failed_contacts,
            messages=core.messages,
            retries=core.retries,
            backoff=core.backoff,
            codec=codec,
            home=home,
            routed=routed,
            contacts=contacts,
        )

    # -- verdicts ------------------------------------------------------------

    @property
    def status(self) -> str:
        """``"ok"`` (met target), ``"failed"`` (empty answer, positive
        target), or ``"degraded"`` (short but non-empty)."""
        if self.target > 0 and not self.entries:
            return STATUS_FAILED
        if self.target > 0 and len(self.entries) < self.target:
            return STATUS_DEGRADED
        return STATUS_OK

    @property
    def success(self) -> bool:
        return len(self.entries) >= self.target

    @property
    def degraded(self) -> bool:
        return self.target > 0 and len(self.entries) < self.target

    @property
    def failed(self) -> bool:
        return self.status == STATUS_FAILED

    @property
    def exit_code(self) -> int:
        return _EXIT_BY_STATUS[self.status]

    @property
    def lookup_cost(self) -> int:
        """Operational servers contacted (Section 4.2)."""
        return len(self.servers_contacted)

    @property
    def failover(self) -> bool:
        """True when any answering contact landed off the primary shard."""
        primary = self.home[0] if self.home else None
        if primary is None:
            return False
        return any(shard != primary for shard, _ in self.contacts) or (
            self.routed[:1] != (primary,)
        )

    # -- container conveniences ----------------------------------------------

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[Entry]:
        return iter(self.entries)

    def as_row(self) -> Dict[str, Any]:
        """The CLI's JSON row for this lookup (stable, sorted entries)."""
        row: Dict[str, Any] = {
            "entries": sorted(e.entry_id for e in self.entries),
            "found": len(self.entries),
            "target": self.target,
            "status": self.status,
            "success": self.success,
            "degraded": self.degraded,
            "messages": self.messages,
            "retries": self.retries,
            "servers_contacted": list(self.servers_contacted),
            "codec": self.codec,
        }
        if self.home:
            row["home"] = list(self.home)
            row["routed"] = list(self.routed)
            row["contacts"] = [list(c) for c in self.contacts]
            row["failover"] = self.failover
        return row

    # -- removed migration shims ---------------------------------------------

    def __getitem__(self, key: str) -> Any:
        raise TypeError(
            "indexing a net LookupResult like a row dict was removed; "
            "use the typed attributes or as_row()[...] for the CLI row "
            "shape"
        )

    def __getattr__(self, name: str) -> Any:
        if name == "result":
            raise AttributeError(
                "LookupResult.result was removed; the net LookupResult "
                "carries the core result's fields directly — use the "
                "typed attributes, or core() for the simulator's "
                "LookupResult"
            )
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}"
        )

    def core(self) -> CoreLookupResult:
        """This result as the simulator's core :class:`LookupResult`."""
        return CoreLookupResult(
            entries=self.entries,
            target=self.target,
            servers_contacted=self.servers_contacted,
            failed_contacts=self.failed_contacts,
            messages=self.messages,
            retries=self.retries,
            backoff=self.backoff,
        )


@dataclass(frozen=True)
class LookupReport:
    """An ordered batch of :class:`LookupResult`, from ``lookup_many``.

    Results keep request order regardless of the wire-level completion
    order (responses are correlated by request id).
    """

    results: Tuple[LookupResult, ...]

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self) -> Iterator[LookupResult]:
        return iter(self.results)

    def __getitem__(self, index: int) -> LookupResult:
        return self.results[index]

    @property
    def all_success(self) -> bool:
        return all(r.success for r in self.results)

    @property
    def degraded_count(self) -> int:
        return sum(1 for r in self.results if r.degraded)

    @property
    def failed_count(self) -> int:
        return sum(1 for r in self.results if r.failed)

    @property
    def exit_code(self) -> int:
        """Worst outcome wins, exactly the ``repro call`` contract."""
        return max((r.exit_code for r in self.results), default=0)

    def rows(self) -> list:
        return [r.as_row() for r in self.results]


__all__ = [
    "STATUS_DEGRADED",
    "STATUS_FAILED",
    "STATUS_OK",
    "LookupReport",
    "LookupResult",
]
