"""Implementations of the paper's Section 7 variations.

§7.1 — clients with preferences: a per-client cost function over
entries; lookups return the ``t`` best-cost entries the client can
find.  §7.2 — servers with limited reachability: clients live on an
overlay network and can only contact servers within ``d`` hops;
placement must guarantee every client has a server nearby.
"""

from repro.extensions.preferences import (
    PreferenceClient,
    attribute_cost,
    latency_bandwidth_cost,
)
from repro.extensions.reachability import (
    OverlayNetwork,
    ReachabilityPlacement,
    ReachabilityReport,
)

__all__ = [
    "PreferenceClient",
    "attribute_cost",
    "latency_bandwidth_cost",
    "OverlayNetwork",
    "ReachabilityPlacement",
    "ReachabilityReport",
]
