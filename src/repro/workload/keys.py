"""Multi-key workloads with skewed key popularity.

The single-key experiments isolate per-key behaviour; a deployed
directory serves *many* keys whose popularity is famously Zipf-skewed
(the "popular song" of the paper's introduction).  This module
generates directory-level workloads: a key population, a Zipf
popularity law over it, and interleaved per-key lookup/update streams
— the substrate for hot-key load studies on the multi-key facade.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.exceptions import InvalidParameterError


class ZipfKeyPopularity:
    """A Zipf(s) popularity law over a fixed key population.

    Key ``i`` (1-indexed by rank) is drawn with probability
    proportional to ``1 / i^s``.  ``s = 0`` is uniform; ``s ≈ 1`` is
    the classic web/file-sharing skew.
    """

    def __init__(
        self, keys: Sequence[str], skew: float = 1.0, rng: Optional[random.Random] = None
    ) -> None:
        if not keys:
            raise InvalidParameterError("need at least one key")
        if skew < 0:
            raise InvalidParameterError(f"skew must be >= 0, got {skew}")
        self.keys = list(keys)
        self.skew = skew
        self.rng = rng if rng is not None else random.Random()
        weights = [1.0 / (rank**skew) for rank in range(1, len(self.keys) + 1)]
        total = sum(weights)
        self._cumulative: List[float] = []
        running = 0.0
        for weight in weights:
            running += weight / total
            self._cumulative.append(running)

    def probability(self, key: str) -> float:
        """The draw probability of ``key``."""
        index = self.keys.index(key)
        previous = self._cumulative[index - 1] if index else 0.0
        return self._cumulative[index] - previous

    def draw(self) -> str:
        """One key, sampled by popularity."""
        point = self.rng.random()
        low, high = 0, len(self._cumulative) - 1
        while low < high:
            mid = (low + high) // 2
            if self._cumulative[mid] < point:
                low = mid + 1
            else:
                high = mid
        return self.keys[low]

    def draw_many(self, count: int) -> List[str]:
        return [self.draw() for _ in range(count)]


@dataclass(frozen=True)
class DirectoryOp:
    """One operation against the multi-key directory."""

    time: float
    key: str
    kind: str  # "lookup" | "add" | "delete"
    target: int = 0
    entry_id: str = ""


@dataclass(frozen=True)
class DirectoryWorkload:
    """A timestamped multi-key operation stream."""

    initial_entries: Dict[str, Tuple[str, ...]]
    operations: Tuple[DirectoryOp, ...]

    def lookups(self) -> List[DirectoryOp]:
        return [op for op in self.operations if op.kind == "lookup"]

    def updates(self) -> List[DirectoryOp]:
        return [op for op in self.operations if op.kind != "lookup"]

    def per_key_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for op in self.operations:
            counts[op.key] = counts.get(op.key, 0) + 1
        return counts


class MultiKeyWorkloadGenerator:
    """Generates directory workloads over a Zipf-popular key population.

    Parameters
    ----------
    key_count:
        Number of keys (``key0`` is the most popular).
    entries_per_key:
        Initial entries placed for each key.
    popularity_skew:
        The Zipf exponent ``s`` for both lookups and updates.
    lookup_target:
        Target answer size for generated lookups.
    update_fraction:
        Fraction of operations that are updates (alternating
        delete+add pairs against the drawn key).
    """

    def __init__(
        self,
        key_count: int,
        entries_per_key: int = 50,
        popularity_skew: float = 1.0,
        lookup_target: int = 3,
        update_fraction: float = 0.1,
        rng: Optional[random.Random] = None,
    ) -> None:
        if key_count < 1 or entries_per_key < 1:
            raise InvalidParameterError(
                "key_count and entries_per_key must be >= 1"
            )
        if not 0.0 <= update_fraction <= 1.0:
            raise InvalidParameterError("update_fraction must be in [0, 1]")
        self.keys = [f"key{i}" for i in range(key_count)]
        self.entries_per_key = entries_per_key
        self.lookup_target = lookup_target
        self.update_fraction = update_fraction
        self.rng = rng if rng is not None else random.Random()
        self.popularity = ZipfKeyPopularity(
            self.keys, skew=popularity_skew, rng=self.rng
        )

    def generate(self, operations: int, mean_gap: float = 1.0) -> DirectoryWorkload:
        """``operations`` timestamped ops with exponential gaps."""
        if operations < 0:
            raise InvalidParameterError("operations must be non-negative")
        initial = {
            key: tuple(f"{key}/e{i}" for i in range(self.entries_per_key))
            for key in self.keys
        }
        live: Dict[str, List[str]] = {
            key: list(entries) for key, entries in initial.items()
        }
        next_id = {key: self.entries_per_key for key in self.keys}
        ops: List[DirectoryOp] = []
        now = 0.0
        for _ in range(operations):
            now += self.rng.expovariate(1.0 / mean_gap)
            key = self.popularity.draw()
            if self.rng.random() < self.update_fraction and live[key]:
                victim = self.rng.choice(live[key])
                live[key].remove(victim)
                ops.append(DirectoryOp(now, key, "delete", entry_id=victim))
                fresh = f"{key}/e{next_id[key]}"
                next_id[key] += 1
                live[key].append(fresh)
                ops.append(DirectoryOp(now, key, "add", entry_id=fresh))
            else:
                ops.append(
                    DirectoryOp(now, key, "lookup", target=self.lookup_target)
                )
        return DirectoryWorkload(initial, tuple(ops))


def apply_workload(directory, workload: DirectoryWorkload):
    """Drive a :class:`PartialLookupDirectory` through a workload.

    Places every key's initial entries, then applies the operation
    stream in order.  Returns per-key lookup failure counts so callers
    can spot under-served keys.
    """
    from repro.core.entry import Entry

    failures: Dict[str, int] = {}
    for key, entries in workload.initial_entries.items():
        directory.place(key, list(entries))
    for op in workload.operations:
        if op.kind == "lookup":
            result = directory.partial_lookup(op.key, op.target)
            if not result.success:
                failures[op.key] = failures.get(op.key, 0) + 1
        elif op.kind == "add":
            directory.add(op.key, Entry(op.entry_id))
        elif op.kind == "delete":
            directory.delete(op.key, Entry(op.entry_id))
    return failures
