"""Wire codec: framing, tagged values, and message round-trips."""

import struct

import pytest

from repro.cluster.messages import (
    AddRequest,
    DeleteRequest,
    FetchReplacement,
    LookupRequest,
    MigrateRequest,
    PlaceRequest,
    RemoveWithHead,
    SetCounters,
    StoreSetMessage,
)
from repro.core.entry import Entry, make_entries
from repro.net.codec import (
    MAX_FRAME,
    MESSAGE_TYPES,
    FrameError,
    WireError,
    decode_envelope,
    decode_message,
    decode_value,
    encode_envelope,
    encode_message,
    encode_value,
)


def roundtrip(value):
    return decode_value(encode_value(value))


class TestValueRoundtrip:
    def test_primitives(self):
        for value in (None, True, False, 0, -3, 1.5, "x", ""):
            assert roundtrip(value) == value

    def test_entry_with_and_without_payload(self):
        assert roundtrip(Entry("v1")) == Entry("v1")
        got = roundtrip(Entry("v2", payload="host:9000"))
        assert got == Entry("v2")
        assert got.payload == "host:9000"

    def test_list_and_tuple_distinction_survives(self):
        entries = make_entries(3)
        assert roundtrip(list(entries)) == list(entries)
        got = roundtrip(tuple(entries))
        assert got == tuple(entries)
        assert isinstance(got, tuple)
        assert isinstance(roundtrip([1, (2, 3)])[1], tuple)

    def test_nested_dict(self):
        value = {"a": [Entry("v1")], "b": {"c": (1, 2)}}
        got = roundtrip(value)
        assert got["a"] == [Entry("v1")]
        assert got["b"]["c"] == (1, 2)

    def test_unencodable_values_rejected(self):
        with pytest.raises(WireError):
            encode_value(object())
        with pytest.raises(WireError):
            encode_value({1: "non-string key"})
        with pytest.raises(WireError):
            encode_value({"!": "reserved key"})

    def test_unknown_tag_rejected(self):
        with pytest.raises(WireError):
            decode_value({"!": "mystery"})


class TestMessageRoundtrip:
    MESSAGES = [
        LookupRequest(5),
        LookupRequest(0),
        AddRequest(Entry("v1")),
        DeleteRequest(Entry("v2", payload={"url": "u"})),
        PlaceRequest(tuple(make_entries(4))),
        StoreSetMessage(tuple(make_entries(2))),
        RemoveWithHead(Entry("v3"), head=7),
        SetCounters(head=2, tail=9),
        MigrateRequest(Entry("v4"), head=1, new_position=6),
        FetchReplacement(exclude_ids=("v1", "v2")),
    ]

    @pytest.mark.parametrize(
        "message", MESSAGES, ids=[type(m).__name__ for m in MESSAGES]
    )
    def test_roundtrip(self, message):
        assert decode_message(encode_message(message)) == message

    def test_registry_covers_every_concrete_type(self):
        from repro.cluster.messages import known_message_types

        assert set(MESSAGE_TYPES) == set(known_message_types())

    def test_unknown_type_rejected(self):
        with pytest.raises(WireError):
            decode_message({"!": "msg", "type": "Nope", "fields": {}})

    def test_field_mismatch_rejected(self):
        wire = encode_message(LookupRequest(5))
        wire["fields"]["extra"] = 1
        with pytest.raises(WireError):
            decode_message(wire)
        with pytest.raises(WireError):
            decode_message({"!": "msg", "type": "LookupRequest", "fields": {}})

    def test_messages_encode_as_values_too(self):
        assert decode_value(encode_value(LookupRequest(3))) == LookupRequest(3)


class TestFraming:
    def test_envelope_roundtrip(self):
        framed = encode_envelope({"op": "ping", "n": 3})
        (length,) = struct.unpack(">I", framed[:4])
        assert length == len(framed) - 4
        assert decode_envelope(framed[4:]) == {"op": "ping", "n": 3}

    def test_malformed_body_rejected(self):
        with pytest.raises(FrameError):
            decode_envelope(b"not json")
        with pytest.raises(FrameError):
            decode_envelope(b'[1, 2]')  # envelopes must be objects

    def test_unjsonable_envelope_rejected(self):
        with pytest.raises(WireError):
            encode_envelope({"op": object()})

    def test_max_frame_bound(self):
        assert MAX_FRAME == 16 * 1024 * 1024
