"""Benchmark: regenerate Table 1 (storage cost, formula vs measured)."""

from _bench_utils import render_and_print

from repro.experiments.table1_storage import Table1Config, run


def test_bench_table1_storage(benchmark):
    config = Table1Config(runs=200)
    result = benchmark.pedantic(lambda: run(config), rounds=1, iterations=1)
    render_and_print(result)
    # Deterministic rows must match the closed forms exactly.
    for name in ("full_replication", "fixed", "random_server", "round_robin"):
        row = result.row_for(strategy=name)
        assert row["measured"] == row["expected"]
    hash_row = result.row_for(strategy="hash")
    assert abs(hash_row["measured"] - hash_row["expected"]) < 2.0
