"""Abstract base for single-key placement strategies.

A :class:`PlacementStrategy` is the client-side face of one scheme: it
knows which server to send each request to and in what order to contact
servers during a lookup.  The server-side face is a
:class:`StrategyLogic` (a :class:`~repro.cluster.server.ServerLogic`)
that the strategy installs on every server at construction; all
protocol behaviour upon *receiving* a message lives there, mirroring
the paper's per-scheme protocol descriptions.

Message accounting: every public operation returns an
:class:`~repro.core.result.UpdateResult` /
:class:`~repro.core.result.LookupResult` whose ``messages`` field is
the number of processed server messages attributable to that one
operation, measured by differencing the network counters.  This is the
exact Section 6.4 cost model (client request = 1, broadcast = n,
point-to-point = 1).
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, ClassVar, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.entry import Entry, coerce_entries
from repro.core.exceptions import InvalidParameterError
from repro.core.result import LookupResult, UpdateResult
from repro.cluster.client import Client, Order
from repro.cluster.cluster import Cluster
from repro.cluster.messages import LookupRequest, Message
from repro.cluster.network import Network
from repro.cluster.server import Server, ServerLogic
from repro.protocol.server import answer_lookup


@dataclass(frozen=True)
class LookupProfile:
    """A strategy's declaration of *how* it drives the client skeleton.

    Every paper strategy's ``partial_lookup`` is exactly
    ``client.lookup(key, target, order=..., max_servers=...)`` with no
    extra randomness or post-processing.  A strategy that can promise
    this declares it by returning a profile from
    :meth:`PlacementStrategy.lookup_profile`; consumers (the bitset
    Monte-Carlo kernel in :mod:`repro.cluster.kernel`, the exact
    estimators in :mod:`repro.analysis.exact`) can then reproduce or
    analyse the lookup without calling ``partial_lookup`` itself.
    Returning ``None`` (the base default) means "opaque — drive the
    real ``partial_lookup``", which is always safe.
    """

    order: Order = "random"
    max_servers: Optional[int] = None


class StrategyLogic(ServerLogic):
    """Server-side handler shared by all strategies.

    Handles the one message every scheme treats identically — the
    per-server lookup answer ("return t randomly selected entries
    stored on the server, or all of them if fewer") — and routes
    everything else to :meth:`handle_message` on the concrete logic.
    """

    def __init__(self, strategy: "PlacementStrategy") -> None:
        self.strategy = strategy

    @property
    def key(self) -> str:
        return self.strategy.key

    @property
    def rng(self) -> random.Random:
        return self.strategy.rng

    def handle(self, server: Server, message: Message, network: Network) -> Any:
        if isinstance(message, LookupRequest):
            return answer_lookup(server.store(self.key), message.target, self.rng)
        return self.handle_message(server, message, network)

    @abstractmethod
    def handle_message(self, server: Server, message: Message, network: Network) -> Any:
        """Handle a non-lookup message; return the reply, if any."""


class PlacementStrategy(ABC):
    """Base class for the paper's single-key placement strategies.

    Parameters
    ----------
    cluster:
        The server cluster to place entries on.
    key:
        The key whose entries this instance manages.  Distinct keys on
        the same cluster are fully independent (separate stores, state,
        and logic), which is how the multi-key directory composes
        strategies.
    """

    #: Registry name, e.g. ``"fixed"``; set by each concrete class.
    name: ClassVar[str] = ""

    def __init__(self, cluster: Cluster, key: str = "k") -> None:
        self.cluster = cluster
        self.key = key
        self.client = Client(cluster)
        #: Monotone counter bumped by every placement mutation
        #: (``place``/``add``/``delete``).  Consumers that memoize
        #: anything derived from the placement (e.g. the
        #: :class:`~repro.experiments.placement_cache.PlacementCache`)
        #: compare epochs to detect staleness.
        self.placement_epoch = 0
        logic = self._build_logic()
        for server in cluster.servers:
            server.install_logic(key, logic)

    # -- to be provided by concrete strategies --------------------------------

    @abstractmethod
    def _build_logic(self) -> StrategyLogic:
        """Create the server-side logic shared by all servers."""

    @abstractmethod
    def _do_place(self, entries: Tuple[Entry, ...]) -> None:
        """Issue the messages that realize ``place(entries)``."""

    @abstractmethod
    def _do_add(self, entry: Entry) -> None:
        """Issue the messages that realize ``add(entry)``."""

    @abstractmethod
    def _do_delete(self, entry: Entry) -> None:
        """Issue the messages that realize ``delete(entry)``."""

    @abstractmethod
    def partial_lookup(self, target: int) -> LookupResult:
        """Retrieve at least ``target`` distinct entries for this key.

        Never raises on shortfall; the result's ``success`` flag
        reports whether the target was met, because lookup failure is
        a measured event in the paper's evaluation (Figure 12).
        """

    # -- common conveniences ----------------------------------------------------

    @property
    def rng(self) -> random.Random:
        return self.cluster.rng

    @property
    def n(self) -> int:
        """Number of servers, the paper's ``n``."""
        return self.cluster.size

    def params(self) -> Dict[str, Any]:
        """The strategy's tunable parameters, for reports and repr."""
        return {}

    def place(self, entries: Iterable[Entry]) -> UpdateResult:
        """Batch-set this key's entries (Section 2 ``place`` semantics).

        Placing on a key that already holds entries first resets that
        key on every server; the reset is a simulation-level operation
        and is not charged any messages, since the paper only measures
        incremental update costs.
        """
        batch = tuple(coerce_entries(entries))
        for server in self.cluster.servers:
            server.store(self.key).clear()
            server.state(self.key).clear()
        self.placement_epoch += 1
        return self._measured("place", lambda: self._do_place(batch))

    def add(self, entry: Entry) -> UpdateResult:
        """Incrementally add one entry."""
        self.placement_epoch += 1
        return self._measured("add", lambda: self._do_add(entry))

    def delete(self, entry: Entry) -> UpdateResult:
        """Incrementally delete one entry."""
        self.placement_epoch += 1
        return self._measured("delete", lambda: self._do_delete(entry))

    def lookup_profile(self) -> Optional["LookupProfile"]:
        """How ``partial_lookup`` drives the client, if declarable.

        See :class:`LookupProfile`.  The base returns ``None`` (opaque
        lookup); every paper strategy overrides this with its actual
        order/cap so the fast Monte-Carlo kernel and the exact
        estimators apply.
        """
        return None

    def lookup_all(self) -> Set[Entry]:
        """Traditional full lookup: every retrievable entry.

        Contract: this is defined as ``partial_lookup(0)`` — target 0
        is the explicit "fetch everything" request.  The client
        skeleton then contacts *every* server in the strategy's
        contact order (no early stop, since no target can be met), and
        each per-server ``LookupRequest(0)`` answer is the server's
        entire store (``EntryStore.sample`` treats ``count <= 0`` as
        "all", matching the paper's traditional-lookup semantics).
        Consequently the result equals the coverage set restricted to
        servers the strategy's order reaches — for every paper
        strategy except Fixed-x and full replication (whose
        ``max_servers=1`` cap means one server's store, which *is*
        their coverage set when stores are equal), that is exactly
        ``cluster.coverage_set(key)``.  Failed servers are skipped, so
        entries stored only on failed servers are not returned.
        """
        return set(self.partial_lookup(0).entries)

    # -- placement observations ---------------------------------------------------

    def storage_cost(self) -> int:
        """Total stored entries across servers (Table 1's measured cost)."""
        return self.cluster.storage_cost(self.key)

    def coverage(self) -> int:
        """Maximum coverage: distinct entries on operational servers."""
        return self.cluster.coverage(self.key)

    def placement(self) -> Dict[int, Set[Entry]]:
        """Server id → set of stored entries, the metric inputs."""
        return self.cluster.placement(self.key)

    # -- internals -------------------------------------------------------------------

    def _measured(self, operation: str, action) -> UpdateResult:
        """Run ``action`` and report its message cost as an UpdateResult."""
        stats = self.cluster.network.stats
        before_messages = stats.update_messages
        before_broadcasts = stats.broadcasts
        action()
        return UpdateResult(
            operation=operation,
            messages=stats.update_messages - before_messages,
            broadcast=stats.broadcasts > before_broadcasts,
        )

    @staticmethod
    def _require_positive(value: int, name: str) -> int:
        if value < 1:
            raise InvalidParameterError(f"{name} must be >= 1, got {value}")
        return value

    def __repr__(self) -> str:
        params = ", ".join(f"{k}={v}" for k, v in self.params().items())
        return f"{type(self).__name__}({params}) on {self.cluster!r}"
