"""Unit tests for the fault-injecting transport."""

import random

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.faults import Blackout, CrashPoint, FaultPlan
from repro.cluster.messages import LookupRequest, StoreMessage
from repro.cluster.network import DROPPED, UNDELIVERED, is_undelivered
from repro.cluster.server import Server, ServerLogic
from repro.core.entry import Entry
from repro.core.exceptions import InvalidParameterError
from repro.strategies.fixed import FixedX


class _EchoLogic(ServerLogic):
    """Stores entries; replies with the receiving server's id."""

    def handle(self, server, message, network):
        if isinstance(message, StoreMessage):
            server.store("k").add(message.entry)
        return server.server_id


def _faulty_cluster(plan, size=4):
    cluster = Cluster(size, seed=7)
    logic = _EchoLogic()
    for server in cluster.servers:
        server.install_logic("k", logic)
    injector = cluster.network.install_fault_plan(plan)
    return cluster, injector


class TestPlanValidation:
    def test_probabilities_bounded(self):
        with pytest.raises(InvalidParameterError):
            FaultPlan(drop_probability=1.5)
        with pytest.raises(InvalidParameterError):
            FaultPlan(duplicate_probability=-0.1)

    def test_crash_step_must_be_known_message_type(self):
        with pytest.raises(InvalidParameterError):
            CrashPoint(0, "NotAMessage")

    def test_crash_points_unique_per_server_step(self):
        with pytest.raises(InvalidParameterError):
            FaultPlan(
                crash_points=(
                    CrashPoint(0, "StoreMessage", after=1),
                    CrashPoint(0, "StoreMessage", after=2),
                )
            )

    def test_blackout_window_ordered(self):
        with pytest.raises(InvalidParameterError):
            Blackout(0, 5, 5)

    def test_noop_detection(self):
        assert FaultPlan().is_noop
        assert not FaultPlan(drop_probability=0.1).is_noop
        assert not FaultPlan(blackouts=(Blackout(0, 0, 1),)).is_noop


class TestDrops:
    def test_certain_drop_loses_every_delivery(self):
        plan = FaultPlan(seed=1, drop_probability=1.0)
        cluster, injector = _faulty_cluster(plan)
        reply = cluster.network.send(0, "k", StoreMessage(Entry("a")))
        assert reply is DROPPED
        assert is_undelivered(reply)
        assert not reply  # falsy, like UNDELIVERED
        assert len(cluster.server(0).store("k")) == 0
        assert injector.stats.dropped == 1
        # Dropped deliveries never reach the §6.4 counters.
        assert cluster.network.stats.total == 0

    def test_dropped_distinct_from_failed(self):
        plan = FaultPlan(seed=1, drop_probability=1.0)
        cluster, injector = _faulty_cluster(plan)
        cluster.fail(1)
        assert cluster.network.send(1, "k", LookupRequest(1)) is UNDELIVERED
        assert cluster.network.send(0, "k", LookupRequest(1)) is DROPPED
        assert injector.stats.suppressed == 1
        assert injector.stats.dropped == 1

    def test_books_balance(self):
        plan = FaultPlan(seed=5, drop_probability=0.3)
        cluster, injector = _faulty_cluster(plan)
        cluster.fail(2)
        for i in range(50):
            cluster.network.send(i % 4, "k", StoreMessage(Entry(f"e{i}")))
        stats = injector.stats
        assert stats.attempted == 50
        assert stats.balanced
        assert stats.delivered == cluster.network.stats.total


class TestDuplication:
    def test_duplicate_is_deduped_by_delivery_id(self):
        plan = FaultPlan(seed=2, duplicate_probability=1.0)
        cluster, injector = _faulty_cluster(plan)
        reply = cluster.network.send(3, "k", StoreMessage(Entry("a")))
        assert reply == 3
        assert injector.stats.duplicated == 1
        # The handler ran once: one stored copy, one counted message.
        assert len(cluster.server(3).store("k")) == 1
        assert cluster.network.stats.total == 1

    def test_duplicated_broadcast_stays_idempotent(self):
        plan = FaultPlan(seed=2, duplicate_probability=1.0)
        cluster, injector = _faulty_cluster(plan)
        replies = cluster.network.broadcast("k", StoreMessage(Entry("a")))
        assert set(replies) == {0, 1, 2, 3}
        assert all(len(s.store("k")) == 1 for s in cluster.servers)
        assert injector.stats.duplicated == 4


class TestBlackout:
    def test_window_covers_attempt_counts(self):
        plan = FaultPlan(blackouts=(Blackout(0, 1, 3),))
        cluster, injector = _faulty_cluster(plan)
        results = [
            cluster.network.send(0, "k", LookupRequest(1)) for _ in range(4)
        ]
        assert [is_undelivered(r) for r in results] == [
            False, True, True, False,
        ]
        assert injector.stats.blacked_out == 2

    def test_blackout_only_hits_its_server(self):
        plan = FaultPlan(blackouts=(Blackout(0, 0, 100),))
        cluster, _ = _faulty_cluster(plan)
        assert is_undelivered(cluster.network.send(0, "k", LookupRequest(1)))
        assert cluster.network.send(1, "k", LookupRequest(1)) == 1


class TestCrashPoints:
    def test_crash_fires_after_kth_step_message(self):
        plan = FaultPlan(crash_points=(CrashPoint(1, "StoreMessage", after=2),))
        cluster, injector = _faulty_cluster(plan)
        assert cluster.network.send(1, "k", StoreMessage(Entry("a"))) == 1
        assert cluster.server(1).alive
        # The 2nd StoreMessage is processed (reply returned), then the
        # server crashes in the gap after the step.
        assert cluster.network.send(1, "k", StoreMessage(Entry("b"))) == 1
        assert not cluster.server(1).alive
        assert injector.stats.crashes == [(1, "StoreMessage", 2)]
        # State is retained across the fail-stop crash.
        assert len(cluster.server(1).store("k")) == 2

    def test_crash_fires_once(self):
        plan = FaultPlan(crash_points=(CrashPoint(0, "LookupRequest", after=1),))
        cluster, injector = _faulty_cluster(plan)
        cluster.network.send(0, "k", LookupRequest(1))
        cluster.server(0).recover()
        cluster.network.send(0, "k", LookupRequest(1))
        assert cluster.server(0).alive
        assert len(injector.stats.crashes) == 1

    def test_other_steps_do_not_advance_the_counter(self):
        plan = FaultPlan(crash_points=(CrashPoint(0, "StoreMessage", after=1),))
        cluster, _ = _faulty_cluster(plan)
        cluster.network.send(0, "k", LookupRequest(1))
        assert cluster.server(0).alive
        cluster.network.send(0, "k", StoreMessage(Entry("a")))
        assert not cluster.server(0).alive


class TestDeterminism:
    def test_same_plan_same_fault_schedule(self):
        def run():
            plan = FaultPlan(seed=9, drop_probability=0.2,
                             duplicate_probability=0.1)
            cluster, injector = _faulty_cluster(plan)
            for i in range(100):
                cluster.network.send(i % 4, "k", StoreMessage(Entry(f"e{i}")))
            return injector.stats.as_row()

        assert run() == run()

    def test_plan_rng_is_private_to_the_plan(self):
        # Installing a plan must not perturb the cluster RNG stream:
        # the same seeded workload draws identically with and without
        # faults (here: a plan whose knobs never fire).
        def lookup_orders(install):
            cluster = Cluster(6, seed=42)
            strategy = FixedX(cluster, x=5)
            strategy.place([Entry(f"v{i}") for i in range(5)])
            if install:
                cluster.network.install_fault_plan(
                    FaultPlan(seed=1, drop_probability=0.0)
                )
            return [
                strategy.partial_lookup(2).servers_contacted
                for _ in range(20)
            ]

        assert lookup_orders(False) == lookup_orders(True)

    def test_uninstall_restores_fault_free_path(self):
        plan = FaultPlan(seed=1, drop_probability=1.0)
        cluster, _ = _faulty_cluster(plan)
        assert cluster.network.send(0, "k", LookupRequest(1)) is DROPPED
        cluster.network.uninstall_fault_plan()
        assert cluster.network.fault_injector is None
        assert cluster.network.send(0, "k", LookupRequest(1)) == 0
