"""Exact (closed-form) retrieval probabilities and lookup costs.

The paper's Monte-Carlo estimates (10,000 lookups per instance) exist
because lookup answers are random — but for the deterministic-placement
strategies the randomness is *shallow*: the only random inputs are
which server the client talks to first and which ``min(t, m)``-subset
each server returns, both uniform.  For those cases the per-entry
retrieval probability ``p_I(j)`` has a closed form that this module
computes directly from the current placement, in three regimes keyed
off the strategy's declared
:class:`~repro.strategies.base.LookupProfile`:

* **Single contact** (``max_servers=1``, random order — full
  replication and Fixed-x): the contacted server is uniform over the
  operational ones, so ``p(e) = (1/|alive|) · Σ_{s ∋ e} min(t, m_s)/m_s``.
* **Stride walk** (Round-Robin-y): enumerate all ``n`` equally-likely
  start servers and walk each deterministically.  When every contacted
  store is disjoint from everything merged so far, the kept subset of
  each store is a uniform ``min(t−c, m)``-subset (a uniform subset of
  a uniform subset is uniform), so each contact contributes
  ``min(t−c, m)/m`` per entry.  Any overlap along a walk, or an unmet
  target that would spill into the randomly-shuffled leftover servers,
  makes the composition non-uniform — we return ``None`` and the
  caller falls back to Monte-Carlo.
* **Random full walk** (random order, no cap) over pairwise-disjoint
  stores: positions of the stores in the contact permutation are
  exchangeable, so ``E[kept from s]`` is an average of
  ``min(max(0, t−σ), m_s)`` over the subset-sum distribution ``σ`` of
  the stores contacted earlier, computed by a small counting DP.

Strategies whose *placement* is random (RandomServer-x, Hash-y) have
overlapping, irregular stores and simply fail these guards — they stay
Monte-Carlo, which is the intended division of labour.  The exact
values double as a correctness oracle for the MC loops: see
``tests/analysis/test_exact.py``.
"""

from __future__ import annotations

from math import factorial
from typing import Dict, Iterable, List, Optional, Tuple

from repro.cluster.client import Stride
from repro.core.entry import Entry
from repro.core.exceptions import InvalidParameterError
from repro.metrics.lookup_cost import LookupCostEstimate
from repro.strategies.base import PlacementStrategy


class _Store:
    """One operational server's store, in kernel terms."""

    __slots__ = ("server_id", "indices", "mask", "size")

    def __init__(self, server_id: int, indices: List[int], mask: int) -> None:
        self.server_id = server_id
        self.indices = indices
        self.mask = mask
        self.size = len(indices)


def _alive_stores(strategy: PlacementStrategy) -> Dict[int, _Store]:
    key = strategy.key
    return {
        server.server_id: _Store(
            server.server_id,
            server.store(key).indices(),
            server.store(key).mask,
        )
        for server in strategy.cluster.servers
        if server.alive
    }


def _stride_walks(n: int, stride: int) -> List[Tuple[List[int], List[int]]]:
    """Per start server: (deterministic walk, leftover ids)."""
    walks = []
    for start in range(n):
        walk: List[int] = []
        seen = set()
        current = start % n
        for _ in range(n):
            if current in seen:
                break
            walk.append(current)
            seen.add(current)
            current = (current + stride) % n
        walks.append((walk, [i for i in range(n) if i not in seen]))
    return walks


def exact_retrieval_probabilities(
    strategy: PlacementStrategy,
    target: int,
    universe: Iterable[Entry],
) -> Optional[Dict[Entry, float]]:
    """Closed-form ``p_I(j)`` for the current instance, or None.

    ``None`` means "no exact form applies here" — wrong profile,
    overlapping stores along a walk, or a walk that would spill into
    randomly-ordered leftovers.  Never an approximation: a returned
    dict is the exact probability law of ``partial_lookup(target)``.
    """
    entries = list(universe)
    seen_ids: set = set()
    for entry in entries:
        if entry.entry_id in seen_ids:
            raise InvalidParameterError(
                f"duplicate entry id in universe: {entry.entry_id!r}"
            )
        seen_ids.add(entry.entry_id)
    if target < 1:
        return None
    profile = strategy.lookup_profile()
    if profile is None:
        return None
    cluster = strategy.cluster
    stores = _alive_stores(strategy)
    if not stores:
        return None
    interner = cluster.interner(strategy.key)
    p = [0.0] * len(interner)

    if profile.max_servers == 1 and profile.order == "random":
        _single_contact_probabilities(p, stores, target)
    elif profile.max_servers is None and isinstance(profile.order, Stride):
        if not _stride_probabilities(
            p, cluster.size, stores, profile.order.y, target
        ):
            return None
    elif profile.max_servers is None and profile.order == "random":
        if not _random_walk_probabilities(p, stores, target):
            return None
    else:
        return None

    out: Dict[Entry, float] = {}
    for entry in entries:
        index = interner.index_of(entry.entry_id)
        out[entry] = p[index] if index is not None else 0.0
    return out


def _single_contact_probabilities(
    p: List[float], stores: Dict[int, _Store], target: int
) -> None:
    """``max_servers=1``: one uniform operational server answers."""
    weight = 1.0 / len(stores)
    for store in stores.values():
        if not store.size:
            continue
        keep = min(target, store.size)
        share = weight * keep / store.size
        for index in store.indices:
            p[index] += share


def _stride_probabilities(
    p: List[float],
    n: int,
    stores: Dict[int, _Store],
    stride: int,
    target: int,
) -> bool:
    """Round-Robin's stride walk, averaged over the ``n`` uniform starts."""
    weight = 1.0 / n
    for walk, leftovers in _stride_walks(n, stride):
        merged = 0
        covered_mask = 0
        for sid in walk:
            if merged >= target:
                break
            store = stores.get(sid)
            if store is None or not store.size:
                continue
            if store.mask & covered_mask:
                # A partially-overlapping reply's fresh subset is not
                # uniform over the store; no closed form.
                return False
            keep = min(target - merged, store.size)
            share = weight * keep / store.size
            for index in store.indices:
                p[index] += share
            covered_mask |= store.mask
            merged += keep
        if merged < target and any(
            sid in stores and stores[sid].size for sid in leftovers
        ):
            # The walk spills into the randomly-shuffled leftovers.
            return False
    return True


def _random_walk_probabilities(
    p: List[float], stores: Dict[int, _Store], target: int
) -> bool:
    """Uniform contact order over pairwise-disjoint stores.

    The stores contacted before ``s`` form a uniformly random subset
    of the others (exchangeability), and with disjoint stores only
    their total size ``σ`` matters: ``s`` keeps
    ``min(max(0, t−σ), m_s)`` entries, uniformly.  A counting DP over
    subset sums (clipped at ``t``) gives the exact expectation.
    Empty stores never change ``σ`` and hold no entries, so they drop
    out entirely.
    """
    union = 0
    occupied = [s for s in stores.values() if s.size]
    for store in occupied:
        if store.mask & union:
            return False
        union |= store.mask
    if len(occupied) > 40:  # DP guard; paper-scale n is ~10
        return False
    for store in occupied:
        other_sizes = [o.size for o in occupied if o is not store]
        a = len(other_sizes)
        # dp[j] maps clipped predecessor-sum -> number of j-subsets.
        dp: List[Dict[int, int]] = [{0: 1}]
        for size in other_sizes:
            new = [dict(level) for level in dp] + [{}]
            for j, level in enumerate(dp):
                bump = new[j + 1]
                for sigma, count in level.items():
                    clipped = min(target, sigma + size)
                    bump[clipped] = bump.get(clipped, 0) + count
            dp = new
        total = factorial(a + 1)
        expected_keep = 0.0
        for j, level in enumerate(dp):
            weight = factorial(j) * factorial(a - j) / total
            for sigma, count in level.items():
                expected_keep += (
                    weight * count * min(max(0, target - sigma), store.size)
                )
        share = expected_keep / store.size
        for index in store.indices:
            p[index] += share
    return True


def exact_lookup_cost(
    strategy: PlacementStrategy, target: int
) -> Optional[LookupCostEstimate]:
    """Closed-form Figure 4 lookup cost for the current instance.

    The estimate's ``lookups`` field holds the number of enumerated
    equally-likely cases (operational servers for single-contact
    strategies, start servers for stride walks), so ``failure_rate``
    is exact.  Returns None when no exact form applies.
    """
    if target < 1:
        return None
    profile = strategy.lookup_profile()
    if profile is None:
        return None
    stores = _alive_stores(strategy)
    if not stores:
        return None

    if profile.max_servers == 1 and profile.order == "random":
        # Exactly one operational server is contacted, uniformly.
        failures = sum(1 for s in stores.values() if min(target, s.size) < target)
        return LookupCostEstimate(
            target=target,
            lookups=len(stores),
            mean_cost=1.0,
            max_cost=1,
            failures=failures,
        )

    if profile.max_servers is None and isinstance(profile.order, Stride):
        n = strategy.cluster.size
        costs: List[int] = []
        failures = 0
        for walk, leftovers in _stride_walks(n, profile.order.y):
            merged = 0
            covered_mask = 0
            cost = 0
            for sid in walk:
                if merged >= target:
                    break
                store = stores.get(sid)
                if store is None:
                    continue
                cost += 1
                if not store.size:
                    continue
                if store.mask & covered_mask:
                    return None
                covered_mask |= store.mask
                merged += min(target - merged, store.size)
            if merged < target:
                leftover_stores = [
                    stores[sid] for sid in leftovers if sid in stores
                ]
                if any(s.size for s in leftover_stores):
                    return None
                # Only empty operational leftovers remain: all are
                # contacted (in some order), deterministically.
                cost += len(leftover_stores)
                failures += 1
            costs.append(cost)
        return LookupCostEstimate(
            target=target,
            lookups=len(costs),
            mean_cost=sum(costs) / len(costs),
            max_cost=max(costs),
            failures=failures,
        )

    return None
