"""Ablation: the Appendix A greedy fault-tolerance heuristic vs exact.

The paper computes fault tolerance with a greedy adversary because the
exact problem is SET-COVER-hard.  This bench quantifies, on clusters
small enough to brute-force, (a) how often greedy matches the true
worst case and (b) the runtime gap that justifies the heuristic at the
paper's n=10 scale.
"""

import time

from _bench_utils import render_and_print

from repro.cluster.cluster import Cluster
from repro.core.entry import make_entries
from repro.experiments.runner import ExperimentResult
from repro.metrics.fault_tolerance import (
    exact_fault_tolerance,
    greedy_fault_tolerance,
)
from repro.strategies.hashing import HashY
from repro.strategies.random_server import RandomServerX


def _compare(build, runs: int, target: int):
    exact_matches = 0
    total_gap = 0
    greedy_time = 0.0
    exact_time = 0.0
    for seed in range(runs):
        strategy = build(seed)
        start = time.perf_counter()
        greedy = greedy_fault_tolerance(strategy, target)
        greedy_time += time.perf_counter() - start
        start = time.perf_counter()
        exact = exact_fault_tolerance(strategy, target)
        exact_time += time.perf_counter() - start
        assert greedy >= exact  # greedy is optimistic, never below
        if greedy == exact:
            exact_matches += 1
        total_gap += greedy - exact
    return {
        "match_rate": exact_matches / runs,
        "mean_gap": total_gap / runs,
        "greedy_ms": 1000 * greedy_time / runs,
        "exact_ms": 1000 * exact_time / runs,
    }


def _run_ablation() -> ExperimentResult:
    result = ExperimentResult(
        name="Ablation: greedy vs exact fault tolerance (n=6 brute force)",
        headers=["scheme", "match_rate", "mean_gap", "greedy_ms", "exact_ms"],
    )
    cases = {
        "random_server_x4": lambda seed: _place(
            RandomServerX(Cluster(6, seed=seed), x=4)
        ),
        "hash_y2": lambda seed: _place(HashY(Cluster(6, seed=seed), y=2)),
    }
    for label, build in cases.items():
        stats = _compare(build, runs=40, target=8)
        result.rows.append(
            {
                "scheme": label,
                "match_rate": round(stats["match_rate"], 2),
                "mean_gap": round(stats["mean_gap"], 3),
                "greedy_ms": round(stats["greedy_ms"], 3),
                "exact_ms": round(stats["exact_ms"], 3),
            }
        )
    return result


def _place(strategy):
    strategy.place(make_entries(16))
    return strategy


def test_bench_ablation_greedy_ft(benchmark):
    result = benchmark.pedantic(_run_ablation, rounds=1, iterations=1)
    render_and_print(result)
    for row in result.rows:
        # The heuristic is accurate: matches the optimum usually, and
        # when it misses, by less than one server on average.
        assert row["match_rate"] >= 0.6
        assert row["mean_gap"] < 1.0
